//! Cross-strategy placement-quality invariants: the orderings Tables I/II
//! and the figures rest on.

use optchain::prelude::*;

fn stream(n: usize, seed: u64) -> Vec<Transaction> {
    optchain::workload::generate(WorkloadConfig::bitcoin_like().with_seed(seed), n)
}

#[test]
fn table1_orderings_hold() {
    let txs = stream(60_000, 21);
    let n = txs.len() as u64;
    for k in [4u32, 16] {
        let tan = TanGraph::from_transactions(txs.iter());
        let csr = CsrGraph::from_tan(&tan);
        let metis = replay(
            &txs,
            &mut OraclePlacer::new(k, partition_kway(&csr, k, 0.1, 1)),
        );
        let t2s = replay(
            &txs,
            &mut T2sPlacer::with_engine(T2sEngine::new(k), 0.1, Some(n)),
        );
        let greedy = replay(&txs, &mut GreedyPlacer::with_epsilon(k, 0.1, Some(n)));
        let random = replay(&txs, &mut RandomPlacer::new(k));
        let optchain = replay(&txs, &mut OptChainPlacer::new(k));

        // The paper's Table I ordering: Metis best, then the online
        // structure-aware strategies, random worst by a wide margin.
        assert!(metis.cross < t2s.cross, "k={k}");
        assert!(metis.cross < greedy.cross, "k={k}");
        assert!(
            (t2s.cross as f64) < 0.6 * random.cross as f64,
            "k={k}: T2S {} vs random {}",
            t2s.cross,
            random.cross
        );
        assert!(
            (optchain.cross as f64) < 0.6 * random.cross as f64,
            "k={k}: OptChain {} vs random {}",
            optchain.cross,
            random.cross
        );
        assert!(
            (greedy.cross as f64) < 0.6 * random.cross as f64,
            "k={k}: Greedy {} vs random {}",
            greedy.cross,
            random.cross
        );
    }
}

#[test]
fn random_placement_matches_paper_formula() {
    // With k shards, a tx with one input is cross with probability
    // (k-1)/k under random placement; the paper quotes 94% (2-in/1-out,
    // k=4) and 99.98% (k=16). Check the k=16 ballpark on real streams.
    let txs = stream(30_000, 8);
    let outcome = replay(&txs, &mut RandomPlacer::new(16));
    let non_coinbase = outcome.total - outcome.coinbase;
    let fraction = outcome.cross as f64 / non_coinbase as f64;
    assert!(
        fraction > 0.90,
        "random placement at k=16 must be almost all cross: {fraction}"
    );
}

#[test]
fn optchain_balances_where_t2s_alone_would_not() {
    // Without the ε-cap or L2S, a pure chain stream funnels into one
    // shard. OptChain (load-aware) and T2S (capped) must both keep the
    // shard sizes within a reasonable ratio on a real stream.
    let txs = stream(40_000, 13);
    let optchain = replay(&txs, &mut OptChainPlacer::new(8));
    assert!(
        optchain.size_ratio() < 2.0,
        "OptChain shard sizes diverged: {:?}",
        optchain.shard_sizes
    );
}

#[test]
fn warm_start_equals_fresh_on_same_prefix() {
    // Placing [prefix + delta] from scratch must equal warm-starting from
    // the same prefix assignment: the T2S incremental state is exact.
    let txs = stream(6_000, 17);
    let (prefix, delta) = txs.split_at(4_000);

    let mut fresh = T2sPlacer::with_engine(T2sEngine::new(4), 0.1, Some(6_000));
    let all = replay(&txs, &mut fresh);

    let mut tan = TanGraph::from_transactions(prefix.iter());
    let mut warm = T2sPlacer::with_engine(T2sEngine::new(4), 0.1, Some(6_000));
    warm.warm_start(&tan, &all.assignments[..4_000]);
    let continued = optchain::core::replay::replay_into(delta, &mut warm, &mut tan);

    assert_eq!(
        &all.assignments[4_000..],
        &continued.assignments[4_000..],
        "warm-started placement must continue identically"
    );
}

#[test]
fn deterministic_across_processes() {
    // Same seed, same outcome — byte-for-byte (catches HashMap-iteration
    // nondeterminism sneaking into any placement path).
    let a = replay(&stream(10_000, 99), &mut OptChainPlacer::new(8));
    let b = replay(&stream(10_000, 99), &mut OptChainPlacer::new(8));
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.cross, b.cross);
}
