//! Property-based tests spanning crates: random workload configurations
//! feed the full pipeline and structural invariants must hold.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

use optchain::prelude::*;
use optchain::tan::stats;

fn workload_strategy() -> impl PropStrategy<Value = (u64, u32, usize)> {
    // (seed, wallets, stream length)
    (0u64..1_000, 20u32..300, 200usize..1_500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated stream is a valid ledger and an acyclic TaN.
    #[test]
    fn stream_validity((seed, wallets, n) in workload_strategy()) {
        let config = WorkloadConfig::small().with_seed(seed).with_wallets(wallets);
        let txs = optchain::workload::generate(config, n);
        let mut ledger = Ledger::new();
        for tx in &txs {
            ledger.apply(tx.clone()).expect("valid stream");
        }
        let tan = TanGraph::from_transactions(txs.iter());
        prop_assert_eq!(tan.missing_parent_refs(), 0);
        for (u, v) in tan.edges() {
            prop_assert!(v < u);
        }
    }

    /// Every placement strategy covers the stream with in-range shards,
    /// and cross-TX counts agree with the batch recount.
    #[test]
    fn placement_totality((seed, wallets, n) in workload_strategy(), k in 2u32..12) {
        let config = WorkloadConfig::small().with_seed(seed).with_wallets(wallets);
        let txs = optchain::workload::generate(config, n);
        let tan = TanGraph::from_transactions(txs.iter());
        for outcome in [
            replay(&txs, &mut OptChainPlacer::new(k)),
            replay(&txs, &mut RandomPlacer::new(k)),
            replay(&txs, &mut GreedyPlacer::new(k)),
        ] {
            prop_assert_eq!(outcome.assignments.len(), n);
            prop_assert!(outcome.assignments.iter().all(|s| *s < k));
            prop_assert_eq!(
                outcome.cross,
                stats::cross_tx_count(&tan, &outcome.assignments),
                "incremental and batch cross counts must agree"
            );
        }
    }

    /// The k-way partitioner returns in-range parts and respects rough
    /// balance on arbitrary TaN graphs.
    #[test]
    fn partitioner_invariants((seed, wallets, n) in workload_strategy(), k in 2u32..9) {
        let config = WorkloadConfig::small().with_seed(seed).with_wallets(wallets);
        let txs = optchain::workload::generate(config, n);
        let tan = TanGraph::from_transactions(txs.iter());
        let csr = CsrGraph::from_tan(&tan);
        let part = partition_kway(&csr, k, 0.1, seed);
        prop_assert_eq!(part.len(), n);
        prop_assert!(part.iter().all(|p| *p < k));
        if n as u32 > k * 40 {
            let imb = optchain::partition::quality::imbalance(&csr, &part, k);
            prop_assert!(imb < 1.6, "imbalance {imb} with n={n} k={k}");
        }
    }

    /// T2S scores are non-negative, finite, and zero exactly for nodes
    /// with no placed ancestors.
    #[test]
    fn t2s_score_sanity((seed, wallets, n) in workload_strategy()) {
        let config = WorkloadConfig::small().with_seed(seed).with_wallets(wallets);
        let txs = optchain::workload::generate(config, n.min(400));
        let mut tan = TanGraph::new();
        let mut engine = T2sEngine::new(4);
        for tx in &txs {
            let node = tan.insert_tx(tx);
            engine.register(&tan, node);
            let scores = engine.scores(node);
            prop_assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
            if tan.inputs(node).is_empty() {
                prop_assert!(scores.iter().all(|s| *s == 0.0));
            }
            engine.place(node, (node.index() % 4) as u32);
        }
    }

    /// The closed-form L2S expectation matches numeric integration for
    /// arbitrary telemetry.
    #[test]
    fn l2s_closed_form_matches_numeric(
        comms in proptest::collection::vec(0.01f64..2.0, 1..5),
        verifies in proptest::collection::vec(0.05f64..20.0, 1..5),
    ) {
        let m = comms.len().min(verifies.len());
        let telemetry: Vec<ShardTelemetry> = comms
            .iter()
            .zip(&verifies)
            .take(m)
            .map(|(c, v)| ShardTelemetry::new(*c, *v))
            .collect();
        let shards: Vec<u32> = (0..m as u32).collect();
        let exact = L2sEstimator::expected_max(&telemetry, &shards);
        let numeric = L2sEstimator::expected_max_numeric(&telemetry, &shards);
        prop_assert!(
            (exact - numeric).abs() < 5e-3 * exact.max(1.0),
            "exact {exact} vs numeric {numeric}"
        );
        // E[max] is at least each shard's own mean.
        for s in &shards {
            let t = telemetry[*s as usize];
            prop_assert!(exact >= t.expected_comm + t.expected_verify - 1e-9);
        }
    }
}
