//! End-to-end integration: workload → ledger validation → TaN → placement
//! → simulation, across crates.

use optchain::prelude::*;

fn stream(n: usize, seed: u64) -> Vec<Transaction> {
    optchain::workload::generate(WorkloadConfig::small().with_seed(seed), n)
}

#[test]
fn generated_stream_flows_through_the_whole_stack() {
    let txs = stream(5_000, 3);

    // 1. It is a valid UTXO history.
    let mut ledger = Ledger::new();
    for tx in &txs {
        ledger.apply(tx.clone()).expect("workload is valid");
    }

    // 2. The TaN network reflects it: one node per tx, DAG order.
    let tan = TanGraph::from_transactions(txs.iter());
    assert_eq!(tan.len(), txs.len());
    for (u, v) in tan.edges() {
        assert!(v < u, "TaN edges must point to the past");
    }

    // 3. Placement over the stream is total and in range.
    let outcome = replay(&txs, &mut OptChainPlacer::new(6));
    assert_eq!(outcome.assignments.len(), txs.len());
    assert!(outcome.assignments.iter().all(|s| *s < 6));

    // 4. The simulator commits everything at a sustainable rate.
    let mut config = SimConfig::small();
    config.total_txs = txs.len() as u64;
    config.tx_rate = 400.0;
    config.n_shards = 6;
    let metrics = Simulation::run_on(config, Strategy::OptChain, &txs).unwrap();
    assert_eq!(metrics.committed, txs.len() as u64);
    assert_eq!(metrics.aborted, 0);
}

#[test]
fn all_five_strategies_run_on_the_same_stream() {
    let txs = stream(4_000, 9);
    let mut config = SimConfig::small();
    config.total_txs = txs.len() as u64;
    config.tx_rate = 500.0;
    for strategy in [
        Strategy::OptChain,
        Strategy::T2s,
        Strategy::OmniLedger,
        Strategy::Greedy,
        Strategy::Metis,
    ] {
        let metrics = Simulation::run_on(config.clone(), strategy, &txs)
            .unwrap_or_else(|e| panic!("{} failed: {e}", strategy.label()));
        assert_eq!(
            metrics.committed + metrics.aborted,
            txs.len() as u64,
            "{} must process the full stream",
            strategy.label()
        );
        assert!(metrics.mean_latency() > 0.0);
    }
}

#[test]
fn trace_roundtrip_preserves_placement_results() {
    let txs = stream(2_000, 5);
    let mut buf = Vec::new();
    optchain::workload::write_trace(&mut buf, &txs).unwrap();
    let restored = optchain::workload::read_trace(buf.as_slice()).unwrap();
    let a = replay(&txs, &mut OptChainPlacer::new(4));
    let b = replay(&restored, &mut OptChainPlacer::new(4));
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.cross, b.cross);
}

#[test]
fn metis_oracle_outperforms_random_on_cross_txs() {
    let txs = stream(8_000, 11);
    let tan = TanGraph::from_transactions(txs.iter());
    let csr = CsrGraph::from_tan(&tan);
    let assignment = partition_kway(&csr, 4, 0.1, 1);
    let metis = replay(&txs, &mut OraclePlacer::new(4, assignment));
    let random = replay(&txs, &mut RandomPlacer::new(4));
    assert!(
        metis.cross < random.cross / 2,
        "offline partitioning should at least halve cross-TXs: {} vs {}",
        metis.cross,
        random.cross
    );
}
