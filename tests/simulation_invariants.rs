//! Simulator invariants: conservation, causality, determinism and
//! protocol equivalences.

use optchain::prelude::*;

fn quick(n_shards: u32, rate: f64, total: u64) -> SimConfig {
    let mut c = SimConfig::small();
    c.n_shards = n_shards;
    c.tx_rate = rate;
    c.total_txs = total;
    c
}

#[test]
fn conservation_every_tx_commits_or_aborts_exactly_once() {
    let config = quick(4, 600.0, 4_000);
    let txs = Simulation::workload(&config);
    let m = Simulation::run_on(config, Strategy::OptChain, &txs).unwrap();
    assert_eq!(m.injected, 4_000);
    assert_eq!(m.committed + m.aborted, m.injected);
    assert_eq!(
        m.per_shard_committed.iter().sum::<u64>(),
        m.committed,
        "per-shard commits must sum to the total"
    );
    let window_total: u64 = m.commits_per_window.counts().iter().sum();
    assert_eq!(window_total, m.committed);
}

#[test]
fn causality_latencies_respect_protocol_floors() {
    // Even an idle system cannot confirm faster than one client→shard
    // message plus one consensus round (~base latency + block time).
    let config = quick(4, 100.0, 1_000);
    let txs = Simulation::workload(&config);
    let mut m = Simulation::run_on(config, Strategy::OptChain, &txs).unwrap();
    let min = m.latencies.percentile(0.0);
    assert!(
        min > 0.2,
        "confirmation cannot beat network + consensus floors: {min}"
    );
    // And cross-shard txs need two phases; the maximum reflects that.
    assert!(m.max_latency() >= min * 1.5);
}

#[test]
fn same_seed_bitwise_identical_metrics() {
    let run = || {
        let config = quick(4, 700.0, 5_000);
        let txs = Simulation::workload(&config);
        Simulation::run_on(config, Strategy::Greedy, &txs).unwrap()
    };
    let (mut a, mut b) = (run(), run());
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.cross_txs, b.cross_txs);
    assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
    assert_eq!(a.mean_latency().to_bits(), b.mean_latency().to_bits());
    assert_eq!(a.max_latency().to_bits(), b.max_latency().to_bits());
    assert_eq!(a.peak_queue, b.peak_queue);
}

#[test]
fn different_seeds_differ() {
    let config_a = quick(4, 700.0, 5_000);
    let mut config_b = config_a.clone();
    config_b.seed ^= 0xDEAD;
    let txs = Simulation::workload(&config_a);
    let a = Simulation::run_on(config_a, Strategy::Greedy, &txs).unwrap();
    let b = Simulation::run_on(config_b, Strategy::Greedy, &txs).unwrap();
    assert_ne!(
        a.makespan_s.to_bits(),
        b.makespan_s.to_bits(),
        "seed must perturb consensus jitter"
    );
}

#[test]
fn overload_grows_queues_monotonically_in_rate() {
    let txs = Simulation::workload(&quick(2, 1.0, 6_000));
    let peak = |rate: f64| {
        let config = quick(2, rate, 6_000);
        Simulation::run_on(config, Strategy::OmniLedger, &txs)
            .unwrap()
            .peak_queue
    };
    let low = peak(200.0);
    let high = peak(5_000.0);
    assert!(
        high > low.max(1) * 2,
        "10x the offered load must back queues up: {low} vs {high}"
    );
}

#[test]
fn rapidchain_and_omniledger_commit_the_same_set() {
    let mut config = quick(4, 600.0, 4_000);
    let txs = Simulation::workload(&config);
    let lock = Simulation::run_on(config.clone(), Strategy::OptChain, &txs).unwrap();
    config.protocol = optchain::sim::CrossShardProtocol::RapidChainYank;
    let yank = Simulation::run_on(config, Strategy::OptChain, &txs).unwrap();
    assert_eq!(lock.committed, yank.committed);
    assert_eq!(lock.aborted, yank.aborted);
    // Yanking saves the client round trip for cross-TXs.
    assert!(
        yank.mean_latency() <= lock.mean_latency() * 1.05,
        "yank {} vs lock {}",
        yank.mean_latency(),
        lock.mean_latency()
    );
}

#[test]
fn telemetry_staleness_does_not_break_commits() {
    let mut config = quick(4, 600.0, 3_000);
    config.telemetry_interval_s = 10.0; // very stale
    let txs = Simulation::workload(&config);
    let m = Simulation::run_on(config, Strategy::OptChain, &txs).unwrap();
    assert_eq!(m.committed, 3_000);
}

#[test]
fn more_shards_increase_capacity() {
    let txs = Simulation::workload(&quick(2, 1.0, 8_000));
    let tput = |k: u32| {
        let config = quick(k, 4_000.0, 8_000);
        Simulation::run_on(config, Strategy::OptChain, &txs)
            .unwrap()
            .throughput()
    };
    let small = tput(2);
    let large = tput(12);
    assert!(
        large > small * 1.5,
        "sharding must scale capacity: {small} vs {large}"
    );
}
