#!/usr/bin/env python3
"""Compare a perf_baseline smoke JSON against the committed baseline.

Two kinds of checks:

* **Ratio metrics** (``speedup``, ``router_ratio``) are regression
  tripwires: a big drop in the optimized-vs-naive speedup or in the
  router-vs-direct ratio means a hot-path regression slipped in. The
  checks are one-sided (an improvement never fails). At the same
  stream length the smoke must stay within ``--ratio-tolerance``
  (default 20%) below the committed ``BENCH_placement.json``; when the
  scales differ (the CI smoke runs 50k txs with the alloc-count
  allocator, the baseline 1M without — the speedup is genuinely
  scale-dependent), absolute floors apply instead
  (``--speedup-floor``, ``--router-floor``).

* **Hard gates** read from the smoke run itself (machine-independent):
  allocations per transaction, the retention arm's peak-arena /
  peak-assignment-store / SPV-wallet factors (each must stay ≤ 2× of a
  window-sized run — the O(window) memory claims), the in-window
  bit-identity the binary already asserted before writing the JSON,
  and — when the smoke ran with ``--wal`` — the durable node's disk
  bound (peak journal ≤ 3× of a window-sized reference run) and the
  recovery bit-identity flag. The WAL/in-RAM throughput ratio is
  treated like the other wall-clock ratios: tolerance band at the same
  scale, an absolute floor (``--wal-floor``) across scales.

Exit code 0 = all checks pass; 1 = any failure (printed).

Usage:
    bench_compare.py --baseline BENCH_placement.json --smoke smoke.json
                     [--ratio-tolerance 0.2]
"""

import argparse
import json
import sys

# The retention arm's memory ceiling (mirrors RETENTION_PEAK_FACTOR in
# perf_baseline.rs).
MEMORY_FACTOR_LIMIT = 2.0
# Allocation-rate ceilings (mirror MAX_E2E_ALLOCS_PER_TX and
# MAX_DECISION_ALLOCS_PER_TX in perf_baseline.rs).
MAX_E2E_ALLOCS_PER_TX = 0.1
MAX_DECISION_ALLOCS_PER_TX = 0.01
# The durable arm's disk ceiling (mirrors WAL_DISK_PEAK_FACTOR in
# perf_baseline.rs): peak journal bytes vs a window-sized reference run.
WAL_DISK_FACTOR_LIMIT = 3.0


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_placement.json")
    parser.add_argument("--smoke", required=True, help="freshly recorded smoke JSON")
    parser.add_argument(
        "--ratio-tolerance",
        type=float,
        default=0.2,
        help="one-sided tolerance below the baseline for same-scale ratio "
        "metrics (default 0.2 = -20%%)",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=2.0,
        help="hard speedup floor when the smoke runs at a different scale "
        "than the baseline (default 2.0)",
    )
    parser.add_argument(
        "--router-floor",
        type=float,
        default=0.7,
        help="hard router_ratio floor when the smoke runs at a different "
        "scale than the baseline (default 0.7)",
    )
    parser.add_argument(
        "--wal-floor",
        type=float,
        default=0.15,
        help="hard WAL/in-RAM throughput floor when the smoke runs at a "
        "different scale than the baseline (default 0.15 — at smoke "
        "scale the fixed fsync/checkpoint cost dominates a short run)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    smoke = load(args.smoke)
    same_scale = baseline.get("txs") == smoke.get("txs")
    failures = []
    rows = []

    def check_ratio(name, floor, base=None, got=None):
        base = baseline.get(name) if base is None else base
        got = smoke.get(name) if got is None else got
        if base is None or got is None or base == 0:
            rows.append((name, base, got, "skipped (missing)"))
            return
        if same_scale:
            limit = base * (1.0 - args.ratio_tolerance)
            why = f"baseline {base:.3f} - {args.ratio_tolerance:.0%}"
        else:
            limit = floor
            why = "cross-scale floor"
        ok = got >= limit
        rows.append((name, f">= {limit:.3f}", f"{got:.3f}", f"{'ok' if ok else 'FAIL'} ({why})"))
        if not ok:
            failures.append(f"{name}: smoke {got:.3f} below the limit {limit:.3f} ({why})")

    def check_hard(name, value, limit, label=None):
        label = label or name
        if value is None:
            rows.append((label, f"<= {limit}", None, "skipped (missing)"))
            return
        ok = value <= limit
        rows.append((label, f"<= {limit}", f"{value:.4f}", "ok" if ok else "FAIL"))
        if not ok:
            failures.append(f"{label}: {value:.4f} exceeds the hard limit {limit}")

    # --- ratio tripwires vs the committed baseline -----------------------
    check_ratio("speedup", args.speedup_floor)
    check_ratio("router_ratio", args.router_floor)

    # --- hard gates from the smoke run itself ----------------------------
    txs = smoke.get("txs", 0)
    allocs = smoke.get("allocs")
    if allocs and txs:
        check_hard("allocs/tx optimized", allocs["optimized"] / txs, MAX_E2E_ALLOCS_PER_TX)
        check_hard("allocs/tx router_batch", allocs["router_batch"] / txs, MAX_E2E_ALLOCS_PER_TX)
        check_hard(
            "allocs/tx decision_only", allocs["decision_only"] / txs, MAX_DECISION_ALLOCS_PER_TX
        )
    else:
        rows.append(("allocs/tx", "-", None, "skipped (no alloc-count build)"))

    retention = smoke.get("retention")
    if retention:
        check_hard("retention peak_factor (TaN arena)", retention.get("peak_factor"),
                   MEMORY_FACTOR_LIMIT)
        check_hard("retention assignment_factor", retention.get("assignment_factor"),
                   MEMORY_FACTOR_LIMIT)
        spv = smoke.get("retention_spv") or {}
        check_hard("retention spv_factor", spv.get("spv_factor"), MEMORY_FACTOR_LIMIT)
        identical = retention.get("in_window_identical_txs", 0)
        first_far = retention.get("first_out_of_window_tx")
        expect = first_far if first_far is not None else txs
        ok = identical >= expect
        rows.append(("in-window bit-identity", f">= {expect}", identical, "ok" if ok else "FAIL"))
        if not ok:
            failures.append(
                f"in-window identity: only {identical} txs proven identical (expected {expect})"
            )
    else:
        rows.append(("retention gates", "-", None, "skipped (no retention arm)"))

    wal = smoke.get("wal")
    if wal:
        base_wal = baseline.get("wal") or {}
        check_ratio(
            "wal_ratio", args.wal_floor,
            base=base_wal.get("wal_ratio"), got=wal.get("wal_ratio"),
        )
        check_hard("wal disk_factor", wal.get("disk_factor"), WAL_DISK_FACTOR_LIMIT)
        recovered = bool(wal.get("recovered_identical", False))
        rows.append(("wal recovery identity", "true", recovered, "ok" if recovered else "FAIL"))
        if not recovered:
            failures.append("wal: recovered_identical is false in the smoke JSON")
    else:
        rows.append(("wal gates", "-", None, "skipped (no --wal arm)"))

    if not smoke.get("assignments_identical", False):
        failures.append("assignments_identical is false in the smoke JSON")

    width = max(len(str(r[0])) for r in rows) + 2
    print(f"{'check'.ljust(width)} {'baseline/limit':>16} {'smoke':>12}  verdict")
    for name, base, got, verdict in rows:
        print(f"{str(name).ljust(width)} {str(base):>16} {str(got):>12}  {verdict}")

    if failures:
        print("\nFAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall bench comparisons passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
