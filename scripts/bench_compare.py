#!/usr/bin/env python3
"""Compare a bench smoke JSON against the committed baseline.

Four modes, selected with ``--mode``:

* ``placement`` (default) — perf_baseline JSONs (``BENCH_placement.json``).
* ``service`` — loadgen JSONs (``BENCH_service.json``): the serving
  path's throughput ratio and the overload contract.
* ``rebalance`` — rebalance_curve JSONs (``BENCH_rebalance.json``):
  the dynamic re-sharding contract — on the hot-spot workload the
  gated (default-budget) rebalanced arm must beat static OptChain on
  **both** cross-tx ratio and max-shard utilization, every arm's
  migrated bytes must respect its per-epoch budget, and the run must
  be deterministic. The simulation is a discrete-event model, so these
  gates are machine-independent and always hard.
* ``wal`` — the durability arm alone (the ``wal`` sub-object of
  perf_baseline JSONs): the WAL/in-RAM throughput tripwire, the hard
  ``disk_factor <= 3.0`` and ``recovered_identical`` gates, and —
  when the smoke ran with ``full_every > 1`` — delta-checkpoint
  sanity: deltas were actually written and the average persisted
  delta is smaller than the average full snapshot. Use this from jobs
  that re-run only ``perf_baseline --wal`` (e.g. the ``wal-soak``
  delta smoke) without re-checking the placement-wide gates.

Two kinds of checks in either mode:

* **Ratio metrics** (``speedup``, ``router_ratio``, ``service_ratio``)
  are regression tripwires: a big drop means a hot-path regression
  slipped in. The checks are one-sided (an improvement never fails).
  At the same stream length the smoke must stay within
  ``--ratio-tolerance`` (default 20%) below the committed baseline;
  when the scales differ (the CI smoke runs a short stream on a
  single-core container — wall-clock ratios are genuinely
  scale/machine-dependent), absolute floors apply instead
  (``--speedup-floor``, ``--router-floor``, ``--service-floor``).

* **Hard gates** read from the smoke run itself (machine-independent):
  placement mode gates allocations per transaction, the retention
  arm's memory factors, bit-identity flags, and the WAL disk/recovery
  bounds; service mode gates the overload contract — typed shedding
  actually happened, admitted-request p99 stayed within the
  queue-derived bound, every request got exactly one response
  (``lost_acks == 0``), and everything admitted was acked.

A gate key missing from either JSON is reported as a readable
``missing gate key`` failure naming the key and the keys that are
present — never a raw KeyError traceback.

Exit code 0 = all checks pass; 1 = any failure (printed).

Usage:
    bench_compare.py --baseline BENCH_placement.json --smoke smoke.json
    bench_compare.py --mode service --baseline BENCH_service.json \
                     --smoke service_smoke.json
"""

import argparse
import json
import sys

# The retention arm's memory ceiling (mirrors RETENTION_PEAK_FACTOR in
# perf_baseline.rs).
MEMORY_FACTOR_LIMIT = 2.0
# Allocation-rate ceilings (mirror MAX_E2E_ALLOCS_PER_TX and
# MAX_DECISION_ALLOCS_PER_TX in perf_baseline.rs).
MAX_E2E_ALLOCS_PER_TX = 0.1
MAX_DECISION_ALLOCS_PER_TX = 0.01
# The durable arm's disk ceiling (mirrors WAL_DISK_PEAK_FACTOR in
# perf_baseline.rs): peak journal bytes vs a steady-state (2x-window) reference run.
WAL_DISK_FACTOR_LIMIT = 3.0


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


class Comparison:
    """Accumulates check rows and failures for one smoke-vs-baseline run."""

    def __init__(self, baseline, smoke, args):
        self.baseline = baseline
        self.smoke = smoke
        self.args = args
        self.same_scale = baseline.get("txs") == smoke.get("txs")
        self.failures = []
        self.rows = []

    def gate_key(self, obj, key, context):
        """Fetches ``obj[key]`` for a hard gate; a missing key is a
        readable failure naming what *is* there, never a KeyError."""
        if not isinstance(obj, dict):
            self.rows.append((f"{context}.{key}", "-", None, "FAIL (missing gate key)"))
            self.failures.append(
                f"missing gate key '{context}.{key}': '{context}' is "
                f"{type(obj).__name__}, not an object"
            )
            return None
        if key not in obj:
            have = ", ".join(sorted(obj.keys())) or "<empty>"
            self.rows.append((f"{context}.{key}", "-", None, "FAIL (missing gate key)"))
            self.failures.append(
                f"missing gate key '{context}.{key}' (present: {have})"
            )
            return None
        return obj[key]

    def check_ratio(self, name, floor, base=None, got=None):
        base = self.baseline.get(name) if base is None else base
        got = self.smoke.get(name) if got is None else got
        if base is None or got is None or base == 0:
            self.rows.append((name, base, got, "skipped (missing)"))
            return
        if self.same_scale:
            limit = base * (1.0 - self.args.ratio_tolerance)
            why = f"baseline {base:.3f} - {self.args.ratio_tolerance:.0%}"
        else:
            limit = floor
            why = "cross-scale floor"
        ok = got >= limit
        self.rows.append(
            (name, f">= {limit:.3f}", f"{got:.3f}", f"{'ok' if ok else 'FAIL'} ({why})")
        )
        if not ok:
            self.failures.append(
                f"{name}: smoke {got:.3f} below the limit {limit:.3f} ({why})"
            )

    def check_hard(self, name, value, limit, label=None):
        label = label or name
        if value is None:
            self.rows.append((label, f"<= {limit}", None, "skipped (missing)"))
            return
        ok = value <= limit
        self.rows.append((label, f"<= {limit}", f"{value:.4f}", "ok" if ok else "FAIL"))
        if not ok:
            self.failures.append(f"{label}: {value:.4f} exceeds the hard limit {limit}")

    def check_flag(self, label, value, expect=True):
        ok = bool(value) is expect
        self.rows.append((label, str(expect).lower(), value, "ok" if ok else "FAIL"))
        if not ok:
            self.failures.append(f"{label}: expected {expect}, smoke has {value!r}")

    def check_zero(self, obj, key, context):
        value = self.gate_key(obj, key, context)
        if value is None:
            return
        ok = value == 0
        self.rows.append((f"{context}.{key}", "== 0", value, "ok" if ok else "FAIL"))
        if not ok:
            self.failures.append(f"{context}.{key}: {value} (must be 0)")

    def report(self):
        width = max(len(str(r[0])) for r in self.rows) + 2
        print(f"{'check'.ljust(width)} {'baseline/limit':>16} {'smoke':>12}  verdict")
        for name, base, got, verdict in self.rows:
            print(f"{str(name).ljust(width)} {str(base):>16} {str(got):>12}  {verdict}")
        if self.failures:
            print("\nFAILED:", file=sys.stderr)
            for failure in self.failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("\nall bench comparisons passed")
        return 0


def run_placement(cmp):
    args, smoke, baseline = cmp.args, cmp.smoke, cmp.baseline

    # --- ratio tripwires vs the committed baseline -----------------------
    cmp.check_ratio("speedup", args.speedup_floor)
    cmp.check_ratio("router_ratio", args.router_floor)

    # --- hard gates from the smoke run itself ----------------------------
    txs = smoke.get("txs", 0)
    allocs = smoke.get("allocs")
    if allocs and txs:
        for section, limit in (
            ("optimized", MAX_E2E_ALLOCS_PER_TX),
            ("router_batch", MAX_E2E_ALLOCS_PER_TX),
            ("decision_only", MAX_DECISION_ALLOCS_PER_TX),
        ):
            count = cmp.gate_key(allocs, section, "allocs")
            if count is not None:
                cmp.check_hard(f"allocs/tx {section}", count / txs, limit)
    else:
        cmp.rows.append(("allocs/tx", "-", None, "skipped (no alloc-count build)"))

    retention = smoke.get("retention")
    if retention:
        cmp.check_hard(
            "retention peak_factor (TaN arena)",
            retention.get("peak_factor"),
            MEMORY_FACTOR_LIMIT,
        )
        cmp.check_hard(
            "retention assignment_factor",
            retention.get("assignment_factor"),
            MEMORY_FACTOR_LIMIT,
        )
        spv = smoke.get("retention_spv") or {}
        cmp.check_hard("retention spv_factor", spv.get("spv_factor"), MEMORY_FACTOR_LIMIT)
        identical = retention.get("in_window_identical_txs", 0)
        first_far = retention.get("first_out_of_window_tx")
        expect = first_far if first_far is not None else txs
        ok = identical >= expect
        cmp.rows.append(
            ("in-window bit-identity", f">= {expect}", identical, "ok" if ok else "FAIL")
        )
        if not ok:
            cmp.failures.append(
                f"in-window identity: only {identical} txs proven identical "
                f"(expected {expect})"
            )
    else:
        cmp.rows.append(("retention gates", "-", None, "skipped (no retention arm)"))

    wal = smoke.get("wal")
    if wal:
        base_wal = baseline.get("wal") or {}
        cmp.check_ratio(
            "wal_ratio",
            args.wal_floor,
            base=base_wal.get("wal_ratio"),
            got=wal.get("wal_ratio"),
        )
        cmp.check_hard("wal disk_factor", wal.get("disk_factor"), WAL_DISK_FACTOR_LIMIT)
        cmp.check_flag("wal recovery identity", wal.get("recovered_identical", False))
    else:
        cmp.rows.append(("wal gates", "-", None, "skipped (no --wal arm)"))

    if not smoke.get("assignments_identical", False):
        cmp.failures.append("assignments_identical is false in the smoke JSON")


def run_wal(cmp):
    """The durability arm alone: wal-ratio tripwire, hard disk/identity
    gates, and delta-checkpoint sanity (shared with placement mode's
    wal block, plus the delta checks)."""
    args, smoke, baseline = cmp.args, cmp.smoke, cmp.baseline

    wal = cmp.gate_key(smoke, "wal", "smoke")
    if not isinstance(wal, dict):
        if wal is not None:  # present but null: run lacked --wal
            cmp.failures.append("smoke 'wal' is null — run perf_baseline with --wal")
        return
    base_wal = baseline.get("wal") or {}

    # --- ratio tripwire vs the committed baseline ------------------------
    cmp.check_ratio(
        "wal_ratio",
        args.wal_floor,
        base=base_wal.get("wal_ratio"),
        got=wal.get("wal_ratio"),
    )

    # --- hard gates from the smoke run itself ----------------------------
    cmp.check_hard("wal disk_factor", wal.get("disk_factor"), WAL_DISK_FACTOR_LIMIT)
    cmp.check_flag("wal recovery identity", wal.get("recovered_identical", False))

    # --- delta-checkpoint sanity -----------------------------------------
    # Only meaningful when the run was configured for deltas and long
    # enough to write more checkpoints than one full cadence: then
    # deltas must actually exist, and persisting one must be cheaper
    # than persisting a full snapshot.
    full_every = wal.get("full_every", 1)
    fulls = wal.get("full_checkpoints", 0)
    deltas = wal.get("delta_checkpoints", 0)
    if full_every > 1 and fulls + deltas > full_every:
        cmp.check_flag("delta checkpoints written", deltas > 0)
        if fulls and deltas:
            avg_full = wal.get("full_checkpoint_bytes", 0) / fulls
            avg_delta = wal.get("delta_checkpoint_bytes", 0) / deltas
            ok = avg_delta < avg_full
            cmp.rows.append(
                (
                    "avg delta < avg full snapshot",
                    f"< {avg_full:.0f} B",
                    f"{avg_delta:.0f} B",
                    "ok" if ok else "FAIL",
                )
            )
            if not ok:
                cmp.failures.append(
                    f"delta checkpoints average {avg_delta:.0f} bytes, not below "
                    f"the {avg_full:.0f}-byte full-snapshot average"
                )
    else:
        cmp.rows.append(
            ("delta checkpoint sanity", "-", None, "skipped (all-full cadence)")
        )


def run_service(cmp):
    args, smoke = cmp.args, cmp.smoke

    # --- ratio tripwire: service throughput vs the in-process fleet ------
    cmp.check_ratio("service_ratio", args.service_floor)

    # --- hard gates: the overload contract -------------------------------
    sustained = smoke.get("sustained")
    if sustained is None:
        cmp.gate_key(smoke, "sustained", "smoke")
    else:
        cmp.check_zero(sustained, "lost_acks", "sustained")
        cmp.check_zero(sustained, "shed", "sustained")
        admitted = cmp.gate_key(sustained, "admitted", "sustained")
        acked = cmp.gate_key(sustained, "acked", "sustained")
        if admitted is not None and acked is not None:
            cmp.check_flag("sustained admitted == acked", admitted == acked)
        p99 = cmp.gate_key(sustained, "p99_usec", "sustained")
        if p99 is not None:
            cmp.check_flag("sustained p99 recorded", p99 > 0)

    overload = smoke.get("overload")
    if overload is None:
        cmp.gate_key(smoke, "overload", "smoke")
    else:
        cmp.check_zero(overload, "lost_acks", "overload")
        shed = cmp.gate_key(overload, "shed_total", "overload")
        if shed is not None:
            cmp.check_flag("overload shed (typed) > 0", shed > 0)
        qf = cmp.gate_key(overload, "shed_queue_full", "overload")
        if shed is not None and qf is not None:
            cmp.check_flag("overload sheds are QueueFull", qf == shed)
        cmp.check_flag(
            "overload p99 within bound", overload.get("p99_within_bound", False)
        )
        admitted = cmp.gate_key(overload, "admitted", "overload")
        acked = cmp.gate_key(overload, "acked", "overload")
        if admitted is not None and acked is not None:
            cmp.check_flag("overload admitted == acked", admitted == acked)

    cmp.check_flag("acks_complete", smoke.get("acks_complete", False))


def run_rebalance(cmp):
    smoke, baseline = cmp.smoke, cmp.baseline

    def check_less(label, value, limit):
        if value is None or limit is None:
            return
        ok = value < limit
        cmp.rows.append(
            (label, f"< {limit:.4f}", f"{value:.4f}", "ok" if ok else "FAIL")
        )
        if not ok:
            cmp.failures.append(
                f"{label}: {value:.4f} is not below the static arm's {limit:.4f}"
            )

    static = cmp.gate_key(smoke, "static", "smoke")
    arms = cmp.gate_key(smoke, "arms", "smoke")
    budget = cmp.gate_key(smoke, "gated_budget_bytes", "smoke")
    if static is None or arms is None or budget is None:
        return

    gated = next((a for a in arms if a.get("budget_bytes") == budget), None)
    if gated is None:
        labels = ", ".join(str(a.get("label")) for a in arms) or "<empty>"
        cmp.rows.append(("gated arm", f"budget {budget}", None, "FAIL (missing)"))
        cmp.failures.append(
            f"no arm with budget_bytes == {budget} in the smoke arms ({labels})"
        )
        return

    # --- hard gates: the gated arm must beat static on BOTH axes ---------
    check_less(
        "gated cross_ratio < static",
        cmp.gate_key(gated, "cross_ratio", "gated"),
        cmp.gate_key(static, "cross_ratio", "static"),
    )
    check_less(
        "gated max_shard_utilization < static",
        cmp.gate_key(gated, "max_shard_utilization", "gated"),
        cmp.gate_key(static, "max_shard_utilization", "static"),
    )
    moved = cmp.gate_key(gated, "nodes_moved", "gated")
    if moved is not None:
        cmp.check_flag("gated nodes_moved > 0", moved > 0)

    # --- hard gates: every arm respects its per-epoch byte budget --------
    for arm in arms:
        label = arm.get("label", "?")
        arm_budget = cmp.gate_key(arm, "budget_bytes", label)
        epochs = cmp.gate_key(arm, "epochs_committed", label)
        migrated = cmp.gate_key(arm, "bytes_migrated", label)
        if None not in (arm_budget, epochs, migrated):
            cmp.check_hard(
                f"{label} bytes_migrated", migrated, epochs * arm_budget
            )
        cmp.check_zero(arm, "aborted", label)
    cmp.check_zero(static, "aborted", "static")

    cmp.check_flag("deterministic replay", smoke.get("deterministic", False))

    # --- golden tripwire: identical config must reproduce the baseline --
    # The simulation is deterministic, so when the smoke was run with the
    # committed baseline's exact configuration the gated arm must
    # reproduce it bit-for-bit. The CI smoke runs a shorter stream, so
    # this row is usually skipped there.
    config_keys = ("txs", "k", "seed", "epoch_interval", "gated_budget_bytes", "hotspot")
    if all(baseline.get(key) == smoke.get(key) for key in config_keys):
        base_gated = next(
            (a for a in baseline.get("arms") or [] if a.get("budget_bytes") == budget),
            None,
        )
        identical = base_gated is not None and all(
            base_gated.get(key) == gated.get(key)
            for key in ("cross_ratio", "max_shard_utilization", "nodes_moved", "bytes_migrated")
        )
        cmp.check_flag("same-config gated arm reproduces baseline", identical)
    else:
        cmp.rows.append(
            ("same-config reproduction", "-", None, "skipped (different scale)")
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mode",
        choices=("placement", "service", "rebalance", "wal"),
        default="placement",
        help="which baseline family to compare: 'placement' (default, "
        "perf_baseline JSONs), 'service' (loadgen JSONs), 'rebalance' "
        "(rebalance_curve JSONs), or 'wal' (the durability arm of "
        "perf_baseline JSONs alone)",
    )
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--smoke", required=True, help="freshly recorded smoke JSON")
    parser.add_argument(
        "--ratio-tolerance",
        type=float,
        default=0.2,
        help="one-sided tolerance below the baseline for same-scale ratio "
        "metrics (default 0.2 = -20%%)",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=2.0,
        help="hard speedup floor when the smoke runs at a different scale "
        "than the baseline (default 2.0)",
    )
    parser.add_argument(
        "--router-floor",
        type=float,
        default=0.7,
        help="hard router_ratio floor when the smoke runs at a different "
        "scale than the baseline (default 0.7)",
    )
    parser.add_argument(
        "--wal-floor",
        type=float,
        default=0.15,
        help="hard WAL/in-RAM throughput floor when the smoke runs at a "
        "different scale than the baseline (default 0.15 — at smoke "
        "scale the fixed fsync/checkpoint cost dominates a short run)",
    )
    parser.add_argument(
        "--service-floor",
        type=float,
        default=0.25,
        help="hard service_ratio floor when the smoke runs at a different "
        "scale than the baseline (default 0.25 — a single-core CI "
        "container timeshares the server, clients, and fleet workers; "
        "the committed full-scale baseline must hold >= 0.5)",
    )
    args = parser.parse_args()

    cmp = Comparison(load(args.baseline), load(args.smoke), args)
    if args.mode == "service":
        run_service(cmp)
    elif args.mode == "rebalance":
        run_rebalance(cmp)
    elif args.mode == "wal":
        run_wal(cmp)
    else:
        run_placement(cmp)
    return cmp.report()


if __name__ == "__main__":
    sys.exit(main())
