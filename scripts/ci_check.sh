#!/usr/bin/env bash
# Local mirror of the CI `lint`, `test`, `wal-soak`, `service-gates`,
# and `rebalance-gates` jobs — one command to run before pushing (see
# .github/workflows/ci.yml; the `perf-gates` smoke is covered by
# `scripts/bench.sh` + `scripts/bench_compare.py`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings -D deprecated"
cargo clippy --all-targets -- -D warnings -D deprecated

echo "==> RUSTDOCFLAGS=\"-D warnings\" cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> cargo build --release --all-targets"
cargo build --release --all-targets

echo "==> cargo test -q"
cargo test -q

# The crash matrix (proptest kill-point sweep) already ran inside
# `cargo test -q`; the ignored scale soak chains three kill/recover
# cycles over 100k txs and needs release mode to stay fast.
echo "==> cargo test --release -p optchain-core --test wal_golden -- --ignored (WAL soak)"
cargo test --release -p optchain-core --test wal_golden -- --ignored

# Delta-checkpoint smoke (mirrors the wal-soak job's final step): the
# durability arm alone at a delta-heavy cadence, gated by the wal-mode
# bench_compare checks — disk_factor <= 3.0, recovery bit-identity,
# and deltas measurably smaller than full snapshots.
echo "==> perf_baseline --wal --full-every 8 + bench_compare --mode wal (delta smoke)"
wal_smoke="$(mktemp /tmp/wal_smoke.XXXXXX.json)"
./target/release/perf_baseline --txs 50000 --k 16 \
  --min-speedup 0 --min-router-ratio 0 \
  --retention-window 10000 \
  --wal --min-wal-ratio 0 --full-every 8 --out "$wal_smoke"
python3 scripts/bench_compare.py --mode wal \
  --baseline BENCH_placement.json --smoke "$wal_smoke"
rm -f "$wal_smoke"

# Serving-path smoke (mirrors the CI `service-gates` job): loopback
# loadgen against the TCP placement server, then the service-mode
# bench_compare gates — zero lost acks, typed shedding under overload,
# p99 within the queue-derived bound.
echo "==> loadgen --smoke + bench_compare --mode service (service gates)"
service_smoke="$(mktemp /tmp/service_smoke.XXXXXX.json)"
./target/release/loadgen --smoke --out "$service_smoke"
python3 scripts/bench_compare.py --mode service \
  --baseline BENCH_service.json --smoke "$service_smoke"
rm -f "$service_smoke"

# Dynamic re-sharding smoke (mirrors the CI `rebalance-gates` job):
# hot-spot workload, static vs rebalanced arm, then the rebalance-mode
# bench_compare gates — the gated arm must beat static on both the
# cross-tx ratio and max-shard utilization, stay within its per-epoch
# byte budget, and replay deterministically.
echo "==> rebalance_curve --smoke + bench_compare --mode rebalance (rebalance gates)"
rebalance_smoke="$(mktemp /tmp/rebalance_smoke.XXXXXX.json)"
./target/release/rebalance_curve --smoke --out "$rebalance_smoke"
python3 scripts/bench_compare.py --mode rebalance \
  --baseline BENCH_rebalance.json --smoke "$rebalance_smoke"
rm -f "$rebalance_smoke"

echo "ci_check: all lint + test + crash-soak + delta-smoke + service + rebalance gates passed"
