#!/usr/bin/env bash
# Refreshes the recorded placement-throughput baseline
# (BENCH_placement.json at the repo root). Pass extra flags through to
# perf_baseline, e.g.: scripts/bench.sh --txs 200000 --k 8
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p optchain-bench --bin perf_baseline
./target/release/perf_baseline --out BENCH_placement.json "$@"
