//! Offline stand-in for `serde`: the derive macros expand to nothing
//! (see `serde_derive` in this workspace) and the traits are empty
//! markers so `use serde::{Serialize, Deserialize}` and bounds keep
//! compiling. No serialization happens through this shim — artefacts
//! such as `BENCH_placement.json` are emitted by hand-written writers.

pub use serde_derive::{Deserialize, Serialize};

/// Empty marker matching the name of `serde::Serialize`.
pub trait Serialize {}

/// Empty marker matching the name of `serde::Deserialize`.
pub trait Deserialize<'de> {}
