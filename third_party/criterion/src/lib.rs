//! Offline micro-benchmark harness exposing the subset of the
//! `criterion` API this workspace uses: groups, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros and [`black_box`].
//!
//! Timing model: each benchmark warms up once, then runs `sample_size`
//! samples; each sample repeats the closure enough times to exceed a
//! minimum sample duration. Mean, best and (when a throughput is set)
//! elements/second are printed to stdout. There is no statistical
//! regression machinery — this harness exists so `cargo bench` works
//! without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units of work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Iterations per sample, decided by the calibration pass.
    iters_per_sample: u64,
    samples: usize,
    /// Measured sample durations (per iteration, seconds).
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `f`, repeating it across the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: target ≥ 10 ms per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(10);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.per_iter.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / self.iters_per_sample as f64;
            self.per_iter.push(dt);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples,
        per_iter: Vec::new(),
    };
    f(&mut b);
    if b.per_iter.is_empty() {
        println!("bench {label}: no measurement (closure never called iter)");
        return;
    }
    let mean = b.per_iter.iter().sum::<f64>() / b.per_iter.len() as f64;
    let best = b.per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(", {:.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!(", {:.0} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!(
        "bench {label}: mean {} (best {}, {} samples × {} iters{rate})",
        fmt_time(mean),
        fmt_time(best),
        b.per_iter.len(),
        b.iters_per_sample,
    );
}

/// Declares a benchmark group function, in both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
