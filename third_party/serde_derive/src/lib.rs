//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! for forward compatibility but performs no serde serialization at
//! runtime (JSON artefacts are written by hand). With no registry access
//! the real proc-macro stack (`syn`/`quote`) is unavailable, so these
//! derives accept the `#[serde(...)]` helper attributes and expand to
//! nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers); expands
/// to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers);
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
