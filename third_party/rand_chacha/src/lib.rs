//! Offline stand-in for `rand_chacha`. The workspace only needs a
//! *deterministic, seedable, statistically solid* generator — not a
//! cryptographic stream cipher — so [`ChaCha8Rng`] is implemented as
//! xoshiro256** seeded through SplitMix64 (the reference seeding scheme).
//! Sequences are stable per seed across platforms and releases of this
//! workspace, which is what the experiments rely on.

use rand::{RngCore, SeedableRng};

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seeded generator (xoshiro256** under the hood).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        ChaCha8Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniformish_f64() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
