//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses. The container has no crates.io registry, so the real `rand`
//! cannot be vendored; this shim provides the same method names and
//! semantics (deterministic per seed, not cryptographic) for:
//!
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! * [`SeedableRng::seed_from_u64`]
//! * [`seq::SliceRandom::shuffle`]
//!
//! Anything outside that surface is intentionally absent.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an [`RngCore`] ("standard"
/// distribution: full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Fixed(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Fixed(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
