//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the result.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            inner: self,
            f,
            _strategy: std::marker::PhantomData,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F, T> {
    inner: S,
    f: F,
    _strategy: std::marker::PhantomData<fn() -> T>,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F, T> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (see `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; `options` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for arbitrary `bool`s.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}
