//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with a length drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
