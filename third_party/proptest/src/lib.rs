//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`strategy::Just`],
//! [`strategy::any`], [`prop_oneof!`], `prop_assert*` and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its case number and seed so
//!   it can be replayed deterministically;
//! * generation is driven by a fixed per-test deterministic RNG (test
//!   name × case index), so failures are reproducible by construction.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// FNV-1a of a string — used to derive a per-test RNG stream from the
/// test's name.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Defines property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// docs
///     #[test]
///     fn my_prop(x in 0u32..10, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        $crate::fnv(stringify!($name)),
                        __case as u64,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __case, __config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the enclosing property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the enclosing property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Uniform choice among heterogeneous strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
