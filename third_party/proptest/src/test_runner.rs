//! Test-runner types: config, error, and the deterministic RNG that
//! drives generation.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generation RNG (xoshiro256**), seeded from the test
/// name and case index so every failure is replayable.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for `(stream, case)` — same pair, same sequence.
    pub fn deterministic(stream: u64, case: u64) -> Self {
        let mut sm = stream ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
