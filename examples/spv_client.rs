//! The SPV deployment: a wallet that runs OptChain with bounded memory
//! and no access to the global chain — only the input ids of its own
//! transactions and published shard telemetry, exactly as the paper
//! proposes ("users do not need to download the complete transaction
//! history").
//!
//! ```sh
//! cargo run --release --example spv_client
//! ```

use optchain::prelude::*;

fn main() {
    let k = 8;
    let telemetry = vec![ShardTelemetry::new(0.1, 2.5); k as usize];

    // A wallet remembering at most 1000 transactions (~44 KB of state).
    let mut wallet = SpvWallet::new(k, 1_000);

    // The wallet learns where two incoming payments were placed (from
    // SPV proofs attached to the payments).
    wallet.observe_placed(TxId(100), 3);
    wallet.observe_placed(TxId(200), 5);

    // Spending the first payment: follows it into shard 3.
    let s1 = wallet.place(TxId(300), &[TxId(100)], &telemetry);
    println!("spend of tx#100            -> {s1}");

    // A consolidation spending both: picks the better-scoring parent
    // shard (both inputs' shards are involved either way).
    let s2 = wallet.place(TxId(301), &[TxId(300), TxId(200)], &telemetry);
    println!("consolidation of 300+200   -> {s2}");

    // A long change chain stays put...
    let mut prev = TxId(301);
    for i in 0..5u64 {
        let id = TxId(310 + i);
        let s = wallet.place(id, &[prev], &telemetry);
        println!("change chain hop {i}         -> {s}");
        prev = id;
    }

    // ...until that shard backs up, and the wallet diverts.
    let mut congested = telemetry.clone();
    congested[wallet.shard_of(prev).expect("just placed").index()] = ShardTelemetry::new(0.1, 60.0);
    let diverted = wallet.place(TxId(400), &[prev], &congested);
    println!("after shard backlog        -> {diverted} (diverted)");

    println!(
        "\nwallet state: {} txs remembered, ~{} bytes",
        wallet.len(),
        wallet.state_bytes(),
    );
}
