//! Run the full sharded-blockchain simulation: an OmniLedger-like system
//! at 4000 tps over 10 shards, comparing OptChain and random placement
//! end to end (confirmation latency, throughput, queue balance).
//!
//! ```sh
//! cargo run --release --example sharded_ledger_sim
//! ```

use optchain::prelude::*;

fn main() {
    let mut config = SimConfig::paper();
    config.n_shards = 10;
    config.tx_rate = 4_000.0;
    config.total_txs = 120_000;

    println!(
        "simulating {} txs at {} tps over {} shards ({} validators each)...\n",
        config.total_txs, config.tx_rate, config.n_shards, config.validators_per_shard,
    );
    let txs = Simulation::workload(&config);
    for strategy in [Strategy::OptChain, Strategy::OmniLedger] {
        let mut m =
            Simulation::run_on(config.clone(), strategy, &txs).expect("configuration is valid");
        println!("── {} ──", strategy.label());
        println!("  committed       {} / {}", m.committed, m.injected);
        println!("  cross-shard     {:.1} %", 100.0 * m.cross_fraction());
        println!(
            "  throughput      {:.0} tps (steady {:.0})",
            m.throughput(),
            m.steady_throughput()
        );
        println!("  mean latency    {:.2} s", m.mean_latency());
        println!("  p95 latency     {:.2} s", m.latencies.percentile(95.0));
        println!("  max latency     {:.2} s", m.max_latency());
        println!("  peak queue      {} txs", m.peak_queue);
        println!();
    }
}
