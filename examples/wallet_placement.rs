//! Wallet-side placement: what the paper's modified wallet software does
//! for each new transaction — compute T2S scores from the transaction's
//! inputs, estimate per-shard confirmation latency from observed
//! telemetry, and submit to the shard with the best temporal fitness.
//!
//! The wallet owns a [`Router`]: it feeds telemetry in as shards publish
//! it and submits transactions out, with no graph bookkeeping of its own.
//!
//! ```sh
//! cargo run --release --example wallet_placement
//! ```

use optchain::prelude::*;
use optchain_utxo::Transaction;

fn main() {
    let k = 4;
    let mut wallet = Router::builder().shards(k).build();

    // The wallet has observed this telemetry from the shards: shard 2 is
    // backlogged (its verification estimate reflects a long queue).
    wallet.feed_telemetry(&[
        ShardTelemetry::new(0.10, 2.5),
        ShardTelemetry::new(0.12, 2.5),
        ShardTelemetry::new(0.10, 25.0), // backlogged
        ShardTelemetry::new(0.11, 2.5),
    ]);

    // History: a coinbase and a spend.
    let history = [
        Transaction::coinbase(TxId(0), 100_000, WalletId(1)),
        Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(60_000, WalletId(2)))
            .output(TxOutput::new(39_000, WalletId(1)))
            .build(),
    ];
    for tx in &history {
        let shard = wallet.submit_tx(tx);
        println!("{tx} -> {shard}");
    }

    // A new payment spending both outputs of tx#1 arrives. Show the full
    // decision breakdown the wallet computes.
    let payment = Transaction::builder(TxId(2))
        .input(TxId(1).outpoint(0))
        .input(TxId(1).outpoint(1))
        .output(TxOutput::new(98_000, WalletId(3)))
        .build();
    let decision = wallet.submit_tx_with_detail(&payment);

    println!("\ndecision for {payment}:");
    println!("  shard   T2S        L2S (s)   fitness");
    for j in 0..k as usize {
        let marker = if j == decision.shard().index() {
            " <- chosen"
        } else {
            ""
        };
        println!(
            "  {:<7} {:<10.6} {:<9.2} {:.6}{marker}",
            j,
            decision.t2s()[j],
            decision.l2s()[j],
            decision.fitness()[j],
        );
    }
    println!(
        "\nthe transaction follows its parents' shard unless that shard is backlogged \
         (the wallet would divert it if {} backed up).",
        decision.shard(),
    );
}
