//! The 2015-style spam attack (Fig 2c): a flood of many-input sweep
//! transactions bumps the TaN network's average degree, and placement
//! quality degrades gracefully under it.
//!
//! ```sh
//! cargo run --release --example spam_attack
//! ```

use optchain::prelude::*;
use optchain::tan::stats::windowed_average_degree;
use optchain::workload::SpamEpisode;

fn main() {
    let n = 60_000usize;
    let attack = SpamEpisode {
        start: n * 2 / 3,
        len: n / 30,
        sweep_inputs: 50,
        sweep_probability: 0.5,
    };
    println!(
        "stream of {n} txs with a spam episode at tx {} ({} txs, {}-input sweeps)\n",
        attack.start, attack.len, attack.sweep_inputs,
    );
    let attack_start = attack.start;
    let config = WorkloadConfig::bitcoin_like()
        .with_seed(7)
        .with_spam(attack);
    let txs: Vec<_> = WorkloadGenerator::new(config).take(n).collect();
    let tan = TanGraph::from_transactions(txs.iter());

    println!("average TaN degree per {}-tx window:", n / 12);
    for (at, avg) in windowed_average_degree(&tan, n / 12) {
        let bar = "#".repeat((avg * 8.0) as usize);
        println!("  up to {at:>6}: {avg:>5.2} {bar}");
    }

    // Placement under attack: cross-shard rate before vs during.
    let outcome = replay(&txs, &mut OptChainPlacer::new(8));
    let cross_in = |lo: usize, hi: usize| {
        let mut cross = 0;
        for i in lo..hi {
            if optchain::tan::stats::is_cross_tx(&tan, &outcome.assignments, NodeId(i as u32)) {
                cross += 1;
            }
        }
        100.0 * cross as f64 / (hi - lo) as f64
    };
    println!(
        "\nOptChain cross-TX rate before the attack: {:.1} %",
        cross_in(attack_start / 2, attack_start),
    );
    println!(
        "OptChain cross-TX rate during the attack:  {:.1} %",
        cross_in(attack_start, attack_start + n / 30),
    );
    println!(
        "(the degree spikes, yet consolidation sweeps often drain whole wallet \
         families at once — T2S places each sweep with the bulk of its parents, \
         so the cross rate can even drop during the flood)"
    );
}
