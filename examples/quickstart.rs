//! Quickstart: generate a Bitcoin-like transaction stream, place it with
//! OptChain and with OmniLedger's random placement, and compare
//! cross-shard fractions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use optchain::prelude::*;

fn main() {
    let shards = 8;
    let n = 50_000;
    println!("generating {n} Bitcoin-like transactions...");
    let txs = optchain::workload::generate(WorkloadConfig::bitcoin_like().with_seed(42), n);

    println!(
        "placing with OptChain and with random (OmniLedger) placement over {shards} shards..."
    );
    let optchain = replay_router(&txs, &mut Router::builder().shards(shards).build());
    let random = replay_router(
        &txs,
        &mut Router::builder()
            .shards(shards)
            .strategy(Strategy::OmniLedger)
            .build(),
    );

    println!();
    println!(
        "OptChain:   {:6} cross-shard txs ({:.1} %), shard-size ratio {:.2}",
        optchain.cross,
        100.0 * optchain.cross_fraction(),
        optchain.size_ratio(),
    );
    println!(
        "OmniLedger: {:6} cross-shard txs ({:.1} %), shard-size ratio {:.2}",
        random.cross,
        100.0 * random.cross_fraction(),
        random.size_ratio(),
    );
    println!(
        "\nOptChain reduced cross-shard transactions by {:.1}x while staying balanced.",
        random.cross as f64 / optchain.cross.max(1) as f64,
    );
}
