//! Quickstart: place a Bitcoin-like stream two ways —
//!
//! 1. through a single [`Router`] (one decision stream, bit-exact
//!    replays — how the paper's tables are produced), comparing
//!    OptChain against OmniLedger's random placement;
//! 2. through a [`RouterFleet`] (N worker routers partitioned by
//!    client, with periodic TaN cross-sync — the concurrent placement
//!    *service*), showing what sharded ingestion costs in placement
//!    quality at different sync cadences;
//! 3. with a [`RetentionPolicy`] — the streaming deployment, where
//!    placement state must stay O(window) instead of growing with the
//!    stream.
//!
//! Rule of thumb: reach for `Router` when one thread can carry the
//! load or when you need bit-exact reproducibility against the golden
//! tests; reach for `RouterFleet` when ingestion itself must scale
//! across cores and a bounded sync staleness is acceptable; add a
//! `RetentionPolicy` whenever the stream outlives the memory you are
//! willing to give it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use optchain::prelude::*;

fn main() {
    let shards = 8;
    let n = 50_000usize;
    println!("generating {n} Bitcoin-like transactions...");
    let txs = optchain::workload::generate(WorkloadConfig::bitcoin_like().with_seed(42), n);

    // --- 1. single Router: the paper's client-side algorithm ---------
    println!(
        "placing with OptChain and with random (OmniLedger) placement over {shards} shards..."
    );
    let optchain = replay_router(&txs, &mut Router::builder().shards(shards).build());
    let random = replay_router(
        &txs,
        &mut Router::builder()
            .shards(shards)
            .strategy(Strategy::OmniLedger)
            .build(),
    );
    println!();
    println!(
        "OptChain:   {:6} cross-shard txs ({:.1} %), shard-size ratio {:.2}",
        optchain.cross,
        100.0 * optchain.cross_fraction(),
        optchain.size_ratio(),
    );
    println!(
        "OmniLedger: {:6} cross-shard txs ({:.1} %), shard-size ratio {:.2}",
        random.cross,
        100.0 * random.cross_fraction(),
        random.size_ratio(),
    );
    println!(
        "\nOptChain reduced cross-shard transactions by {:.1}x while staying balanced.",
        random.cross as f64 / optchain.cross.max(1) as f64,
    );

    // --- 2. RouterFleet: the concurrent placement service ------------
    let workers = 4usize;
    println!("\nnow through a {workers}-worker RouterFleet (clients sharded across workers):");
    let stream: Arc<[Transaction]> = txs.into();
    for sync_interval in [1_000u64, 10_000, 0] {
        let fleet = RouterFleet::builder()
            .shards(shards)
            .workers(workers)
            .partitioner(|client| client as usize)
            .sync_interval(sync_interval)
            .expected_total(n as u64)
            .build();
        // Four clients feed chunks concurrently-shaped but
        // deterministically ordered; results come back via drain.
        let handles: Vec<FleetHandle> = (0..workers as u64).map(|c| fleet.handle(c)).collect();
        for (i, start) in (0..n).step_by(1_024).enumerate() {
            let _ =
                handles[i % workers].submit_batch_detached(&stream, start..(start + 1_024).min(n));
        }
        fleet.flush();
        let placed: u64 = handles.iter().map(|h| h.drain().len() as u64).sum();
        let stats = fleet.stats();
        let label = if sync_interval == 0 {
            "sync off        ".to_string()
        } else {
            format!("sync every {sync_interval:>5}")
        };
        println!(
            "  {label}: {placed} placed, {} foreign parents unresolved at placement, {} adoptions",
            stats.missing_parent_refs, stats.adopted,
        );
    }
    println!(
        "\nTighter sync intervals resolve more cross-worker spends (fewer unresolved \
         parents) at the cost of more synchronization — a 1-worker fleet is bit-identical \
         to the Router above."
    );

    // --- 3. RetentionPolicy: bounded-memory streaming ----------------
    println!("\nnow with a bounded-memory lifecycle (streaming deployment):");
    let window = 5_000usize;
    let mut unbounded = Router::builder().shards(shards).build();
    let mut windowed = Router::builder()
        .shards(shards)
        .retention(RetentionPolicy::WindowTxs(window))
        .build();
    let mut hubs = Router::builder()
        .shards(shards)
        .retention(RetentionPolicy::KeepUnspentAndHubs { min_degree: 8 })
        .build();
    for tx in stream.iter() {
        unbounded.submit_tx(tx);
        windowed.submit_tx(tx);
        hubs.submit_tx(tx);
    }
    windowed.compact(); // checkpoint-time shrink
    hubs.compact();
    for (label, router) in [
        ("Unbounded        ", &unbounded),
        ("WindowTxs(5000)  ", &windowed),
        ("KeepUnspentAndHubs", &hubs),
    ] {
        println!(
            "  {label}: {:>6} live nodes, {:>7} evicted, TaN arena {:>8} bytes",
            router.tan().live_len(),
            router.tan().evicted_nodes(),
            router.tan().arena_bytes(),
        );
    }
    println!(
        "\nA windowed router holds O(window) graph state no matter how long the stream \
         runs; KeepUnspentAndHubs additionally keeps old unspent outputs and hubs \
         resolvable. Every tx whose parents sit inside the window places exactly as \
         the unbounded router placed it."
    );
}
