//! Fixed-width text tables.

use std::fmt;

/// A fixed-width text table, used by every experiment binary to print the
/// paper's tables and figure series in a diff-friendly form.
///
/// # Example
///
/// ```
/// use optchain_metrics::Table;
///
/// let mut t = Table::new(["k", "Metis", "Greedy"]);
/// t.row(["4", "1.66%", "24.62%"]);
/// t.row(["8", "3.09%", "27.02%"]);
/// let text = t.to_string();
/// assert!(text.contains("Metis"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || matches!(c, '.' | '%' | '-' | '+' | ','));
                if numeric && !cell.is_empty() {
                    write!(f, "{cell:>w$}")?;
                } else {
                    write!(f, "{cell:<w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimal places — terse helper for table
/// cells.
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_rule_rows() {
        let mut t = Table::new(["a", "bee"]);
        t.row(["1", "2"]);
        let s = t.to_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
        assert!(lines[0].contains("bee"));
    }

    #[test]
    fn columns_align_to_widest() {
        let mut t = Table::new(["name", "v"]);
        t.row(["longvaluehere", "1"]);
        t.row(["x", "22"]);
        let s = t.to_string();
        let lines: Vec<_> = s.lines().collect();
        // All lines equal length implies alignment worked.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = Table::new(["col"]);
        t.row(["5"]);
        t.row(["500"]);
        let s = t.to_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines[2], "  5");
        assert_eq!(lines[3], "500");
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(1.2345, 2), "1.23");
        assert_eq!(fmt_f(10.0, 1), "10.0");
    }
}
