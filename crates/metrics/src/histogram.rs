//! Integer-bucketed histograms with log-scale views.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A sparse histogram over non-negative integer values.
///
/// Used for the TaN degree distributions of Fig 2: `value` is a degree,
/// the count is the number of nodes with that degree. The log-log view the
/// paper plots is exposed via [`Histogram::log_log_points`] and the
/// cumulative view (Fig 2b) via [`Histogram::cumulative_fraction_below`].
///
/// # Example
///
/// ```
/// use optchain_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for d in [0, 1, 1, 2, 2, 2] {
///     h.record(d);
/// }
/// assert_eq!(h.count_of(2), 3);
/// assert_eq!(h.total(), 6);
/// // Fraction of samples strictly below 2: (1+2)/6.
/// assert!((h.cumulative_fraction_below(2) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample with the given integer value.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` samples with the given value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Number of samples with exactly this value.
    pub fn count_of(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().map(|(v, c)| *v as f64 * *c as f64).sum();
        sum / self.total as f64
    }

    /// Fraction of samples with value strictly below `value`.
    pub fn cumulative_fraction_below(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.counts.range(..value).map(|(_, c)| c).sum();
        below as f64 / self.total as f64
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(v, c)| (*v, *c))
    }

    /// `(ln(value), ln(frequency))` points for nonzero values — the log-log
    /// degree-distribution plot of Fig 2a.
    pub fn log_log_points(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .filter(|(v, _)| **v > 0)
            .map(|(v, c)| ((*v as f64).ln(), (*c as f64 / self.total as f64).ln()))
            .collect()
    }

    /// Least-squares slope of the log-log plot, i.e. the power-law exponent
    /// estimate. Returns `None` with fewer than two distinct nonzero values.
    pub fn power_law_slope(&self) -> Option<f64> {
        let pts = self.log_log_points();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|(x, _)| x).sum();
        let sy: f64 = pts.iter().map(|(_, y)| y).sum();
        let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some((n * sxy - sx * sy) / denom)
    }

    /// The smallest recorded value at or above quantile `q` (in
    /// `0.0..=1.0`): the value `v` such that at least `ceil(q · total)`
    /// samples are `<= v`. `quantile(0.5)` is the median, `quantile(0.99)`
    /// the p99 — the serving layer's latency summaries read these off the
    /// request histogram. Returns `None` on an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a finite value in `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(
            q.is_finite() && (0.0..=1.0).contains(&q),
            "quantile must be in 0.0..=1.0, got {q}"
        );
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (value, count) in self.counts.iter() {
            seen += count;
            if seen >= rank {
                return Some(*value);
            }
        }
        self.max_value()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let h: Histogram = [5u64, 5, 7].into_iter().collect();
        assert_eq!(h.count_of(5), 2);
        assert_eq!(h.count_of(7), 1);
        assert_eq!(h.count_of(6), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max_value(), Some(7));
    }

    #[test]
    fn mean_matches_manual() {
        let h: Histogram = [1u64, 2, 3, 4].into_iter().collect();
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cumulative_fraction_edges() {
        let h: Histogram = [1u64, 2, 3].into_iter().collect();
        assert_eq!(h.cumulative_fraction_below(0), 0.0);
        assert_eq!(h.cumulative_fraction_below(1), 0.0);
        assert!((h.cumulative_fraction_below(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.power_law_slope(), None);
    }

    #[test]
    fn power_law_slope_recovers_exponent() {
        // Build an exact power law: count(v) = round(1e6 * v^-2).
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            let c = (1e6 * (v as f64).powi(-2)).round() as u64;
            h.record_n(v, c);
        }
        let slope = h.power_law_slope().unwrap();
        assert!(
            (slope + 2.0).abs() < 0.05,
            "expected slope near -2, got {slope}"
        );
    }

    #[test]
    fn quantile_picks_expected_values() {
        let h: Histogram = (1..=100u64).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn quantile_with_repeated_values() {
        let mut h = Histogram::new();
        h.record_n(10, 99);
        h.record_n(1000, 1);
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.99), Some(10));
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn merge_sums_counts() {
        let a: Histogram = [1u64, 2].into_iter().collect();
        let mut b: Histogram = [2u64, 3].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.count_of(2), 2);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn log_log_skips_zero_values() {
        let h: Histogram = [0u64, 0, 1, 2].into_iter().collect();
        let pts = h.log_log_points();
        assert_eq!(pts.len(), 2); // values 1 and 2 only
    }
}
