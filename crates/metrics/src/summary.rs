//! Streaming scalar summaries.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics over `f64` samples using Welford's online
/// algorithm: constant memory, numerically stable mean and variance.
///
/// # Example
///
/// ```
/// use optchain_metrics::Summary;
///
/// let s: Summary = (1..=5).map(|v| v as f64).collect();
/// assert_eq!(s.count(), 5);
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 5.0);
/// assert!((s.variance() - 2.5).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample variance, or `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `true` iff no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.record(4.5);
        assert_eq!(s.mean(), 4.5);
        assert_eq!(s.min(), 4.5);
        assert_eq!(s.max(), 4.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        let all: Summary = xs.iter().copied().collect();
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        s.extend([4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 10.0);
    }
}

/// Gini coefficient of non-negative values: 0 = perfectly equal,
/// → 1 = concentrated. Used to summarize shard-load inequality
/// (complements the max/min ratio of Fig 7, which is ill-conditioned
/// when a queue momentarily drains to zero).
///
/// Returns 0.0 for empty input or all-zero values.
///
/// # Example
///
/// ```
/// use optchain_metrics::gini;
///
/// assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);
/// assert!(gini(&[0.0, 0.0, 30.0]) > 0.6);
/// ```
pub fn gini(values: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum();
    ((2.0 * weighted) / (n * total) - (n + 1.0) / n).max(0.0)
}

#[cfg(test)]
mod gini_tests {
    use super::gini;

    #[test]
    fn equal_values_are_zero() {
        assert_eq!(gini(&[3.0, 3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn concentration_increases_gini() {
        let even = gini(&[1.0, 1.0, 1.0, 1.0]);
        let skewed = gini(&[0.1, 0.1, 0.1, 3.7]);
        assert!(skewed > even + 0.5, "{even} vs {skewed}");
    }

    #[test]
    fn empty_and_zero_are_zero() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn bounded_by_one() {
        let g = gini(&[0.0, 0.0, 0.0, 1e9]);
        assert!(g > 0.0 && g < 1.0);
    }
}
