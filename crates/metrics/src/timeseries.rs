//! Fixed-width time-binned series.

use serde::{Deserialize, Serialize};

/// Aggregated statistics of one time bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Start of the bin (inclusive), in the series' time unit.
    pub start: f64,
    /// Number of samples recorded in the bin.
    pub count: u64,
    /// Sum of the sample values.
    pub sum: f64,
    /// Smallest sample value.
    pub min: f64,
    /// Largest sample value.
    pub max: f64,
}

impl Bin {
    fn empty(start: f64) -> Self {
        Bin {
            start,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Mean of the samples in the bin, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// `true` iff the bin holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A time series with fixed-width bins starting at time zero.
///
/// Figures 5–7 of the paper are all bin aggregations: committed
/// transactions per 50-second window (Fig 5, bin sum of 1-valued events)
/// and max/min shard queue sizes over time (Fig 6/7, bin max/min of
/// sampled queue lengths).
///
/// # Example
///
/// ```
/// use optchain_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new(50.0);
/// ts.record(10.0, 1.0);
/// ts.record(20.0, 1.0);
/// ts.record(60.0, 1.0);
/// assert_eq!(ts.bins().len(), 2);
/// assert_eq!(ts.bins()[0].count, 2);
/// assert_eq!(ts.bins()[1].start, 50.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_width: f64,
    bins: Vec<Bin>,
}

impl TimeSeries {
    /// Creates a series with the given bin width (same unit as timestamps).
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive and finite.
    pub fn new(bin_width: f64) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin width must be positive, got {bin_width}"
        );
        TimeSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Records a sample `value` observed at time `t >= 0`.
    ///
    /// Negative or non-finite timestamps are ignored.
    pub fn record(&mut self, t: f64, value: f64) {
        if !t.is_finite() || t < 0.0 || !value.is_finite() {
            return;
        }
        let idx = (t / self.bin_width) as usize;
        while self.bins.len() <= idx {
            let start = self.bins.len() as f64 * self.bin_width;
            self.bins.push(Bin::empty(start));
        }
        let bin = &mut self.bins[idx];
        bin.count += 1;
        bin.sum += value;
        bin.min = bin.min.min(value);
        bin.max = bin.max.max(value);
    }

    /// Records an event (value 1) at time `t` — convenience for counting.
    pub fn record_event(&mut self, t: f64) {
        self.record(t, 1.0);
    }

    /// All bins from time zero through the last recorded sample.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Per-bin event counts (Fig 5's "committed transactions per window").
    pub fn counts(&self) -> Vec<u64> {
        self.bins.iter().map(|b| b.count).collect()
    }

    /// Per-bin `(start, mean)` points, skipping empty bins.
    pub fn mean_points(&self) -> Vec<(f64, f64)> {
        self.bins
            .iter()
            .filter(|b| !b.is_empty())
            .map(|b| (b.start, b.mean()))
            .collect()
    }

    /// Largest bin count, or 0 when empty.
    pub fn peak_count(&self) -> u64 {
        self.bins.iter().map(|b| b.count).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_grow_on_demand() {
        let mut ts = TimeSeries::new(10.0);
        ts.record(35.0, 2.0);
        assert_eq!(ts.bins().len(), 4);
        assert!(ts.bins()[0].is_empty());
        assert_eq!(ts.bins()[3].count, 1);
        assert_eq!(ts.bins()[3].start, 30.0);
    }

    #[test]
    fn bin_statistics() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(0.1, 5.0);
        ts.record(0.2, 1.0);
        ts.record(0.9, 3.0);
        let b = ts.bins()[0];
        assert_eq!(b.count, 3);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 5.0);
        assert!((b.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn events_count() {
        let mut ts = TimeSeries::new(50.0);
        for t in [1.0, 2.0, 3.0, 51.0] {
            ts.record_event(t);
        }
        assert_eq!(ts.counts(), vec![3, 1]);
        assert_eq!(ts.peak_count(), 3);
    }

    #[test]
    fn rejects_bad_samples() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(-1.0, 1.0);
        ts.record(f64::NAN, 1.0);
        ts.record(1.0, f64::INFINITY);
        assert!(ts.bins().is_empty());
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_width_panics() {
        TimeSeries::new(0.0);
    }

    #[test]
    fn boundary_lands_in_upper_bin() {
        let mut ts = TimeSeries::new(10.0);
        ts.record(10.0, 1.0);
        assert_eq!(ts.bins().len(), 2);
        assert_eq!(ts.bins()[1].count, 1);
    }

    #[test]
    fn mean_points_skip_empty_bins() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(0.5, 2.0);
        ts.record(2.5, 4.0);
        let pts = ts.mean_points();
        assert_eq!(pts, vec![(0.0, 2.0), (2.0, 4.0)]);
    }
}
