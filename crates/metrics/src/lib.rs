//! Histograms, CDFs, time series, summaries and table rendering for the
//! OptChain experiment harness.
//!
//! Every figure in the paper's evaluation is a statistic over simulation
//! output: degree distributions (Fig 2), throughput/latency grids (Fig 3,
//! 4, 8, 9), commit-rate time series (Fig 5), queue-size time series
//! (Fig 6, 7) and a latency CDF (Fig 10). This crate provides the small,
//! dependency-free statistical toolkit those figures are computed with:
//!
//! * [`Summary`] — streaming mean/variance/min/max (Welford);
//! * [`Histogram`] — integer-bucketed counts with log-log views;
//! * [`Cdf`] — empirical distribution with percentile queries;
//! * [`TimeSeries`] — fixed-width time bins with min/max/mean/count;
//! * [`Table`] — fixed-width text table renderer used by every
//!   table/figure binary to print the paper's rows.
//!
//! # Example
//!
//! ```
//! use optchain_metrics::Summary;
//!
//! let mut s = Summary::new();
//! for v in [1.0, 2.0, 3.0] {
//!     s.record(v);
//! }
//! assert_eq!(s.mean(), 2.0);
//! assert_eq!(s.max(), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod histogram;
mod summary;
mod table;
mod timeseries;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use summary::{gini, Summary};
pub use table::{fmt_f, Table};
pub use timeseries::{Bin, TimeSeries};
