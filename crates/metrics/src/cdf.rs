//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
///
/// Samples are collected unsorted and sorted lazily on first query
/// ([`Cdf::freeze`] or any read method). Used for Fig 10 (latency
/// distribution at 6000 tps / 16 shards).
///
/// # Example
///
/// ```
/// use optchain_metrics::Cdf;
///
/// let mut cdf = Cdf::new();
/// cdf.extend([4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.percentile(50.0), 2.0);
/// assert_eq!(cdf.percentile(100.0), 4.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty CDF pre-sized for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Cdf {
            samples: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Records a sample.
    ///
    /// Non-finite samples are ignored (a latency can never be NaN; guarding
    /// here keeps percentile queries total).
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` iff no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sorts the sample buffer now instead of at first query.
    pub fn freeze(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Fraction of samples `<= value`, in `[0, 1]`.
    pub fn fraction_at_or_below(&mut self, value: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.freeze();
        let n = self.samples.partition_point(|s| *s <= value);
        n as f64 / self.samples.len() as f64
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) using nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty cdf");
        assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0,100]");
        self.freeze();
        if p == 0.0 {
            return self.samples[0];
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1)]
    }

    /// Evaluates the CDF at `points` evenly spaced values between min and
    /// max, returning `(value, fraction)` pairs — a plottable curve.
    pub fn curve(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.freeze();
        let lo = self.samples[0];
        let hi = *self.samples.last().expect("nonempty");
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        (0..points)
            .map(|i| {
                let v = lo + span * i as f64 / (points - 1).max(1) as f64;
                let n = self.samples.partition_point(|s| *s <= v);
                (v, n as f64 / self.samples.len() as f64)
            })
            .collect()
    }

    /// Mean of the samples, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.freeze();
        self.samples.last().copied()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut c = Cdf::new();
        for v in iter {
            c.record(v);
        }
        c
    }
}

impl Extend<f64> for Cdf {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_monotone() {
        let mut cdf: Cdf = [5.0, 1.0, 3.0, 3.0, 9.0].into_iter().collect();
        let f1 = cdf.fraction_at_or_below(1.0);
        let f3 = cdf.fraction_at_or_below(3.0);
        let f9 = cdf.fraction_at_or_below(9.0);
        assert!(f1 <= f3 && f3 <= f9);
        assert_eq!(f9, 1.0);
        assert_eq!(f1, 0.2);
        assert_eq!(f3, 0.6);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut cdf: Cdf = (1..=10).map(|v| v as f64).collect();
        assert_eq!(cdf.percentile(10.0), 1.0);
        assert_eq!(cdf.percentile(50.0), 5.0);
        assert_eq!(cdf.percentile(90.0), 9.0);
        assert_eq!(cdf.percentile(100.0), 10.0);
        assert_eq!(cdf.percentile(0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty cdf")]
    fn percentile_of_empty_panics() {
        Cdf::new().percentile(50.0);
    }

    #[test]
    fn nan_is_ignored() {
        let mut cdf = Cdf::new();
        cdf.record(f64::NAN);
        cdf.record(2.0);
        assert_eq!(cdf.len(), 1);
        assert_eq!(cdf.max(), Some(2.0));
    }

    #[test]
    fn curve_spans_range_and_ends_at_one() {
        let mut cdf: Cdf = (0..100).map(|v| v as f64).collect();
        let curve = cdf.curve(11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[10].0, 99.0);
        assert_eq!(curve[10].1, 1.0);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1, "cdf must be monotone");
        }
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut cdf = Cdf::new();
        cdf.record(1.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 1.0);
        cdf.record(0.5);
        assert_eq!(cdf.fraction_at_or_below(0.6), 0.5);
    }
}
