//! Metrics collected by a simulation run — the raw material of every
//! figure in the paper's evaluation.

use optchain_metrics::{Cdf, TimeSeries};

/// Everything a simulation run measures.
///
/// * Fig 3/4: [`SimMetrics::throughput`] over configs;
/// * Fig 5: [`SimMetrics::commits_per_window`];
/// * Fig 6/7: [`SimMetrics::queue_max`], [`SimMetrics::queue_min`],
///   [`SimMetrics::queue_ratio`];
/// * Fig 8/9/10: [`SimMetrics::latencies`] (mean, max, CDF).
#[derive(Debug, Clone)]
pub struct SimMetrics {
    /// Strategy label the run was driven by.
    pub strategy: &'static str,
    /// Transactions injected.
    pub injected: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted by the cross-shard protocol.
    pub aborted: u64,
    /// Cross-shard transactions among the injected.
    pub cross_txs: u64,
    /// Transactions still queued when the run ended.
    pub backlog: u64,
    /// Time of the last commit, seconds.
    pub makespan_s: f64,
    /// Confirmation latency (submission → commit) of every committed
    /// transaction, seconds.
    pub latencies: Cdf,
    /// Committed transactions per window (Fig 5; window width from the
    /// config, 50 s at paper scale).
    pub commits_per_window: TimeSeries,
    /// Maximum shard queue length over time (Fig 6).
    pub queue_max: TimeSeries,
    /// Minimum shard queue length over time (Fig 6).
    pub queue_min: TimeSeries,
    /// `max/max(min,1)` queue ratio over time (Fig 7).
    pub queue_ratio: TimeSeries,
    /// Committed transactions per shard.
    pub per_shard_committed: Vec<u64>,
    /// Consensus blocks run per shard (including lock/yank work blocks).
    pub per_shard_blocks: Vec<u64>,
    /// Work items (transactions, locks, yanks) processed per shard.
    pub per_shard_items: Vec<u64>,
    /// Largest queue length ever sampled on any shard.
    pub peak_queue: u64,
    /// L2S memo hits summed over every client placement session (plus
    /// the router-level memo). Zero for strategies without an L2S phase.
    pub l2s_memo_hits: u64,
    /// L2S memo misses, same scope as [`SimMetrics::l2s_memo_hits`].
    pub l2s_memo_misses: u64,
    /// TaN nodes still resident in the router's graph at the end of the
    /// run (window + retained survivors; equals
    /// `injected` when the retention policy is unbounded; 0 for fleet
    /// front-ends, whose replicas live on worker threads).
    pub tan_live_nodes: u64,
    /// TaN nodes evicted by the retention policy over the run — the
    /// "evicted mass" a streaming deployment sheds instead of holding.
    pub tan_evicted_nodes: u64,
    /// Aged nodes the policy retained past the horizon (unspent
    /// frontier / hubs under `KeepUnspentAndHubs`).
    pub tan_retained_nodes: u64,
    /// Heap bytes owned by the router's TaN adjacency arenas at the end
    /// of the run.
    pub tan_arena_bytes: u64,
    /// Migration epochs committed by the router's rebalancer over the
    /// run (0 without one).
    pub rebalance_epochs_committed: u64,
    /// Hub nodes re-homed between shards by the rebalancer.
    pub rebalance_nodes_moved: u64,
    /// Estimated placement-state bytes migrated by those moves — the
    /// cost side of the re-sharding tradeoff curve.
    pub rebalance_bytes_migrated: u64,
}

impl SimMetrics {
    pub(crate) fn new(
        strategy: &'static str,
        n_shards: u32,
        commit_window_s: f64,
        queue_sample_s: f64,
    ) -> Self {
        SimMetrics {
            strategy,
            injected: 0,
            committed: 0,
            aborted: 0,
            cross_txs: 0,
            backlog: 0,
            makespan_s: 0.0,
            latencies: Cdf::new(),
            commits_per_window: TimeSeries::new(commit_window_s),
            queue_max: TimeSeries::new(queue_sample_s),
            queue_min: TimeSeries::new(queue_sample_s),
            queue_ratio: TimeSeries::new(queue_sample_s),
            per_shard_committed: vec![0; n_shards as usize],
            per_shard_blocks: vec![0; n_shards as usize],
            per_shard_items: vec![0; n_shards as usize],
            peak_queue: 0,
            l2s_memo_hits: 0,
            l2s_memo_misses: 0,
            tan_live_nodes: 0,
            tan_evicted_nodes: 0,
            tan_retained_nodes: 0,
            tan_arena_bytes: 0,
            rebalance_epochs_committed: 0,
            rebalance_nodes_moved: 0,
            rebalance_bytes_migrated: 0,
        }
    }

    /// Fraction of L2S evaluations served from a session memo, in
    /// `[0, 1]` (0 when no L2S evaluation ran).
    pub fn l2s_memo_hit_rate(&self) -> f64 {
        let total = self.l2s_memo_hits + self.l2s_memo_misses;
        if total == 0 {
            0.0
        } else {
            self.l2s_memo_hits as f64 / total as f64
        }
    }

    /// Average number of work items per consensus block across shards —
    /// low fill means shards burn fixed consensus costs on small blocks.
    pub fn average_block_fill(&self) -> f64 {
        let blocks: u64 = self.per_shard_blocks.iter().sum();
        if blocks == 0 {
            return 0.0;
        }
        let items: u64 = self.per_shard_items.iter().sum();
        items as f64 / blocks as f64
    }

    /// System throughput: committed transactions divided by the makespan
    /// (the paper's definition: "the number of transaction divided by the
    /// total time for all transactions get committed").
    pub fn throughput(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.committed as f64 / self.makespan_s
        }
    }

    /// Steady-state throughput: commit rate over the *middle half* of the
    /// commit windows. The first quarter carries the pipeline-fill
    /// transient (no commits before a network round trip plus a consensus
    /// round) and the last quarter the drain; both dominate short
    /// scaled-down runs, while the paper's 10M-transaction runs make them
    /// negligible. Falls back to [`SimMetrics::throughput`] with fewer
    /// than four windows.
    pub fn steady_throughput(&self) -> f64 {
        let counts = self.commits_per_window.counts();
        if counts.len() < 4 {
            return self.throughput();
        }
        let lo = counts.len() / 4;
        let hi = counts.len() - counts.len() / 4;
        let interior = &counts[lo..hi];
        let commits: u64 = interior.iter().sum();
        commits as f64 / (interior.len() as f64 * self.commits_per_window.bin_width())
    }

    /// Mean confirmation latency, seconds.
    pub fn mean_latency(&self) -> f64 {
        self.latencies.mean()
    }

    /// Maximum confirmation latency, seconds (Fig 9).
    pub fn max_latency(&mut self) -> f64 {
        self.latencies.max().unwrap_or(0.0)
    }

    /// Fraction of committed transactions confirmed within `seconds`
    /// (Fig 10 reads this at 10 s).
    pub fn fraction_within(&mut self, seconds: f64) -> f64 {
        self.latencies.fraction_at_or_below(seconds)
    }

    /// Max-shard utilization: the busiest shard's processed work items
    /// over the per-shard mean, in `[1, k]`. `1.0` is a perfectly
    /// balanced run; the hot-spot scenarios the rebalancer targets push
    /// this toward `k` under static placement. `0` before any work ran.
    pub fn max_shard_utilization(&self) -> f64 {
        let total: u64 = self.per_shard_items.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.per_shard_items.len() as f64;
        let max = *self.per_shard_items.iter().max().expect("k >= 1");
        max as f64 / mean
    }

    /// Cross-shard fraction of the injected transactions.
    pub fn cross_fraction(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.cross_txs as f64 / self.injected as f64
        }
    }

    /// Whether the system kept up with the offered rate: throughput
    /// within `slack` (e.g. 0.95) of the offered rate and no residual
    /// backlog beyond one block per shard.
    pub fn sustained(&self, offered_rate: f64, slack: f64, block_txs: u32) -> bool {
        let shards = self.per_shard_committed.len() as u64;
        self.throughput() >= offered_rate * slack && self.backlog <= shards * block_txs as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimMetrics {
        let mut m = SimMetrics::new("test", 2, 10.0, 1.0);
        m.injected = 100;
        m.committed = 100;
        m.cross_txs = 25;
        m.makespan_s = 50.0;
        for i in 0..100 {
            m.latencies.record(1.0 + i as f64 / 100.0);
        }
        m
    }

    #[test]
    fn throughput_is_committed_over_makespan() {
        let m = sample();
        assert!((m.throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan_gives_zero_throughput() {
        let m = SimMetrics::new("x", 1, 10.0, 1.0);
        assert_eq!(m.throughput(), 0.0);
    }

    #[test]
    fn latency_statistics() {
        let mut m = sample();
        assert!((m.mean_latency() - 1.495).abs() < 1e-9);
        assert!((m.max_latency() - 1.99).abs() < 1e-12);
        assert!((m.fraction_within(1.495) - 0.5).abs() < 0.02);
    }

    #[test]
    fn cross_fraction_and_sustained() {
        let m = sample();
        assert!((m.cross_fraction() - 0.25).abs() < 1e-12);
        assert!(m.sustained(2.0, 0.95, 10));
        assert!(!m.sustained(4.0, 0.95, 10));
    }
}
