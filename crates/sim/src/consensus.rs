//! Intra-shard consensus timing.

use rand::Rng;

use crate::net::NetworkModel;
use crate::time::SimOffset;

/// Produces the wall-clock duration a shard committee needs to agree on
/// one block. Sealed to this crate's engine via the blanket usage, but
/// exposed so experiments can swap models.
pub trait ConsensusModel {
    /// Duration to commit a block of `n_txs` transactions totalling
    /// `block_bytes` bytes, with `rng` providing per-block jitter.
    fn block_duration<R: Rng + ?Sized>(
        &self,
        n_txs: u32,
        block_bytes: u64,
        rng: &mut R,
    ) -> SimOffset;
}

/// A PBFT-flavoured committee model, matching the paper's OmniLedger
/// setup (ByzCoin-style consensus over a gossip overlay):
///
/// 1. **Block dissemination** — the leader gossips the block through a
///    fan-out tree: `ceil(log_f(committee))` store-and-forward hops, each
///    paying the block's serialization time plus a hop latency;
/// 2. **Vote rounds** — two quorum rounds (prepare/commit); each waits
///    for the `2f+1`-th fastest committee member, i.e. the 2/3-quantile
///    round-trip in the sampled member-latency distribution;
/// 3. **Verification** — `verify_us_per_tx` of CPU per transaction.
///
/// Per-block jitter (±10%) models leader load variance.
#[derive(Debug, Clone)]
pub struct PbftLikeModel {
    /// Sorted one-way leader↔member latencies, seconds.
    member_latency: Vec<f64>,
    hops: u32,
    verify_s_per_tx: f64,
    transfer_s_per_byte: f64,
}

impl PbftLikeModel {
    /// Builds the model for one shard: members are placed at random
    /// distances around the leader (0–0.5 units).
    pub(crate) fn new<R: Rng + ?Sized>(
        net: &NetworkModel,
        validators: u32,
        gossip_fanout: u32,
        verify_us_per_tx: f64,
        rng: &mut R,
    ) -> Self {
        let mut member_latency: Vec<f64> = (0..validators)
            .map(|_| net.latency_at(rng.gen::<f64>() * 0.5))
            .collect();
        member_latency.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let hops = (validators as f64)
            .log(gossip_fanout as f64)
            .ceil()
            .max(1.0) as u32;
        PbftLikeModel {
            member_latency,
            hops,
            verify_s_per_tx: verify_us_per_tx / 1e6,
            transfer_s_per_byte: 1.0 / net_bytes_per_second(net),
        }
    }

    fn quorum_latency(&self) -> f64 {
        let idx = (self.member_latency.len() * 2) / 3;
        self.member_latency[idx.min(self.member_latency.len() - 1)]
    }
}

fn net_bytes_per_second(net: &NetworkModel) -> f64 {
    // Derive from a 1-byte transfer to avoid exposing internals.
    1.0 / net.transfer_seconds(1)
}

impl ConsensusModel for PbftLikeModel {
    fn block_duration<R: Rng + ?Sized>(
        &self,
        n_txs: u32,
        block_bytes: u64,
        rng: &mut R,
    ) -> SimOffset {
        let hop = self.quorum_latency();
        let dissemination =
            self.hops as f64 * (block_bytes as f64 * self.transfer_s_per_byte + hop);
        let votes = 2.0 * 2.0 * hop; // two rounds of quorum round-trips
        let verify = n_txs as f64 * self.verify_s_per_tx;
        let jitter = 0.9 + 0.2 * rng.gen::<f64>();
        SimOffset::from_secs_f64((dissemination + votes + verify) * jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(validators: u32) -> PbftLikeModel {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = NetworkModel::new(1, 1, 100.0, 50.0, 20.0, &mut rng);
        PbftLikeModel::new(&net, validators, 8, 250.0, &mut rng)
    }

    #[test]
    fn full_block_duration_is_seconds_scale() {
        // Paper scale: 1 MB block, 2000 txs, 400 validators, 20 Mbps.
        let m = model(400);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = m.block_duration(2_000, 1_000_000, &mut rng).as_secs_f64();
        assert!(
            (1.0..10.0).contains(&d),
            "block duration {d}s outside plausible range"
        );
    }

    #[test]
    fn more_bytes_take_longer() {
        let m = model(64);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let small = m.block_duration(10, 5_000, &mut rng).as_secs_f64();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let large = m.block_duration(10, 2_000_000, &mut rng).as_secs_f64();
        assert!(large > small);
    }

    #[test]
    fn more_validators_mean_more_hops() {
        let small = model(16);
        let large = model(4096);
        assert!(large.hops > small.hops);
    }

    #[test]
    fn empty_block_still_costs_votes() {
        let m = model(64);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = m.block_duration(0, 0, &mut rng).as_secs_f64();
        assert!(d > 0.1, "vote rounds have latency floors: {d}");
    }

    #[test]
    fn jitter_is_bounded() {
        let m = model(64);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let base: f64 = (0..200)
            .map(|_| m.block_duration(100, 50_000, &mut rng).as_secs_f64())
            .sum::<f64>()
            / 200.0;
        for _ in 0..200 {
            let d = m.block_duration(100, 50_000, &mut rng).as_secs_f64();
            assert!(d > base * 0.85 && d < base * 1.15, "{d} vs {base}");
        }
    }
}
