//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use optchain_core::{FleetHandle, PlacementSession, Placer, Router, RouterFleet};
use optchain_partition::{partition_kway, CsrGraph};
use optchain_tan::{NodeId, TanGraph};
use optchain_utxo::{OutPoint, Transaction};
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

use crate::config::{CrossShardProtocol, RateModel, SimConfig, Strategy};
use crate::consensus::{ConsensusModel, PbftLikeModel};
use crate::metrics::SimMetrics;
use crate::net::{Endpoint, NetworkModel};
use crate::telemetry::TelemetryBoard;
use crate::time::{SimOffset, SimTime};

/// Size in bytes of a proof-of-acceptance / yanked-UTXO message.
const PROOF_BYTES: u64 = 192;
/// Size in bytes of a yank request.
const REQUEST_BYTES: u64 = 96;

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// The provided transaction stream was shorter than
    /// `config.total_txs`.
    StreamTooShort {
        /// Transactions required.
        needed: u64,
        /// Transactions available.
        got: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::StreamTooShort { needed, got } => {
                write!(f, "transaction stream too short: need {needed}, got {got}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-transaction protocol state.
#[derive(Debug, Clone)]
struct TxState {
    output_shard: u32,
    /// Proof/yank responses still outstanding before commit can start.
    pending_responses: u32,
    /// Whether the transaction body reached the output shard
    /// (RapidChain) / the unlock-to-commit was sent (OmniLedger).
    ready_for_commit: bool,
    submitted: SimTime,
    committed: bool,
    aborted: bool,
    /// Input shards that issued a proof-of-rejection (double spends).
    rejected: bool,
}

/// A unit of work in a shard's mempool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkItem {
    /// Validate + lock the inputs of a cross-TX (input-shard side).
    Lock { tx: u32 },
    /// Validate + commit a transaction (output-shard side, or the single
    /// phase of a same-shard transaction).
    Commit { tx: u32 },
    /// Validate + yank an input transaction to the output shard
    /// (RapidChain input-shard side).
    Yank { tx: u32 },
}

impl WorkItem {
    fn tx(self) -> u32 {
        match self {
            WorkItem::Lock { tx } | WorkItem::Commit { tx } | WorkItem::Yank { tx } => tx,
        }
    }
}

#[derive(Debug)]
enum Event {
    /// Inject the next transaction from the stream.
    Inject,
    /// A message reaches a shard leader.
    ShardArrive { shard: u32, item: WorkItem },
    /// A proof-of-acceptance (or rejection) reaches the client driving
    /// `tx`.
    ClientProof { tx: u32, rejected: bool },
    /// A yank response reaches the output shard of `tx`.
    YankArrive { tx: u32 },
    /// A shard finished consensus on its current block.
    BlockDone { shard: u32 },
    /// Publish telemetry to clients.
    Telemetry,
    /// Sample queue lengths into the metrics.
    SampleQueues,
}

/// Priority-queue entry ordered by time then sequence (deterministic
/// tie-breaking).
struct Scheduled(SimTime, u64, Event);

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1).cmp(&(other.0, other.1))
    }
}

struct ShardState {
    mempool: VecDeque<WorkItem>,
    /// Items in the block currently under consensus (empty when idle).
    in_flight: Vec<WorkItem>,
}

/// The simulation driver.
///
/// See the crate docs for the modelled system; construct via
/// [`Simulation::run`] (strategy by name),
/// [`Simulation::run_with_router`] (a pre-configured
/// [`Router`]), [`Simulation::run_with_fleet`] (a concurrent
/// [`RouterFleet`] front-end), or [`Simulation::run_with_placer`]
/// (custom placement logic).
pub struct Simulation;

/// The placement service the engine drives: one owned [`Router`] with a
/// [`PlacementSession`] per client (the paper's client-side deployment,
/// bit-compatible with every prior figure), or a [`RouterFleet`] whose
/// per-client handles shard the ingress across worker threads (the
/// service-side deployment; decisions differ from a single router
/// because each worker sees a partial, periodically-synced TaN graph).
// One FrontEnd exists per engine; boxing the router variant would only
// add an indirection to the per-injection placement path.
#[allow(clippy::large_enum_variant)]
enum FrontEnd {
    Router {
        router: Router,
        /// One session per client, carrying the client's telemetry view
        /// and L2S memo keyed by the board version.
        sessions: Vec<PlacementSession>,
        /// Shard of every placed transaction, kept by the engine when
        /// the router runs a retention policy: the consensus layer
        /// still needs the producing shard of inputs whose nodes the
        /// router has evicted (a shard's UTXO set is not windowed —
        /// only the placement state is).
        placed: Option<HashMap<optchain_utxo::TxId, u32>>,
    },
    Fleet {
        fleet: RouterFleet,
        /// One handle per client (the fleet's partitioner maps clients
        /// to workers).
        handles: Vec<FleetHandle>,
        /// Shard of every placed transaction — the engine needs the
        /// global view for cross-TX accounting and input locking, which
        /// no single fleet worker holds.
        placed: HashMap<optchain_utxo::TxId, u32>,
        /// Mean client→shard one-way latency per shard: the fleet is a
        /// shared service, so it is fed one aggregate telemetry view
        /// instead of per-client views.
        mean_comm: Vec<f64>,
        /// Board version last fanned out to the fleet.
        fed_version: Option<u64>,
    },
}

impl FrontEnd {
    fn strategy_name(&self) -> &'static str {
        match self {
            FrontEnd::Router { router, .. } => router.strategy_name(),
            FrontEnd::Fleet { fleet, .. } => fleet.strategy_name(),
        }
    }

    /// The shard that placed transaction `txid` (which must have been
    /// submitted already).
    fn shard_of(&self, txid: optchain_utxo::TxId) -> u32 {
        match self {
            FrontEnd::Router { router, placed, .. } => match router
                .tan()
                .node(txid)
                .and_then(|node| router.assignments().get(node))
            {
                Some(shard) => shard.0,
                // Evicted from the windowed placement state: the
                // engine's own map still knows the producing shard.
                None => *placed
                    .as_ref()
                    .and_then(|map| map.get(&txid))
                    .expect("workload spends known transactions"),
            },
            FrontEnd::Fleet { placed, .. } => *placed
                .get(&txid)
                .expect("workload spends known transactions"),
        }
    }
}

impl Simulation {
    /// Generates the workload for `config` and runs `strategy` over it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid configurations.
    pub fn run(config: SimConfig, strategy: Strategy) -> Result<SimMetrics, SimError> {
        let txs = Self::workload(&config);
        Self::run_on(config, strategy, &txs)
    }

    /// The workload stream a config implies (callers sharing one stream
    /// across strategies — as every figure requires — generate it once).
    pub fn workload(config: &SimConfig) -> Vec<Transaction> {
        let wl = WorkloadConfig::bitcoin_like().with_seed(config.workload_seed);
        WorkloadGenerator::new(wl)
            .take(config.total_txs as usize)
            .collect()
    }

    /// Runs `strategy` over a caller-provided stream.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] or [`SimError::StreamTooShort`].
    pub fn run_on(
        config: SimConfig,
        strategy: Strategy,
        txs: &[Transaction],
    ) -> Result<SimMetrics, SimError> {
        check_config(&config)?;
        let k = config.n_shards;
        let mut builder = Router::builder()
            .shards(k)
            .strategy(strategy)
            .expected_total(config.total_txs);
        if strategy == Strategy::Metis {
            // The offline oracle: partition the full TaN network first.
            let tan = TanGraph::from_transactions(txs.iter().take(config.total_txs as usize));
            let csr = CsrGraph::from_tan(&tan);
            builder = builder.oracle(partition_kway(&csr, k, 0.1, config.seed));
        }
        Self::run_with_router(config, txs, builder.build())
    }

    /// Runs the simulation with any [`Placer`] — an adapter wrapping the
    /// placer into a [`Router`] (strategy-specific session memo reuse
    /// does not apply to opaque placers; decisions are unaffected).
    ///
    /// Boxing for the router requires `P: 'static` — one bound tighter
    /// than before the Router migration; placer types borrowing external
    /// state must move to [`Simulation::run_with_router`] with a
    /// [`optchain_core::DynPlacer::Custom`] of their own.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] or [`SimError::StreamTooShort`].
    pub fn run_with_placer<P: Placer + 'static>(
        config: SimConfig,
        txs: &[Transaction],
        placer: P,
    ) -> Result<SimMetrics, SimError> {
        let router = Router::builder().custom(Box::new(placer)).build();
        Self::run_with_router(config, txs, router)
    }

    /// Runs the simulation over a caller-configured, **fresh** [`Router`]
    /// (ablation binaries configure α/window/L2S mode through
    /// [`optchain_core::RouterBuilder`] and pass the result here). Each
    /// simulated client drives its own [`PlacementSession`], so the
    /// per-client L2S memos stay warm between telemetry publishes.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] or [`SimError::StreamTooShort`].
    ///
    /// # Panics
    ///
    /// Panics if the router's shard count disagrees with the config or
    /// the router has already placed transactions.
    pub fn run_with_router(
        config: SimConfig,
        txs: &[Transaction],
        router: Router,
    ) -> Result<SimMetrics, SimError> {
        check_config(&config)?;
        if (txs.len() as u64) < config.total_txs {
            return Err(SimError::StreamTooShort {
                needed: config.total_txs,
                got: txs.len() as u64,
            });
        }
        assert_eq!(
            router.k(),
            config.n_shards,
            "router shard count must match the simulation config"
        );
        assert!(
            router.tan().is_empty() && router.assignments().is_empty(),
            "the simulation requires a fresh router"
        );
        let sessions = (0..config.n_clients).map(|_| router.session()).collect();
        let placed = (router.retention() != optchain_core::RetentionPolicy::Unbounded)
            .then(|| HashMap::with_capacity(config.total_txs as usize));
        let front = FrontEnd::Router {
            router,
            sessions,
            placed,
        };
        Ok(Engine::new(config, txs, front).run())
    }

    /// Runs the simulation over a caller-configured, **fresh**
    /// [`RouterFleet`]: each simulated client submits through its own
    /// [`FleetHandle`], so placement runs on the fleet's worker threads
    /// with periodic TaN cross-sync. The fleet is fed one aggregate
    /// telemetry view per board publish (a shared service, unlike the
    /// per-client views of the single-router path), so metrics are
    /// *not* expected to be bit-identical to
    /// [`Simulation::run_with_router`] — they measure the sharded
    /// front-end deployment. Runs are deterministic for a fixed fleet
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] or [`SimError::StreamTooShort`].
    ///
    /// # Panics
    ///
    /// Panics if the fleet's shard count disagrees with the config or
    /// the fleet has already accepted submissions.
    pub fn run_with_fleet(
        config: SimConfig,
        txs: &[Transaction],
        fleet: RouterFleet,
    ) -> Result<SimMetrics, SimError> {
        check_config(&config)?;
        if (txs.len() as u64) < config.total_txs {
            return Err(SimError::StreamTooShort {
                needed: config.total_txs,
                got: txs.len() as u64,
            });
        }
        assert_eq!(
            fleet.k(),
            config.n_shards,
            "fleet shard count must match the simulation config"
        );
        assert_eq!(
            fleet.submitted(),
            0,
            "the simulation requires a fresh fleet"
        );
        let handles = (0..config.n_clients)
            .map(|c| fleet.handle(u64::from(c)))
            .collect();
        let front = FrontEnd::Fleet {
            fleet,
            handles,
            placed: HashMap::with_capacity(config.total_txs as usize),
            mean_comm: Vec::new(),
            fed_version: None,
        };
        Ok(Engine::new(config, txs, front).run())
    }
}

/// Maps `SimConfig::check` into a `SimError` at the API boundary.
fn check_config(config: &SimConfig) -> Result<(), SimError> {
    config.check().map_err(SimError::InvalidConfig)
}

struct Engine<'a> {
    config: SimConfig,
    txs: &'a [Transaction],
    /// The placement service: an owned router with per-client sessions,
    /// or a sharded fleet with per-client handles.
    front: FrontEnd,
    rng: ChaCha8Rng,
    net: NetworkModel,
    consensus: Vec<PbftLikeModel>,
    board: TelemetryBoard,
    /// Client→shard one-way latencies, `[client][shard]`, seconds.
    client_comm: Vec<Vec<f64>>,
    states: Vec<TxState>,
    shards: Vec<ShardState>,
    /// Outpoint → locking transaction (double-spend detection).
    locks: HashMap<OutPoint, u32>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: SimTime,
    next_tx: u64,
    metrics: SimMetrics,
    done_injecting: bool,
    /// Reused per-injection client telemetry buffer.
    telemetry_scratch: Vec<optchain_core::ShardTelemetry>,
    /// Reused per-injection input-shard buffer.
    input_shard_scratch: Vec<u32>,
}

impl<'a> Engine<'a> {
    fn new(config: SimConfig, txs: &'a [Transaction], mut front: FrontEnd) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let net = NetworkModel::new(
            config.n_clients,
            config.n_shards,
            config.base_latency_ms,
            config.latency_per_unit_ms,
            config.bandwidth_mbps,
            &mut rng,
        );
        let consensus: Vec<PbftLikeModel> = (0..config.n_shards)
            .map(|_| {
                PbftLikeModel::new(
                    &net,
                    config.validators_per_shard,
                    config.gossip_fanout,
                    config.verify_us_per_tx,
                    &mut rng,
                )
            })
            .collect();
        // Seed the telemetry with a full-block consensus estimate.
        let initial_consensus = consensus[0]
            .block_duration(config.block_txs, config.block_txs as u64 * 500, &mut rng)
            .as_secs_f64();
        let client_comm: Vec<Vec<f64>> = (0..config.n_clients)
            .map(|c| {
                (0..config.n_shards)
                    .map(|s| {
                        net.delay(Endpoint::Client(c), Endpoint::Shard(s), 0)
                            .as_secs_f64()
                    })
                    .collect()
            })
            .collect();
        let board = TelemetryBoard::new(
            config.n_shards,
            config.block_txs,
            initial_consensus,
            config.telemetry_fidelity,
        );
        let metrics = SimMetrics::new(
            front.strategy_name(),
            config.n_shards,
            config.commit_window_s,
            config.queue_sample_s,
        );
        let shards = (0..config.n_shards)
            .map(|_| ShardState {
                mempool: VecDeque::new(),
                in_flight: Vec::new(),
            })
            .collect();
        if let FrontEnd::Fleet { mean_comm, .. } = &mut front {
            // The fleet is one shared service: its telemetry view uses
            // the mean client→shard latency per shard.
            *mean_comm = (0..config.n_shards as usize)
                .map(|s| {
                    client_comm.iter().map(|row| row[s]).sum::<f64>() / client_comm.len() as f64
                })
                .collect();
        }
        Engine {
            config,
            txs,
            front,
            rng,
            net,
            consensus,
            board,
            client_comm,
            states: Vec::new(),
            shards,
            locks: HashMap::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            next_tx: 0,
            metrics,
            done_injecting: false,
            telemetry_scratch: Vec::new(),
            input_shard_scratch: Vec::new(),
        }
    }

    fn schedule(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled(at, self.seq, event)));
    }

    fn schedule_in(&mut self, delay: SimOffset, event: Event) {
        self.schedule(self.now + delay, event);
    }

    fn run(mut self) -> SimMetrics {
        self.schedule(SimTime::ZERO, Event::Inject);
        self.schedule(
            SimTime::from_secs_f64(self.config.telemetry_interval_s),
            Event::Telemetry,
        );
        self.schedule(
            SimTime::from_secs_f64(self.config.queue_sample_s),
            Event::SampleQueues,
        );
        while let Some(Reverse(Scheduled(at, _, event))) = self.queue.pop() {
            self.now = at;
            match event {
                Event::Inject => self.on_inject(),
                Event::ShardArrive { shard, item } => self.on_shard_arrive(shard, item),
                Event::ClientProof { tx, rejected } => self.on_client_proof(tx, rejected),
                Event::YankArrive { tx } => self.on_yank_arrive(tx),
                Event::BlockDone { shard } => self.on_block_done(shard),
                Event::Telemetry => self.on_telemetry(),
                Event::SampleQueues => self.on_sample(),
            }
            if self.finished() {
                break;
            }
        }
        self.finalize()
    }

    fn finished(&self) -> bool {
        self.done_injecting
            && (self.metrics.committed + self.metrics.aborted) >= self.config.total_txs
    }

    fn finalize(mut self) -> SimMetrics {
        self.metrics.backlog = self
            .shards
            .iter()
            .map(|s| (s.mempool.len() + s.in_flight.len()) as u64)
            .sum();
        self.metrics.makespan_s = self.now.as_secs_f64();
        let (hits, misses) = match &self.front {
            // Aggregate the per-client session memos (plus any
            // router-level submissions, of which the engine makes none).
            FrontEnd::Router {
                router, sessions, ..
            } => {
                let (mut hits, mut misses) = router.l2s_memo_stats();
                for session in sessions {
                    let (h, m) = session.l2s_memo_stats();
                    hits += h;
                    misses += m;
                }
                (hits, misses)
            }
            FrontEnd::Fleet { fleet, .. } => {
                let stats = fleet.stats();
                let rb = stats.rebalance;
                self.metrics.rebalance_epochs_committed = rb.epochs_committed;
                self.metrics.rebalance_nodes_moved = rb.nodes_moved;
                self.metrics.rebalance_bytes_migrated = rb.bytes_migrated;
                (stats.l2s_memo_hits, stats.l2s_memo_misses)
            }
        };
        self.metrics.l2s_memo_hits = hits;
        self.metrics.l2s_memo_misses = misses;
        // Retention telemetry: how much TaN mass the lifecycle policy
        // evicted/retained over the run (all zero when unbounded).
        if let FrontEnd::Router { router, .. } = &self.front {
            self.metrics.tan_live_nodes = router.tan().live_len() as u64;
            self.metrics.tan_evicted_nodes = router.tan().evicted_nodes();
            self.metrics.tan_retained_nodes = router.tan().retained_nodes() as u64;
            self.metrics.tan_arena_bytes = router.tan().arena_bytes() as u64;
            let rb = router.rebalance_stats();
            self.metrics.rebalance_epochs_committed = rb.epochs_committed;
            self.metrics.rebalance_nodes_moved = rb.nodes_moved;
            self.metrics.rebalance_bytes_migrated = rb.bytes_migrated;
        }
        self.metrics
    }

    // --- event handlers ---------------------------------------------------

    fn on_inject(&mut self) {
        let seq = self.next_tx;
        let tx = &self.txs[seq as usize];
        self.next_tx += 1;
        if self.next_tx >= self.config.total_txs {
            self.done_injecting = true;
        } else {
            let gap = match self.config.rate_model {
                RateModel::Uniform => 1.0 / self.config.tx_rate,
                RateModel::Poisson => {
                    let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    -u.ln() / self.config.tx_rate
                }
            };
            self.schedule_in(SimOffset::from_secs_f64(gap), Event::Inject);
        }

        let client = (seq % self.config.n_clients as u64) as u32;
        let mut input_shards = std::mem::take(&mut self.input_shard_scratch);
        let shard = match &mut self.front {
            // Client-side placement through the client's session. A
            // client's telemetry view is a pure function of the
            // published board, so it is refreshed (and its memo epoch
            // re-keyed) only when the board version changed since the
            // client last submitted — between publishes a client's
            // consecutive placements share the session's L2S memo
            // whenever the input-shard set repeats.
            FrontEnd::Router {
                router,
                sessions,
                placed,
            } => {
                let session = &mut sessions[client as usize];
                if session.view_version() != Some(self.board.version()) {
                    self.board.client_view_into(
                        &self.client_comm[client as usize],
                        &mut self.telemetry_scratch,
                    );
                    session.set_view(&self.telemetry_scratch, self.board.version());
                }
                let shard = router.submit_tx_in(session, tx).0;
                // Migration-epoch adoption: if this submission crossed
                // an epoch boundary, the router committed the staged
                // move batch *before* placing it — adopt the re-homed
                // nodes into the engine's own placement mirror so
                // future lock requests resolve against the post-epoch
                // assignment. Work already scheduled keeps the shard it
                // resolved at lock time (held locks are holder-keyed,
                // so commits and aborts release them regardless of the
                // move) — the pre-epoch semantics for in-flight items.
                let mut moves = Vec::new();
                router.drain_rebalance_moves(&mut moves);
                if let Some(map) = placed.as_mut() {
                    for mv in &moves {
                        if let Some(slot) = map.get_mut(&mv.txid) {
                            *slot = mv.to.0;
                        }
                    }
                }
                let node = NodeId(seq as u32);
                debug_assert_eq!(router.tan().len() as u64, seq + 1);
                match placed {
                    // Retention lifecycle: the graph may already have
                    // evicted an input's node, but the shard that holds
                    // the UTXO still has to participate in the
                    // cross-shard protocol — resolve input shards from
                    // the engine's own map, exactly like the fleet arm.
                    Some(map) => {
                        map.insert(tx.id(), shard);
                        input_shards.clear();
                        for op in tx.inputs() {
                            let s = *map
                                .get(&op.txid)
                                .expect("workload spends known transactions");
                            if !input_shards.contains(&s) {
                                input_shards.push(s);
                            }
                        }
                    }
                    None => optchain_core::input_shards_into(
                        router.tan(),
                        router.assignments(),
                        node,
                        &mut input_shards,
                    ),
                }
                shard
            }
            // Service-side placement through the client's fleet handle:
            // the shared service observes one aggregate telemetry view,
            // fanned out once per board publish under a single epoch.
            FrontEnd::Fleet {
                fleet,
                handles,
                placed,
                mean_comm,
                fed_version,
            } => {
                if *fed_version != Some(self.board.version()) {
                    self.board
                        .client_view_into(mean_comm, &mut self.telemetry_scratch);
                    fleet.feed_telemetry(&self.telemetry_scratch);
                    *fed_version = Some(self.board.version());
                }
                let shard = handles[client as usize].submit_tx(tx).0;
                placed.insert(tx.id(), shard);
                // Distinct producer shards in first-appearance order —
                // the `input_shards_into` contract, computed from the
                // engine's global assignment map (no single worker
                // holds the whole graph).
                input_shards.clear();
                for op in tx.inputs() {
                    let s = *placed
                        .get(&op.txid)
                        .expect("workload spends known transactions");
                    if !input_shards.contains(&s) {
                        input_shards.push(s);
                    }
                }
                shard
            }
        };
        let cross = input_shards.iter().any(|s| *s != shard);
        self.metrics.injected += 1;
        if cross {
            self.metrics.cross_txs += 1;
        }
        let state = TxState {
            output_shard: shard,
            pending_responses: 0,
            ready_for_commit: false,
            submitted: self.now,
            committed: false,
            aborted: false,
            rejected: false,
        };
        self.states.push(state);
        let tx_idx = seq as u32;
        let from = Endpoint::Client(client);
        let bytes = tx.size_bytes() as u64;

        if !cross {
            // Same-shard (or coinbase): single commit phase.
            let delay = self.net.delay(from, Endpoint::Shard(shard), bytes);
            self.states[seq as usize].ready_for_commit = true;
            self.schedule_in(
                delay,
                Event::ShardArrive {
                    shard,
                    item: WorkItem::Commit { tx: tx_idx },
                },
            );
            input_shards.clear();
            self.input_shard_scratch = input_shards;
            return;
        }

        match self.config.protocol {
            CrossShardProtocol::OmniLedgerLock => {
                // Lock at every input shard; proofs return to the client.
                self.states[seq as usize].pending_responses = input_shards.len() as u32;
                for &i in &input_shards {
                    let delay = self.net.delay(from, Endpoint::Shard(i), bytes);
                    self.schedule_in(
                        delay,
                        Event::ShardArrive {
                            shard: i,
                            item: WorkItem::Lock { tx: tx_idx },
                        },
                    );
                }
            }
            CrossShardProtocol::RapidChainYank => {
                // Body to the output shard; it requests yanks on arrival.
                self.states[seq as usize].pending_responses =
                    input_shards.iter().filter(|s| **s != shard).count() as u32;
                let delay = self.net.delay(from, Endpoint::Shard(shard), bytes);
                // Yank requests fan out when the body arrives; modelled as
                // a routing step without consensus.
                let arrive = self.now + delay;
                for &i in &input_shards {
                    if i == shard {
                        continue;
                    }
                    let hop =
                        self.net
                            .delay(Endpoint::Shard(shard), Endpoint::Shard(i), REQUEST_BYTES);
                    self.schedule(
                        arrive + hop,
                        Event::ShardArrive {
                            shard: i,
                            item: WorkItem::Yank { tx: tx_idx },
                        },
                    );
                }
                if self.states[seq as usize].pending_responses == 0 {
                    // All inputs local after all: single phase.
                    self.states[seq as usize].ready_for_commit = true;
                    self.schedule(
                        arrive,
                        Event::ShardArrive {
                            shard,
                            item: WorkItem::Commit { tx: tx_idx },
                        },
                    );
                } else {
                    self.states[seq as usize].ready_for_commit = true;
                }
            }
        }
        input_shards.clear();
        self.input_shard_scratch = input_shards;
    }

    fn on_shard_arrive(&mut self, shard: u32, item: WorkItem) {
        if self.states[item.tx() as usize].aborted {
            return; // late messages of an aborted transaction
        }
        let state = &mut self.shards[shard as usize];
        state.mempool.push_back(item);
        self.board.set_queue(shard, state.mempool.len() as u64);
        self.maybe_start_block(shard);
    }

    fn maybe_start_block(&mut self, shard: u32) {
        let state = &mut self.shards[shard as usize];
        if !state.in_flight.is_empty() || state.mempool.is_empty() {
            return;
        }
        let take = (self.config.block_txs as usize).min(state.mempool.len());
        let items: Vec<WorkItem> = state.mempool.drain(..take).collect();
        let bytes: u64 = items
            .iter()
            .map(|item| self.txs[item.tx() as usize].size_bytes() as u64)
            .sum();
        state.in_flight = items;
        self.metrics.per_shard_blocks[shard as usize] += 1;
        self.metrics.per_shard_items[shard as usize] += take as u64;
        self.board.set_queue(shard, state.mempool.len() as u64);
        let mut duration =
            self.consensus[shard as usize].block_duration(take as u32, bytes, &mut self.rng);
        // Leader failure: the round times out and a view change runs
        // before the block can commit under the next leader.
        if self.config.leader_failure_rate > 0.0
            && self.rng.gen_bool(self.config.leader_failure_rate)
        {
            duration = duration
                + SimOffset::from_secs_f64(self.config.view_change_timeout_s)
                + self.consensus[shard as usize].block_duration(take as u32, bytes, &mut self.rng);
        }
        self.board.record_consensus(shard, duration.as_secs_f64());
        self.schedule_in(duration, Event::BlockDone { shard });
    }

    fn on_block_done(&mut self, shard: u32) {
        let items = std::mem::take(&mut self.shards[shard as usize].in_flight);
        for item in items {
            match item {
                WorkItem::Lock { tx } => self.commit_lock(shard, tx),
                WorkItem::Yank { tx } => self.commit_yank(shard, tx),
                WorkItem::Commit { tx } => self.commit_final(shard, tx),
            }
        }
        self.maybe_start_block(shard);
    }

    /// Lock the inputs held by `shard`; gossip proof (of acceptance or
    /// rejection) back to the client.
    fn commit_lock(&mut self, shard: u32, tx: u32) {
        let rejected = !self.try_lock_inputs(shard, tx);
        let client = Endpoint::Client((tx as u64 % self.config.n_clients as u64) as u32);
        let delay = self.net.delay(Endpoint::Shard(shard), client, PROOF_BYTES);
        self.schedule_in(delay, Event::ClientProof { tx, rejected });
    }

    /// RapidChain: lock + move the inputs, then notify the output shard
    /// directly.
    fn commit_yank(&mut self, shard: u32, tx: u32) {
        let ok = self.try_lock_inputs(shard, tx);
        let out = self.states[tx as usize].output_shard;
        let delay = self
            .net
            .delay(Endpoint::Shard(shard), Endpoint::Shard(out), PROOF_BYTES);
        if ok {
            self.schedule_in(delay, Event::YankArrive { tx });
        } else {
            self.states[tx as usize].rejected = true;
            self.abort(tx);
        }
    }

    /// Locks the outpoints of `tx` whose producing transactions live in
    /// `shard`. Returns `false` on a conflict (double spend).
    fn try_lock_inputs(&mut self, shard: u32, tx: u32) -> bool {
        let mut to_lock: Vec<OutPoint> = Vec::new();
        for op in self.txs[tx as usize].inputs() {
            if self.front.shard_of(op.txid) == shard {
                to_lock.push(*op);
            }
        }
        if to_lock
            .iter()
            .any(|op| self.locks.get(op).is_some_and(|holder| *holder != tx))
        {
            return false;
        }
        for op in to_lock {
            self.locks.insert(op, tx);
        }
        true
    }

    fn on_client_proof(&mut self, tx: u32, rejected: bool) {
        let state = &mut self.states[tx as usize];
        if state.aborted {
            return;
        }
        if rejected {
            state.rejected = true;
        }
        state.pending_responses = state.pending_responses.saturating_sub(1);
        if state.pending_responses > 0 {
            return;
        }
        if state.rejected {
            self.abort(tx);
            return;
        }
        // All proofs of acceptance: unlock-to-commit to the output shard.
        let out = state.output_shard;
        let client = Endpoint::Client((tx as u64 % self.config.n_clients as u64) as u32);
        let bytes = self.txs[tx as usize].size_bytes() as u64 + PROOF_BYTES;
        let delay = self.net.delay(client, Endpoint::Shard(out), bytes);
        self.states[tx as usize].ready_for_commit = true;
        self.schedule_in(
            delay,
            Event::ShardArrive {
                shard: out,
                item: WorkItem::Commit { tx },
            },
        );
    }

    fn on_yank_arrive(&mut self, tx: u32) {
        let state = &mut self.states[tx as usize];
        if state.aborted {
            return;
        }
        state.pending_responses = state.pending_responses.saturating_sub(1);
        if state.pending_responses == 0 && !state.committed {
            let out = state.output_shard;
            self.shards[out as usize]
                .mempool
                .push_back(WorkItem::Commit { tx });
            self.board
                .set_queue(out, self.shards[out as usize].mempool.len() as u64);
            self.maybe_start_block(out);
        }
    }

    fn commit_final(&mut self, shard: u32, tx: u32) {
        let state = &mut self.states[tx as usize];
        if state.committed || state.aborted {
            return;
        }
        state.committed = true;
        let latency = self.now.since(state.submitted).as_secs_f64();
        self.metrics.committed += 1;
        self.metrics.per_shard_committed[shard as usize] += 1;
        self.metrics.latencies.record(latency);
        self.metrics
            .commits_per_window
            .record_event(self.now.as_secs_f64());
    }

    fn abort(&mut self, tx: u32) {
        let state = &mut self.states[tx as usize];
        if state.aborted || state.committed {
            return;
        }
        state.aborted = true;
        self.metrics.aborted += 1;
        // Unlock-to-abort: release any inputs this transaction locked.
        self.locks.retain(|_, holder| *holder != tx);
    }

    fn on_telemetry(&mut self) {
        self.board.publish();
        if !self.finished() {
            self.schedule_in(
                SimOffset::from_secs_f64(self.config.telemetry_interval_s),
                Event::Telemetry,
            );
        }
    }

    fn on_sample(&mut self) {
        let t = self.now.as_secs_f64();
        let lens: Vec<u64> = self.shards.iter().map(|s| s.mempool.len() as u64).collect();
        let max = lens.iter().copied().max().unwrap_or(0);
        let min = lens.iter().copied().min().unwrap_or(0);
        self.metrics.queue_max.record(t, max as f64);
        self.metrics.queue_min.record(t, min as f64);
        self.metrics
            .queue_ratio
            .record(t, max as f64 / min.max(1) as f64);
        self.metrics.peak_queue = self.metrics.peak_queue.max(max);
        if !self.finished() {
            self.schedule_in(
                SimOffset::from_secs_f64(self.config.queue_sample_s),
                Event::SampleQueues,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimConfig {
        let mut c = SimConfig::small();
        c.total_txs = 3_000;
        c.tx_rate = 400.0;
        c.n_shards = 4;
        c
    }

    #[test]
    fn all_transactions_commit_at_sustainable_rate() {
        let m = Simulation::run(quick_config(), Strategy::OptChain).unwrap();
        assert_eq!(m.injected, 3_000);
        assert_eq!(m.committed, 3_000);
        assert_eq!(m.aborted, 0);
        assert_eq!(m.backlog, 0);
        assert!(m.mean_latency() > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Simulation::run(quick_config(), Strategy::Greedy).unwrap();
        let b = Simulation::run(quick_config(), Strategy::Greedy).unwrap();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.cross_txs, b.cross_txs);
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-12);
        assert!((a.mean_latency() - b.mean_latency()).abs() < 1e-12);
    }

    #[test]
    fn strategies_share_the_same_stream() {
        let config = quick_config();
        let txs = Simulation::workload(&config);
        let a = Simulation::run_on(config.clone(), Strategy::OptChain, &txs).unwrap();
        let b = Simulation::run_on(config, Strategy::OmniLedger, &txs).unwrap();
        assert_eq!(a.injected, b.injected);
        // Different placement, different cross counts.
        assert!(a.cross_txs < b.cross_txs);
    }

    #[test]
    fn optchain_beats_random_on_latency_and_cross() {
        let config = quick_config();
        let txs = Simulation::workload(&config);
        let opt = Simulation::run_on(config.clone(), Strategy::OptChain, &txs).unwrap();
        let rand = Simulation::run_on(config, Strategy::OmniLedger, &txs).unwrap();
        assert!(
            opt.cross_fraction() < rand.cross_fraction() * 0.8,
            "cross: optchain {} vs random {}",
            opt.cross_fraction(),
            rand.cross_fraction()
        );
        assert!(
            opt.mean_latency() < rand.mean_latency(),
            "latency: optchain {} vs random {}",
            opt.mean_latency(),
            rand.mean_latency()
        );
    }

    #[test]
    fn overload_builds_backlog() {
        let mut config = quick_config();
        config.tx_rate = 50_000.0; // far beyond capacity
        config.total_txs = 6_000;
        let m = Simulation::run(config, Strategy::OmniLedger).unwrap();
        assert!(
            m.backlog > 0 || m.mean_latency() > 5.0,
            "overload must back up: backlog {}, latency {}",
            m.backlog,
            m.mean_latency()
        );
    }

    #[test]
    fn rapidchain_yank_also_commits_everything() {
        let mut config = quick_config();
        config.protocol = CrossShardProtocol::RapidChainYank;
        let m = Simulation::run(config, Strategy::OptChain).unwrap();
        assert_eq!(m.committed, 3_000);
        assert_eq!(m.aborted, 0);
    }

    #[test]
    fn rebalanced_hotspot_run_commits_and_migrates() {
        use optchain_core::RebalancePolicy;
        let mut config = quick_config();
        config.total_txs = 4_000;
        let wl = WorkloadConfig::bitcoin_like()
            .with_seed(config.workload_seed)
            .with_hotspot(optchain_workload::HotSpotConfig {
                hubs: 4,
                p_hot: 0.6,
                start: 500,
            });
        let txs: Vec<Transaction> = WorkloadGenerator::new(wl)
            .take(config.total_txs as usize)
            .collect();
        let k = config.n_shards;
        let build = move || {
            Router::builder()
                .shards(k)
                .rebalancer(
                    RebalancePolicy::default()
                        .with_epoch_interval(500)
                        .with_min_in_degree(2),
                )
                .build()
        };
        let m = Simulation::run_with_router(config.clone(), &txs, build()).unwrap();
        // The epoch protocol must run to completion under consensus:
        // every transaction still commits, and the hot-spot forces real
        // migrations.
        assert_eq!(m.committed, 4_000);
        assert_eq!(m.aborted, 0);
        assert!(m.rebalance_epochs_committed > 0, "no epoch committed");
        assert!(m.rebalance_nodes_moved > 0, "no hub moved");
        assert!(m.rebalance_bytes_migrated > 0);
        // Same stream + same policy → same epochs, same moves, same
        // cross count (the determinism contract).
        let n = Simulation::run_with_router(config, &txs, build()).unwrap();
        assert_eq!(m.rebalance_epochs_committed, n.rebalance_epochs_committed);
        assert_eq!(m.rebalance_nodes_moved, n.rebalance_nodes_moved);
        assert_eq!(m.rebalance_bytes_migrated, n.rebalance_bytes_migrated);
        assert_eq!(m.cross_txs, n.cross_txs);
        assert_eq!(m.per_shard_items, n.per_shard_items);
    }

    #[test]
    fn stream_too_short_is_an_error() {
        let config = quick_config();
        let txs = Simulation::workload(&config);
        let err = Simulation::run_on(config, Strategy::OptChain, &txs[..10]).unwrap_err();
        assert!(matches!(err, SimError::StreamTooShort { .. }));
    }

    #[test]
    fn invalid_config_is_an_error() {
        let mut config = quick_config();
        config.n_shards = 0;
        let err = Simulation::run(config, Strategy::OptChain).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn double_spend_injection_aborts() {
        // Hand-build a stream with a conflicting spend: tx2 and tx3 both
        // spend tx0's output. The workload generator never does this, so
        // build manually. tx3 must abort (or tx2, depending on timing).
        use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};
        let mut txs = vec![
            Transaction::coinbase(TxId(0), 100, WalletId(0)),
            Transaction::coinbase(TxId(1), 100, WalletId(1)),
        ];
        txs.push(
            Transaction::builder(TxId(2))
                .input(TxId(0).outpoint(0))
                .input(TxId(1).outpoint(0))
                .output(TxOutput::new(50, WalletId(2)))
                .build(),
        );
        txs.push(
            Transaction::builder(TxId(3))
                .input(TxId(0).outpoint(0)) // conflict!
                .input(TxId(1).outpoint(0)) // conflict!
                .output(TxOutput::new(50, WalletId(3)))
                .build(),
        );
        // Pad with independent coinbases so the run has enough volume.
        for i in 4..50u64 {
            txs.push(Transaction::coinbase(TxId(i), 1, WalletId(i as u32)));
        }
        let mut config = quick_config();
        config.total_txs = 50;
        config.tx_rate = 10.0; // slow enough that tx2 locks before tx3
        let m =
            Simulation::run_with_placer(config, &txs, optchain_core::RandomPlacer::new(4)).unwrap();
        assert_eq!(m.aborted, 1, "exactly one of the conflicting txs aborts");
        assert_eq!(m.committed, 49);
    }

    #[test]
    fn leader_failures_slow_the_system() {
        let mut healthy = quick_config();
        healthy.total_txs = 4_000;
        let txs = Simulation::workload(&healthy);
        let mut failing = healthy.clone();
        failing.leader_failure_rate = 0.3;
        failing.view_change_timeout_s = 5.0;
        let a = Simulation::run_on(healthy, Strategy::OptChain, &txs).unwrap();
        let b = Simulation::run_on(failing, Strategy::OptChain, &txs).unwrap();
        assert_eq!(b.committed, 4_000, "failures delay but never lose txs");
        assert!(
            b.mean_latency() > a.mean_latency() * 1.2,
            "view changes must cost latency: {} vs {}",
            a.mean_latency(),
            b.mean_latency()
        );
    }

    #[test]
    fn block_accounting_is_consistent() {
        let m = Simulation::run(quick_config(), Strategy::OptChain).unwrap();
        let blocks: u64 = m.per_shard_blocks.iter().sum();
        let items: u64 = m.per_shard_items.iter().sum();
        assert!(blocks > 0);
        // Items cover at least one work unit per committed tx.
        assert!(items >= m.committed);
        let fill = m.average_block_fill();
        assert!((1.0..=200.0).contains(&fill), "fill {fill}");
    }

    #[test]
    fn retention_telemetry_reports_evicted_mass() {
        use optchain_core::{RetentionPolicy, Router};
        let config = quick_config();
        let txs = Simulation::workload(&config);
        let window = 1_000usize;
        let router = Router::builder()
            .shards(config.n_shards)
            .retention(RetentionPolicy::WindowTxs(window))
            .build();
        let m = Simulation::run_with_router(config.clone(), &txs, router).unwrap();
        assert_eq!(m.injected, config.total_txs);
        assert_eq!(m.tan_live_nodes, window as u64);
        assert_eq!(m.tan_evicted_nodes, config.total_txs - window as u64);
        assert!(m.tan_arena_bytes > 0);
        // The unbounded run holds everything.
        let full = Simulation::run_on(config.clone(), Strategy::OptChain, &txs).unwrap();
        assert_eq!(full.tan_live_nodes, config.total_txs);
        assert_eq!(full.tan_evicted_nodes, 0);
        // At this miniature scale (5k txs, 1k window) the compaction
        // floor dominates; the strong O(window)-vs-O(stream) factor is
        // gated at real scale by perf_baseline's --retention arm.
        assert!(
            m.tan_arena_bytes < full.tan_arena_bytes,
            "windowed arena {} vs unbounded {}",
            m.tan_arena_bytes,
            full.tan_arena_bytes
        );
    }

    #[test]
    fn sessions_recover_l2s_memo_hits() {
        let m = Simulation::run(quick_config(), Strategy::OptChain).unwrap();
        assert!(
            m.l2s_memo_hits > 0,
            "per-client sessions must make the cross-transaction memo hit: {} hits / {} misses",
            m.l2s_memo_hits,
            m.l2s_memo_misses
        );
        // Strategies without an L2S phase never touch a memo.
        let r = Simulation::run(quick_config(), Strategy::OmniLedger).unwrap();
        assert_eq!(r.l2s_memo_hits + r.l2s_memo_misses, 0);
    }

    #[test]
    fn run_with_router_matches_run_on() {
        let config = quick_config();
        let txs = Simulation::workload(&config);
        let a = Simulation::run_on(config.clone(), Strategy::OptChain, &txs).unwrap();
        let router = Router::builder()
            .shards(config.n_shards)
            .expected_total(config.total_txs)
            .build();
        let b = Simulation::run_with_router(config, &txs, router).unwrap();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.cross_txs, b.cross_txs);
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-12);
    }

    fn quick_fleet(config: &SimConfig, workers: usize) -> RouterFleet {
        RouterFleet::builder()
            .shards(config.n_shards)
            .workers(workers)
            .sync_interval(500)
            .build()
    }

    #[test]
    fn run_with_fleet_commits_everything() {
        let config = quick_config();
        let txs = Simulation::workload(&config);
        let m = Simulation::run_with_fleet(config.clone(), &txs, quick_fleet(&config, 2)).unwrap();
        assert_eq!(m.injected, 3_000);
        assert_eq!(m.committed, 3_000);
        assert_eq!(m.aborted, 0);
        assert_eq!(m.strategy, "optchain");
    }

    #[test]
    fn run_with_fleet_is_deterministic() {
        let config = quick_config();
        let txs = Simulation::workload(&config);
        let a = Simulation::run_with_fleet(config.clone(), &txs, quick_fleet(&config, 2)).unwrap();
        let b = Simulation::run_with_fleet(config.clone(), &txs, quick_fleet(&config, 2)).unwrap();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.cross_txs, b.cross_txs);
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn fleet_placement_still_beats_random() {
        let config = quick_config();
        let txs = Simulation::workload(&config);
        let fleet =
            Simulation::run_with_fleet(config.clone(), &txs, quick_fleet(&config, 2)).unwrap();
        let random = Simulation::run_on(config, Strategy::OmniLedger, &txs).unwrap();
        assert!(
            fleet.cross_fraction() < random.cross_fraction() * 0.8,
            "sharded OptChain front-end must keep its cross-TX edge: {} vs {}",
            fleet.cross_fraction(),
            random.cross_fraction()
        );
    }

    #[test]
    fn queue_series_are_recorded() {
        let m = Simulation::run(quick_config(), Strategy::OptChain).unwrap();
        assert!(!m.queue_max.bins().is_empty());
        assert!(!m.commits_per_window.bins().is_empty());
        let total_window_commits: u64 = m.commits_per_window.counts().iter().sum();
        assert_eq!(total_window_commits, m.committed);
    }
}
