//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in integer nanoseconds from simulation
/// start. Integer time keeps event ordering exact and runs reproducible
/// across platforms.
///
/// # Example
///
/// ```
/// use optchain_sim::SimTime;
///
/// let t = SimTime::ZERO + SimTime::from_secs_f64(1.5).as_offset();
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimOffset(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time point from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "bad sim time {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Reinterprets this time point as an offset from zero.
    pub fn as_offset(self) -> SimOffset {
        SimOffset(self.0)
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimOffset {
        SimOffset(self.0.saturating_sub(earlier.0))
    }
}

impl SimOffset {
    /// Zero-length offset.
    pub const ZERO: SimOffset = SimOffset(0);

    /// Builds an offset from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "bad sim offset {secs}");
        SimOffset((secs * 1e9).round() as u64)
    }

    /// Seconds in this offset.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimOffset> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimOffset) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimOffset> for SimTime {
    fn add_assign(&mut self, rhs: SimOffset) {
        self.0 += rhs.0;
    }
}

impl Add for SimOffset {
    type Output = SimOffset;

    fn add(self, rhs: SimOffset) -> SimOffset {
        SimOffset(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimOffset;

    fn sub(self, rhs: SimTime) -> SimOffset {
        SimOffset(
            self.0
                .checked_sub(rhs.0)
                .expect("time subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(12.345);
        assert!((t.as_secs_f64() - 12.345).abs() < 1e-9);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs_f64(1.0);
        let b = a + SimOffset::from_secs_f64(0.5);
        assert!(b > a);
        assert!((b - a).as_secs_f64() - 0.5 < 1e-12);
        assert_eq!(b.since(a), SimOffset::from_secs_f64(0.5));
        assert_eq!(a.since(b), SimOffset::ZERO);
    }

    #[test]
    #[should_panic(expected = "bad sim time")]
    fn negative_time_panics() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn backwards_subtraction_panics() {
        let _ = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(2.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.5).to_string(), "1.500s");
    }
}
