//! A deterministic discrete-event simulator for sharded UTXO blockchains.
//!
//! The paper evaluates OptChain inside an OverSim/OMNeT++ 4.6 simulation
//! of an enhanced OmniLedger (Section V.A); this crate is that substrate,
//! rebuilt as a self-contained Rust DES. It models:
//!
//! * **network** — nodes at 2-D coordinates, ~100 ms base link latency
//!   plus a distance term, 20 Mbps bandwidth, per-message transfer delays
//!   ([`NetworkModel`]);
//! * **shard committees** — ~400 validators and a leader per shard, with
//!   a PBFT-like consensus duration model (gossip block transfer, two
//!   quorum vote rounds, per-transaction verification —
//!   [`ConsensusModel`]);
//! * **mempools** — a FIFO queue per shard, blocks of up to 2000
//!   transactions / 1 MB, work-conserving block production;
//! * **cross-shard commit** — OmniLedger's lock/proof/unlock protocol
//!   with the paper's "direct-to-shard" optimization, plus RapidChain's
//!   yanking as an alternative ([`CrossShardProtocol`]);
//! * **clients** — transactions submitted at a configurable rate, each
//!   placed by any [`optchain_core::Placer`] using shard telemetry
//!   (queue lengths, recent consensus times) published with configurable
//!   staleness.
//!
//! Simulations are deterministic: equal seeds and configs produce
//! identical metrics. [`SimMetrics`] captures everything Figures 3–11
//! plot: per-transaction confirmation latencies, committed-per-window
//! series, per-shard queue-size series, throughput and backlog.
//!
//! # Example
//!
//! ```
//! use optchain_sim::{SimConfig, Simulation, Strategy};
//!
//! let mut config = SimConfig::small();
//! config.total_txs = 2_000;
//! config.tx_rate = 500.0;
//! config.n_shards = 4;
//! let metrics = Simulation::run(config, Strategy::OptChain).expect("simulation runs");
//! assert_eq!(metrics.committed, 2_000);
//! assert!(metrics.mean_latency() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod consensus;
mod engine;
mod metrics;
mod net;
mod telemetry;
mod time;

pub use config::{CrossShardProtocol, RateModel, SimConfig, Strategy};
pub use consensus::{ConsensusModel, PbftLikeModel};
pub use engine::{SimError, Simulation};
pub use metrics::SimMetrics;
pub use net::NetworkModel;
pub use telemetry::{TelemetryBoard, TelemetryFidelity};
pub use time::SimTime;
