//! The network model: coordinates, latency, bandwidth.

use rand::Rng;

use crate::time::SimOffset;

/// A 2-D coordinate in abstract "network space" (one unit ≈ one
/// continent hop at `latency_per_unit_ms`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Coord {
    pub x: f64,
    pub y: f64,
}

impl Coord {
    fn distance(self, other: Coord) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Endpoints known to the network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    /// A client, by index.
    Client(u32),
    /// A shard's committee leader, by shard index.
    Shard(u32),
}

/// Point-to-point delay model: every message pays the link latency (base
/// plus coordinate distance) and a serialization delay of
/// `bytes / bandwidth`, matching the paper's 20 Mbps / 100 ms setup.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    clients: Vec<Coord>,
    shards: Vec<Coord>,
    base_latency_s: f64,
    latency_per_unit_s: f64,
    bytes_per_second: f64,
}

impl NetworkModel {
    /// Places `n_clients` clients and `n_shards` shard leaders at random
    /// coordinates in the unit square.
    pub(crate) fn new<R: Rng + ?Sized>(
        n_clients: u32,
        n_shards: u32,
        base_latency_ms: f64,
        latency_per_unit_ms: f64,
        bandwidth_mbps: f64,
        rng: &mut R,
    ) -> Self {
        let mut place = |n: u32| -> Vec<Coord> {
            (0..n)
                .map(|_| Coord {
                    x: rng.gen::<f64>(),
                    y: rng.gen::<f64>(),
                })
                .collect()
        };
        NetworkModel {
            clients: place(n_clients),
            shards: place(n_shards),
            base_latency_s: base_latency_ms / 1e3,
            latency_per_unit_s: latency_per_unit_ms / 1e3,
            bytes_per_second: bandwidth_mbps * 1e6 / 8.0,
        }
    }

    fn coord(&self, e: Endpoint) -> Coord {
        match e {
            Endpoint::Client(i) => self.clients[i as usize],
            Endpoint::Shard(i) => self.shards[i as usize],
        }
    }

    /// One-way delay for a message of `bytes` from `from` to `to`.
    pub(crate) fn delay(&self, from: Endpoint, to: Endpoint, bytes: u64) -> SimOffset {
        let latency = self.base_latency_s
            + self.latency_per_unit_s * self.coord(from).distance(self.coord(to));
        SimOffset::from_secs_f64(latency + bytes as f64 / self.bytes_per_second)
    }

    /// One-way *latency only* between a shard leader and a point at
    /// `distance` units (used by the consensus model for committee
    /// members placed around the leader).
    pub(crate) fn latency_at(&self, distance: f64) -> f64 {
        self.base_latency_s + self.latency_per_unit_s * distance
    }

    /// Seconds to push `bytes` through one link.
    pub(crate) fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bytes_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> NetworkModel {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        NetworkModel::new(4, 2, 100.0, 50.0, 20.0, &mut rng)
    }

    #[test]
    fn delay_includes_base_latency_and_transfer() {
        let net = model();
        let zero_bytes = net.delay(Endpoint::Client(0), Endpoint::Shard(0), 0);
        assert!(zero_bytes.as_secs_f64() >= 0.1, "base latency floor");
        // 1 MB over 20 Mbps = 0.4 s of pure transfer.
        let megabyte = net.delay(Endpoint::Client(0), Endpoint::Shard(0), 1_000_000);
        let diff = megabyte.as_secs_f64() - zero_bytes.as_secs_f64();
        assert!((diff - 0.4).abs() < 1e-9, "transfer term {diff}");
    }

    #[test]
    fn delay_is_symmetric() {
        let net = model();
        let ab = net.delay(Endpoint::Client(1), Endpoint::Shard(1), 500);
        let ba = net.delay(Endpoint::Shard(1), Endpoint::Client(1), 500);
        assert_eq!(ab, ba);
    }

    #[test]
    fn distance_increases_latency() {
        let net = model();
        // Distances differ between endpoint pairs, so some pair must beat
        // the base latency strictly.
        let d = net.delay(Endpoint::Client(0), Endpoint::Shard(1), 0);
        assert!(d.as_secs_f64() >= 0.1);
        assert!(net.latency_at(1.0) > net.latency_at(0.0));
    }
}
