//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// How cross-shard transactions are committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CrossShardProtocol {
    /// OmniLedger's lock/proof-of-acceptance/unlock-to-commit protocol
    /// (Section III.A), with the paper's optimization of sending
    /// transactions directly to the involved shards instead of gossiping
    /// to everyone.
    #[default]
    OmniLedgerLock,
    /// RapidChain-style yanking: input transactions are moved to the
    /// output shard by an inter-committee protocol, saving the client
    /// round trip (Section III.A; the paper predicts similar gains —
    /// this variant is the `ext_rapidchain` extension experiment).
    RapidChainYank,
}

/// Transaction inter-arrival model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RateModel {
    /// Fixed spacing `1/rate` (the paper feeds transactions "at a
    /// predefined rate").
    #[default]
    Uniform,
    /// Exponential inter-arrivals with mean `1/rate` (Poisson stream).
    Poisson,
}

/// The placement strategy a simulation drives. This moved into the
/// placement layer itself so one `Strategy` names the algorithm
/// everywhere; re-exported here for compatibility.
pub use optchain_core::Strategy;

/// Full configuration of a simulation run. Defaults mirror the paper's
/// Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of shards (paper: 4–16, up to 62 in Fig 11).
    pub n_shards: u32,
    /// Transactions per second offered by the clients (paper: 2000–6000).
    pub tx_rate: f64,
    /// Total transactions to inject.
    pub total_txs: u64,
    /// Transactions per block (paper: 2000, from 1 MB / ~500 B).
    pub block_txs: u32,
    /// Link bandwidth in megabits per second (paper: 20 Mbps).
    pub bandwidth_mbps: f64,
    /// Base one-way link latency in milliseconds (paper: 100 ms).
    pub base_latency_ms: f64,
    /// Additional one-way latency per unit of coordinate distance, ms
    /// ("the distance between nodes affects the communication latency").
    pub latency_per_unit_ms: f64,
    /// Validators per shard committee (paper: ~400 plus a leader).
    pub validators_per_shard: u32,
    /// Gossip fan-out used for block dissemination inside a committee.
    pub gossip_fanout: u32,
    /// CPU time to verify one transaction, microseconds.
    pub verify_us_per_tx: f64,
    /// Number of client endpoints issuing transactions.
    pub n_clients: u32,
    /// Inter-arrival model.
    pub rate_model: RateModel,
    /// Cross-shard commit protocol.
    pub protocol: CrossShardProtocol,
    /// Client telemetry fidelity (see
    /// [`crate::telemetry::TelemetryFidelity`]); `Quantized` reproduces
    /// the paper's behaviour, `Raw` is the ablation.
    #[serde(skip)]
    pub telemetry_fidelity: crate::TelemetryFidelity,
    /// How often shard telemetry is published to clients, seconds
    /// (staleness of queue/consensus observations).
    pub telemetry_interval_s: f64,
    /// How often queue sizes are sampled into the metrics, seconds.
    pub queue_sample_s: f64,
    /// Window width for the committed-per-window series, seconds
    /// (Fig 5 uses 50 s).
    pub commit_window_s: f64,
    /// Per-block probability that the shard leader fails and a view
    /// change must run before consensus completes (0 disables failures).
    pub leader_failure_rate: f64,
    /// Extra seconds a view change costs (timeout + re-election round).
    pub view_change_timeout_s: f64,
    /// RNG seed (consensus jitter, coordinates, Poisson arrivals).
    pub seed: u64,
    /// Workload seed (passed to the generator; equal seeds give every
    /// strategy the identical stream, as the paper requires).
    pub workload_seed: u64,
}

impl SimConfig {
    /// The paper's Table III configuration (16 shards, 4000 tps, 1M txs
    /// scaled down to the default `total_txs`).
    pub fn paper() -> Self {
        SimConfig {
            n_shards: 16,
            tx_rate: 4_000.0,
            total_txs: 100_000,
            block_txs: 2_000,
            bandwidth_mbps: 20.0,
            base_latency_ms: 100.0,
            latency_per_unit_ms: 50.0,
            validators_per_shard: 400,
            gossip_fanout: 8,
            verify_us_per_tx: 250.0,
            n_clients: 64,
            rate_model: RateModel::Uniform,
            protocol: CrossShardProtocol::OmniLedgerLock,
            telemetry_fidelity: crate::TelemetryFidelity::Quantized,
            telemetry_interval_s: 1.0,
            queue_sample_s: 5.0,
            commit_window_s: 50.0,
            leader_failure_rate: 0.0,
            view_change_timeout_s: 5.0,
            seed: 0x0C0FFEE,
            workload_seed: 0xB17C04,
        }
    }

    /// A fast configuration for tests and doc examples (small committees,
    /// small blocks).
    pub fn small() -> Self {
        SimConfig {
            n_shards: 4,
            tx_rate: 500.0,
            total_txs: 5_000,
            block_txs: 200,
            validators_per_shard: 16,
            n_clients: 8,
            queue_sample_s: 1.0,
            commit_window_s: 10.0,
            ..Self::paper()
        }
    }

    /// Checks the configuration, returning a description of the first
    /// violated constraint.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the invalid field.
    pub fn check(&self) -> Result<(), String> {
        let rules: [(bool, &str); 14] = [
            (self.n_shards > 0, "n_shards must be positive"),
            (
                self.tx_rate > 0.0 && self.tx_rate.is_finite(),
                "tx_rate must be positive",
            ),
            (self.total_txs > 0, "total_txs must be positive"),
            (self.block_txs > 0, "block_txs must be positive"),
            (self.bandwidth_mbps > 0.0, "bandwidth must be positive"),
            (self.base_latency_ms >= 0.0, "latency must be non-negative"),
            (self.validators_per_shard > 0, "validators required"),
            (self.gossip_fanout >= 2, "gossip fanout must be >= 2"),
            (self.n_clients > 0, "clients required"),
            (
                self.telemetry_interval_s > 0.0,
                "telemetry interval must be positive",
            ),
            (
                self.queue_sample_s > 0.0,
                "queue sample interval must be positive",
            ),
            (self.commit_window_s > 0.0, "commit window must be positive"),
            (
                (0.0..=1.0).contains(&self.leader_failure_rate),
                "leader_failure_rate must be a probability",
            ),
            (
                self.view_change_timeout_s >= 0.0,
                "view_change_timeout_s must be non-negative",
            ),
        ];
        for (ok, msg) in rules {
            if !ok {
                return Err(msg.to_string());
            }
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on invalid values; prefer
    /// [`SimConfig::check`] for recoverable handling.
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::paper().validate();
        SimConfig::small().validate();
    }

    #[test]
    fn paper_preset_matches_table_iii() {
        let c = SimConfig::paper();
        assert_eq!(c.block_txs, 2_000);
        assert_eq!(c.bandwidth_mbps, 20.0);
        assert_eq!(c.base_latency_ms, 100.0);
        assert_eq!(c.validators_per_shard, 400);
    }

    #[test]
    #[should_panic(expected = "n_shards")]
    fn zero_shards_rejected() {
        let mut c = SimConfig::small();
        c.n_shards = 0;
        c.validate();
    }

    #[test]
    fn strategy_is_the_core_type() {
        // The re-export must stay the same item callers matched on.
        let s: optchain_core::Strategy = Strategy::OptChain;
        assert_eq!(s.label(), "OptChain");
        assert_eq!(Strategy::figure_set().len(), 4);
    }
}
