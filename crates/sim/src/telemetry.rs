//! Shard telemetry published to clients.

use optchain_core::ShardTelemetry;

/// How faithfully client telemetry reports per-shard measurements.
///
/// With the paper's constants (`fitness = p − 0.01·E`, T2S scores of
/// order `p'(u)/|S_i| ≈ 1e-5` late in a long stream), any *persistent*
/// per-shard difference in `E(j)` larger than ~1 ms overrides the T2S
/// signal forever. In the paper's setup all committees are statistically
/// identical and all links 100 ms, so `E(j)` differences are pure load:
/// the only reading under which OptChain both groups transactions (Tables
/// I/II behaviour) *and* balances load (Fig 6/7) is that clients estimate
/// `E(j)` identically across equally-loaded shards. `Quantized` models
/// that; `Raw` feeds the placement the unfiltered per-shard measurements
/// and demonstrates the degeneration (the `ablation_telemetry` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryFidelity {
    /// Uniform communication estimate and a shared consensus baseline;
    /// only block-granular queue differences distinguish shards.
    #[default]
    Quantized,
    /// Per-shard consensus EMAs, per-shard client RTTs, fractional queue
    /// terms.
    Raw,
}

/// The telemetry board: per-shard queue lengths and recent consensus
/// durations, published to clients at a configurable interval (staleness).
///
/// Clients convert the board into [`ShardTelemetry`] for the L2S score as
/// the paper prescribes: `1/λc` from RTT samples, `1/λv` from "recent
/// consensus time of shard i and its current queue size" — a transaction
/// entering a queue of `q` waits `1 + ⌊q/block⌋` consensus rounds.
#[derive(Debug, Clone)]
pub struct TelemetryBoard {
    /// Live queue length per shard (updated by the engine).
    live_queue: Vec<u64>,
    /// EMA of consensus duration per shard, seconds.
    live_consensus: Vec<f64>,
    /// Published (possibly stale) snapshots.
    published_queue: Vec<u64>,
    published_consensus: Vec<f64>,
    block_txs: f64,
    fidelity: TelemetryFidelity,
    /// Publish counter: client views only change when a publish happens,
    /// so this is the telemetry epoch fed to the L2S memo.
    version: u64,
}

impl TelemetryBoard {
    /// A board for `k` shards with blocks of `block_txs` transactions and
    /// an initial consensus estimate (seconds).
    pub(crate) fn new(
        k: u32,
        block_txs: u32,
        initial_consensus_s: f64,
        fidelity: TelemetryFidelity,
    ) -> Self {
        TelemetryBoard {
            live_queue: vec![0; k as usize],
            live_consensus: vec![initial_consensus_s; k as usize],
            published_queue: vec![0; k as usize],
            published_consensus: vec![initial_consensus_s; k as usize],
            block_txs: block_txs as f64,
            fidelity,
            version: 0,
        }
    }

    /// Engine hook: the shard's mempool length changed.
    pub(crate) fn set_queue(&mut self, shard: u32, len: u64) {
        self.live_queue[shard as usize] = len;
    }

    /// Engine hook: a block committed after `duration_s` of consensus.
    pub(crate) fn record_consensus(&mut self, shard: u32, duration_s: f64) {
        let ema = &mut self.live_consensus[shard as usize];
        *ema = 0.8 * *ema + 0.2 * duration_s;
    }

    /// Publishes the live values (called on the telemetry schedule, so
    /// clients observe values at most one interval old).
    pub(crate) fn publish(&mut self) {
        self.published_queue.copy_from_slice(&self.live_queue);
        self.published_consensus
            .copy_from_slice(&self.live_consensus);
        self.version += 1;
    }

    /// How many publishes have happened. Client views are pure functions
    /// of the published state, so equal versions imply equal telemetry
    /// for a given client.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The queue lengths clients currently see.
    pub fn published_queues(&self) -> &[u64] {
        &self.published_queue
    }

    /// Builds the per-shard [`ShardTelemetry`] a client with one-way
    /// communication times `comm_s` would feed into L2S. The engine uses
    /// the buffered [`TelemetryBoard::client_view_into`]; this allocating
    /// wrapper remains for tests.
    #[cfg(test)]
    pub(crate) fn client_view(&self, comm_s: &[f64]) -> Vec<ShardTelemetry> {
        let mut out = Vec::with_capacity(self.published_queue.len());
        self.client_view_into(comm_s, &mut out);
        out
    }

    /// [`TelemetryBoard::client_view`] into a caller-owned buffer
    /// (cleared first) — the per-injection hot path of the simulator.
    pub(crate) fn client_view_into(&self, comm_s: &[f64], out: &mut Vec<ShardTelemetry>) {
        out.clear();
        match self.fidelity {
            TelemetryFidelity::Quantized => {
                let mean_comm = (comm_s.iter().sum::<f64>() / comm_s.len() as f64).max(1e-6);
                let mean_consensus = (self.published_consensus.iter().sum::<f64>()
                    / self.published_consensus.len() as f64)
                    .max(1e-6);
                out.extend(self.published_queue.iter().map(|q| {
                    let rounds = 1.0 + (*q as f64 / self.block_txs).floor();
                    ShardTelemetry::new(mean_comm, mean_consensus * rounds)
                }));
            }
            TelemetryFidelity::Raw => out.extend(
                self.published_queue
                    .iter()
                    .zip(&self.published_consensus)
                    .zip(comm_s)
                    .map(|((q, c), comm)| {
                        let rounds = 1.0 + *q as f64 / self.block_txs;
                        ShardTelemetry::new(comm.max(1e-6), (c * rounds).max(1e-6))
                    }),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board(fidelity: TelemetryFidelity) -> TelemetryBoard {
        TelemetryBoard::new(2, 100, 1.0, fidelity)
    }

    #[test]
    fn publish_gates_visibility() {
        let mut b = board(TelemetryFidelity::Quantized);
        b.set_queue(0, 500);
        assert_eq!(b.published_queues(), &[0, 0]);
        b.publish();
        assert_eq!(b.published_queues(), &[500, 0]);
    }

    #[test]
    fn quantized_view_is_block_granular() {
        let mut b = board(TelemetryFidelity::Quantized);
        b.set_queue(0, 99); // less than one block
        b.set_queue(1, 250); // two and a half blocks
        b.publish();
        let view = b.client_view(&[0.1, 0.2]);
        assert_eq!(view[0].expected_verify, 1.0);
        assert_eq!(view[1].expected_verify, 3.0);
        // Communication is uniform under quantized fidelity.
        assert_eq!(view[0].expected_comm, view[1].expected_comm);
    }

    #[test]
    fn quantized_equal_load_means_equal_telemetry() {
        let mut b = board(TelemetryFidelity::Quantized);
        b.record_consensus(0, 3.0); // committees measure differently...
        b.record_consensus(1, 1.0);
        b.set_queue(0, 40);
        b.set_queue(1, 60); // ...but both under one block of load
        b.publish();
        let view = b.client_view(&[0.1, 0.3]);
        assert_eq!(view[0], view[1]);
    }

    #[test]
    fn raw_view_exposes_per_shard_noise() {
        let mut b = board(TelemetryFidelity::Raw);
        b.record_consensus(0, 3.0);
        b.set_queue(0, 50);
        b.publish();
        let view = b.client_view(&[0.1, 0.3]);
        assert_ne!(view[0], view[1]);
        // Raw queue term is fractional.
        assert!(view[0].expected_verify > view[1].expected_verify);
    }

    #[test]
    fn consensus_ema_converges() {
        let mut b = board(TelemetryFidelity::Quantized);
        for _ in 0..50 {
            b.record_consensus(0, 3.0);
            b.record_consensus(1, 3.0);
        }
        b.publish();
        let view = b.client_view(&[0.1, 0.1]);
        assert!((view[0].expected_verify - 3.0).abs() < 0.05);
    }
}
