//! Property-based tests for the UTXO substrate.

use proptest::prelude::*;

use optchain_utxo::{Ledger, Transaction, TxId, TxOutput, UtxoSet, WalletId};

/// A compact recipe for a random-but-valid ledger: at each step either mint
/// a coinbase or spend up to `spend_n` of the currently unspent outputs.
#[derive(Debug, Clone)]
enum Step {
    Coinbase {
        reward: u64,
    },
    Spend {
        picks: Vec<u16>,
        fee: u64,
        outs: Vec<(u64, u32)>,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..=50_000).prop_map(|reward| Step::Coinbase { reward }),
        (
            proptest::collection::vec(0u16..512, 1..4),
            0u64..10,
            proptest::collection::vec((1u64..1000, 0u32..64), 1..4),
        )
            .prop_map(|(picks, fee, outs)| Step::Spend { picks, fee, outs }),
    ]
}

/// Replays a recipe into a ledger, skipping steps that cannot be satisfied
/// (no unspent output to pick). Returns the ledger.
fn build_ledger(steps: &[Step]) -> Ledger {
    let mut ledger = Ledger::new();
    for step in steps {
        match step {
            Step::Coinbase { reward } => {
                let tx = Transaction::coinbase(ledger.next_tx_id(), *reward, WalletId(0));
                ledger.apply(tx).expect("coinbase always valid");
            }
            Step::Spend { picks, fee, outs } => {
                let mut available: Vec<_> = ledger.utxos().iter().map(|(op, o)| (op, *o)).collect();
                if available.is_empty() {
                    continue;
                }
                available.sort_by_key(|(op, _)| (op.txid, op.vout));
                let mut chosen = Vec::new();
                let mut consumed = 0u64;
                for pick in picks {
                    let idx = *pick as usize % available.len();
                    let (op, out) = available.swap_remove(idx);
                    consumed += out.value;
                    chosen.push(op);
                    if available.is_empty() {
                        break;
                    }
                }
                let Some(budget) = consumed.checked_sub(*fee) else {
                    continue;
                };
                if budget == 0 {
                    continue;
                }
                // Distribute the budget over the requested outputs.
                let mut remaining = budget;
                let mut outputs = Vec::new();
                for (weight, owner) in outs {
                    let v = (weight % remaining.max(1)).max(1).min(remaining);
                    outputs.push(TxOutput::new(v, WalletId(*owner)));
                    remaining -= v;
                    if remaining == 0 {
                        break;
                    }
                }
                if outputs.is_empty() {
                    continue;
                }
                let tx = Transaction::builder(ledger.next_tx_id())
                    .inputs(chosen)
                    .outputs(outputs)
                    .build();
                ledger.apply(tx).expect("constructed spend must be valid");
            }
        }
    }
    ledger
}

proptest! {
    /// Value is conserved: total unspent value == total minted − total fees.
    #[test]
    fn value_conservation(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        let ledger = build_ledger(&steps);
        let mut minted = 0u64;
        let mut fees = 0u64;
        for tx in ledger.iter() {
            if tx.is_coinbase() {
                minted += tx.output_value().unwrap();
            } else {
                let consumed: u64 = tx
                    .inputs()
                    .iter()
                    .map(|op| ledger.get(op.txid).unwrap().outputs()[op.vout as usize].value)
                    .sum();
                fees += consumed - tx.output_value().unwrap();
            }
        }
        prop_assert_eq!(ledger.utxos().total_value(), Some(minted - fees));
    }

    /// No outpoint is ever spent twice across an entire valid ledger.
    #[test]
    fn no_double_spends(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        let ledger = build_ledger(&steps);
        let mut spent = std::collections::HashSet::new();
        for tx in ledger.iter() {
            for op in tx.inputs() {
                prop_assert!(spent.insert(*op), "outpoint {} spent twice", op);
            }
        }
    }

    /// Inputs always reference strictly earlier transactions (the TaN
    /// network is a DAG because "a transaction only uses UTXO(s) of past
    /// transactions", Section IV.A).
    #[test]
    fn inputs_reference_past(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        let ledger = build_ledger(&steps);
        for tx in ledger.iter() {
            for op in tx.inputs() {
                prop_assert!(op.txid < tx.id());
            }
        }
    }

    /// Replaying the ledger's transactions into a fresh UtxoSet reproduces
    /// exactly the same set.
    #[test]
    fn replay_is_deterministic(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let ledger = build_ledger(&steps);
        let mut set = UtxoSet::new();
        for tx in ledger.iter() {
            set.apply(tx).unwrap();
        }
        prop_assert_eq!(set.len(), ledger.utxos().len());
        for (op, out) in ledger.utxos().iter() {
            prop_assert_eq!(set.get(op), Some(out));
        }
    }

    /// apply followed by unapply is the identity on the UTXO set.
    #[test]
    fn apply_unapply_roundtrip(steps in proptest::collection::vec(step_strategy(), 2..40)) {
        let ledger = build_ledger(&steps);
        let Some(last) = ledger.transactions().last() else { return Ok(()) };
        if last.is_coinbase() {
            return Ok(());
        }
        // Rebuild the set up to (but excluding) the last tx.
        let mut set = UtxoSet::new();
        for tx in ledger.iter().take(ledger.len() - 1) {
            set.apply(tx).unwrap();
        }
        let before: std::collections::HashMap<_, _> =
            set.iter().map(|(op, o)| (op, *o)).collect();
        let restored: Vec<TxOutput> = last
            .inputs()
            .iter()
            .map(|op| ledger.get(op.txid).unwrap().outputs()[op.vout as usize])
            .collect();
        set.apply(last).unwrap();
        set.unapply(last, &restored);
        let after: std::collections::HashMap<_, _> =
            set.iter().map(|(op, o)| (op, *o)).collect();
        prop_assert_eq!(before, after);
    }
}

#[test]
fn ledger_ids_are_dense() {
    let mut ledger = Ledger::new();
    for i in 0..100u64 {
        ledger
            .apply(Transaction::coinbase(TxId(i), 1, WalletId(0)))
            .unwrap();
    }
    for (i, tx) in ledger.iter().enumerate() {
        assert_eq!(tx.id(), TxId(i as u64));
    }
}
