//! UTXO transaction model substrate for the OptChain reproduction.
//!
//! This crate implements the Unspent Transaction Output (UTXO) ledger model
//! described in Section III.A of the OptChain paper (Nguyen et al., ICDCS
//! 2019): transactions have multiple inputs and outputs; an output is a
//! [`TxOutput`] assigned with credits and locked to an owner; outputs are
//! spent by later transactions referencing them through an [`OutPoint`].
//!
//! The crate provides:
//!
//! * value types — [`TxId`], [`OutPoint`], [`TxOutput`], [`WalletId`];
//! * [`Transaction`] with a validating [`TransactionBuilder`];
//! * [`UtxoSet`] — the set of unspent outputs with double-spend detection;
//! * [`Ledger`] — an ordered, validated transaction history.
//!
//! # Example
//!
//! ```
//! use optchain_utxo::{Ledger, Transaction, TxOutput, WalletId};
//!
//! let mut ledger = Ledger::new();
//! // A coinbase transaction mints new credits out of thin air.
//! let coinbase = Transaction::coinbase(ledger.next_tx_id(), 50_000, WalletId(7));
//! let cb_id = ledger.apply(coinbase)?;
//!
//! // A regular transaction spends the coinbase output.
//! let spend = Transaction::builder(ledger.next_tx_id())
//!     .input(cb_id.outpoint(0))
//!     .output(TxOutput::new(40_000, WalletId(8)))
//!     .output(TxOutput::new(9_000, WalletId(7)))
//!     .build();
//! ledger.apply(spend)?;
//! assert_eq!(ledger.len(), 2);
//! # Ok::<(), optchain_utxo::UtxoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ledger;
mod set;
mod transaction;
mod types;

pub use error::UtxoError;
pub use ledger::Ledger;
pub use set::UtxoSet;
pub use transaction::{Transaction, TransactionBuilder};
pub use types::{OutPoint, TxId, TxOutput, WalletId};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, UtxoError>;
