//! Core value types of the UTXO model.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a transaction.
///
/// In this reproduction transaction identifiers are dense sequence numbers
/// assigned in arrival order (the order transactions are appended to the
/// ledger). This mirrors the topological numbering the paper relies on: the
/// TaN network "can be sorted in a topological order, which exactly reflects
/// the order of appearance of transactions" (Section IV.A).
///
/// # Example
///
/// ```
/// use optchain_utxo::TxId;
///
/// let id = TxId(42);
/// assert_eq!(id.outpoint(1).txid, id);
/// assert_eq!(format!("{id}"), "tx#42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TxId(pub u64);

impl TxId {
    /// Returns the [`OutPoint`] referencing output `vout` of this transaction.
    pub fn outpoint(self, vout: u32) -> OutPoint {
        OutPoint { txid: self, vout }
    }

    /// Returns the raw sequence number.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx#{}", self.0)
    }
}

impl From<u64> for TxId {
    fn from(raw: u64) -> Self {
        TxId(raw)
    }
}

/// Identifier of a wallet (an owner of transaction outputs).
///
/// Real Bitcoin locks outputs to script public keys; the workload generator
/// in this reproduction clusters outputs by wallet to recreate the
/// community structure of the real transaction graph, so ownership is a
/// plain numeric wallet identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct WalletId(pub u32);

impl fmt::Display for WalletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wallet#{}", self.0)
    }
}

/// A reference to a specific output of a specific transaction.
///
/// # Example
///
/// ```
/// use optchain_utxo::{OutPoint, TxId};
///
/// let op = OutPoint { txid: TxId(3), vout: 1 };
/// assert_eq!(op, TxId(3).outpoint(1));
/// assert_eq!(format!("{op}"), "tx#3:1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OutPoint {
    /// Transaction that produced the output.
    pub txid: TxId,
    /// Index of the output within that transaction.
    pub vout: u32,
}

impl fmt::Display for OutPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.txid, self.vout)
    }
}

/// A transaction output: an amount of credits locked to a wallet.
///
/// # Example
///
/// ```
/// use optchain_utxo::{TxOutput, WalletId};
///
/// let out = TxOutput::new(1_000, WalletId(4));
/// assert_eq!(out.value, 1_000);
/// assert_eq!(out.owner, WalletId(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TxOutput {
    /// Amount of credits carried by the output (satoshi-like integer units).
    pub value: u64,
    /// Wallet the output is locked to.
    pub owner: WalletId,
}

impl TxOutput {
    /// Creates a new output of `value` credits locked to `owner`.
    pub fn new(value: u64, owner: WalletId) -> Self {
        TxOutput { value, owner }
    }
}

impl fmt::Display for TxOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.value, self.owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_display_and_outpoint() {
        let id = TxId(7);
        assert_eq!(id.to_string(), "tx#7");
        assert_eq!(id.outpoint(2), OutPoint { txid: id, vout: 2 });
        assert_eq!(id.outpoint(2).to_string(), "tx#7:2");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn txid_from_u64() {
        assert_eq!(TxId::from(5u64), TxId(5));
    }

    #[test]
    fn txid_ordering_follows_sequence() {
        assert!(TxId(1) < TxId(2));
        assert!(TxId(100) > TxId(99));
    }

    #[test]
    fn output_display() {
        let out = TxOutput::new(12, WalletId(3));
        assert_eq!(out.to_string(), "12 -> wallet#3");
    }

    #[test]
    fn outpoint_hash_distinguishes_vout() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TxId(1).outpoint(0));
        set.insert(TxId(1).outpoint(1));
        assert_eq!(set.len(), 2);
    }
}
