//! Error type for UTXO validation.

use std::error::Error;
use std::fmt;

use crate::{OutPoint, TxId};

/// Errors produced while validating or applying transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UtxoError {
    /// The referenced output does not exist in the UTXO set (either it never
    /// existed or it was already spent).
    MissingInput {
        /// Transaction that attempted the spend.
        spender: TxId,
        /// The missing outpoint.
        outpoint: OutPoint,
    },
    /// The same outpoint appears more than once in a single transaction's
    /// input list.
    DuplicateInput {
        /// Transaction with the duplicated input.
        spender: TxId,
        /// The duplicated outpoint.
        outpoint: OutPoint,
    },
    /// Output value exceeds input value for a non-coinbase transaction.
    ValueCreated {
        /// Offending transaction.
        txid: TxId,
        /// Total value of consumed inputs.
        consumed: u64,
        /// Total value of produced outputs.
        produced: u64,
    },
    /// A transaction id was reused: the ledger already contains `txid`.
    DuplicateTx {
        /// The reused id.
        txid: TxId,
    },
    /// A non-coinbase transaction has no outputs and no inputs, which the
    /// model treats as malformed (the paper notes 37,108 such degenerate
    /// transactions in the raw Bitcoin data; they are rejected here and
    /// modelled explicitly by the workload generator when needed).
    Empty {
        /// The malformed transaction.
        txid: TxId,
    },
    /// Arithmetic overflow while summing values.
    Overflow {
        /// Offending transaction.
        txid: TxId,
    },
}

impl fmt::Display for UtxoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtxoError::MissingInput { spender, outpoint } => {
                write!(
                    f,
                    "{spender} spends missing or already-spent output {outpoint}"
                )
            }
            UtxoError::DuplicateInput { spender, outpoint } => {
                write!(f, "{spender} lists input {outpoint} more than once")
            }
            UtxoError::ValueCreated {
                txid,
                consumed,
                produced,
            } => write!(
                f,
                "{txid} creates value: consumes {consumed} but produces {produced}"
            ),
            UtxoError::DuplicateTx { txid } => write!(f, "{txid} already exists in the ledger"),
            UtxoError::Empty { txid } => write!(f, "{txid} has neither inputs nor outputs"),
            UtxoError::Overflow { txid } => write!(f, "{txid} value sum overflows"),
        }
    }
}

impl Error for UtxoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = UtxoError::MissingInput {
            spender: TxId(9),
            outpoint: TxId(3).outpoint(1),
        };
        let msg = err.to_string();
        assert!(msg.contains("tx#9"));
        assert!(msg.contains("tx#3:1"));

        let err = UtxoError::ValueCreated {
            txid: TxId(1),
            consumed: 5,
            produced: 6,
        };
        assert!(err.to_string().contains("creates value"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UtxoError>();
    }
}
