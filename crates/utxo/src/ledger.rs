//! An ordered, validated transaction history.

use crate::{Result, Transaction, TxId, UtxoError, UtxoSet};

/// An append-only, validated ledger of transactions.
///
/// The ledger couples a [`UtxoSet`] with the ordered history of applied
/// transactions and enforces dense, sequential transaction ids: the id of
/// the `n`-th applied transaction must be `TxId(n)`. This matches the
/// arrival-order numbering the TaN network construction relies on and lets
/// every downstream component index per-transaction state by `TxId` in
/// `O(1)` without hashing.
///
/// # Example
///
/// ```
/// use optchain_utxo::{Ledger, Transaction, TxOutput, WalletId};
///
/// let mut ledger = Ledger::new();
/// let cb = ledger.apply(Transaction::coinbase(ledger.next_tx_id(), 25, WalletId(0)))?;
/// let tx = Transaction::builder(ledger.next_tx_id())
///     .input(cb.outpoint(0))
///     .output(TxOutput::new(25, WalletId(1)))
///     .build();
/// ledger.apply(tx)?;
/// assert_eq!(ledger.len(), 2);
/// # Ok::<(), optchain_utxo::UtxoError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    txs: Vec<Transaction>,
    utxos: UtxoSet,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty ledger pre-sized for `capacity` transactions.
    pub fn with_capacity(capacity: usize) -> Self {
        Ledger {
            txs: Vec::with_capacity(capacity),
            utxos: UtxoSet::with_capacity(capacity * 2),
        }
    }

    /// The id the next applied transaction must carry.
    pub fn next_tx_id(&self) -> TxId {
        TxId(self.txs.len() as u64)
    }

    /// Number of applied transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// `true` iff no transaction has been applied.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// The current UTXO set.
    pub fn utxos(&self) -> &UtxoSet {
        &self.utxos
    }

    /// Looks up an applied transaction by id.
    pub fn get(&self, id: TxId) -> Option<&Transaction> {
        self.txs.get(id.0 as usize)
    }

    /// Iterates over the applied transactions in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.txs.iter()
    }

    /// Validates and appends `tx`, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`UtxoError::DuplicateTx`] if `tx.id()` is not the expected
    /// next sequential id, or any [`UtxoSet::apply`] validation error.
    pub fn apply(&mut self, tx: Transaction) -> Result<TxId> {
        if tx.id() != self.next_tx_id() {
            return Err(UtxoError::DuplicateTx { txid: tx.id() });
        }
        self.utxos.apply(&tx)?;
        let id = tx.id();
        self.txs.push(tx);
        Ok(id)
    }

    /// Validates `tx` without appending it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ledger::apply`].
    pub fn validate(&self, tx: &Transaction) -> Result<()> {
        if tx.id() != self.next_tx_id() {
            return Err(UtxoError::DuplicateTx { txid: tx.id() });
        }
        self.utxos.validate(tx)
    }

    /// Consumes the ledger and returns the ordered transactions.
    pub fn into_transactions(self) -> Vec<Transaction> {
        self.txs
    }

    /// Borrows the ordered transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.txs
    }
}

impl IntoIterator for Ledger {
    type Item = Transaction;
    type IntoIter = std::vec::IntoIter<Transaction>;

    fn into_iter(self) -> Self::IntoIter {
        self.txs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Ledger {
    type Item = &'a Transaction;
    type IntoIter = std::slice::Iter<'a, Transaction>;

    fn into_iter(self) -> Self::IntoIter {
        self.txs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TxOutput, WalletId};

    #[test]
    fn sequential_ids_enforced() {
        let mut ledger = Ledger::new();
        let bad = Transaction::coinbase(TxId(5), 1, WalletId(0));
        assert!(matches!(
            ledger.apply(bad),
            Err(UtxoError::DuplicateTx { .. })
        ));
        ledger
            .apply(Transaction::coinbase(TxId(0), 1, WalletId(0)))
            .unwrap();
        assert_eq!(ledger.next_tx_id(), TxId(1));
    }

    #[test]
    fn failed_apply_leaves_ledger_unchanged() {
        let mut ledger = Ledger::new();
        ledger
            .apply(Transaction::coinbase(TxId(0), 5, WalletId(0)))
            .unwrap();
        let bad = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(7)) // no such output
            .output(TxOutput::new(1, WalletId(1)))
            .build();
        assert!(ledger.apply(bad).is_err());
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.next_tx_id(), TxId(1));
    }

    #[test]
    fn get_and_iter_follow_arrival_order() {
        let mut ledger = Ledger::new();
        for i in 0..4u64 {
            ledger
                .apply(Transaction::coinbase(TxId(i), i + 1, WalletId(0)))
                .unwrap();
        }
        assert_eq!(ledger.get(TxId(2)).unwrap().outputs()[0].value, 3);
        let ids: Vec<_> = ledger.iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let ids: Vec<_> = (&ledger).into_iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chain_of_spends_maintains_value_conservation() {
        let mut ledger = Ledger::new();
        ledger
            .apply(Transaction::coinbase(TxId(0), 1000, WalletId(0)))
            .unwrap();
        let mut prev = TxId(0);
        for i in 1..10u64 {
            let tx = Transaction::builder(TxId(i))
                .input(prev.outpoint(0))
                .output(TxOutput::new(1000 - i, WalletId(i as u32)))
                .build();
            prev = ledger.apply(tx).unwrap();
        }
        assert_eq!(ledger.utxos().total_value(), Some(991));
        assert_eq!(ledger.utxos().len(), 1);
    }
}
