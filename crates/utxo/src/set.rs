//! The set of unspent transaction outputs.

use std::collections::HashMap;

use crate::{OutPoint, Result, Transaction, TxOutput, UtxoError};

/// The set of currently unspent transaction outputs.
///
/// `UtxoSet` owns validation of the UTXO model's safety rules:
///
/// * every non-coinbase input must reference an existing unspent output
///   (otherwise the spend is a double-spend or references garbage);
/// * a transaction may not list the same outpoint twice;
/// * a non-coinbase transaction may not create value.
///
/// # Example
///
/// ```
/// use optchain_utxo::{Transaction, TxId, TxOutput, UtxoSet, WalletId};
///
/// let mut set = UtxoSet::new();
/// set.apply(&Transaction::coinbase(TxId(0), 100, WalletId(1)))?;
/// assert_eq!(set.len(), 1);
///
/// let spend = Transaction::builder(TxId(1))
///     .input(TxId(0).outpoint(0))
///     .output(TxOutput::new(90, WalletId(2)))
///     .build();
/// set.apply(&spend)?;
/// // The coinbase output is gone, the new output is present.
/// assert!(set.get(TxId(0).outpoint(0)).is_none());
/// assert!(set.get(TxId(1).outpoint(0)).is_some());
/// # Ok::<(), optchain_utxo::UtxoError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtxoSet {
    unspent: HashMap<OutPoint, TxOutput>,
}

impl UtxoSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set pre-sized for roughly `capacity` outputs.
    pub fn with_capacity(capacity: usize) -> Self {
        UtxoSet {
            unspent: HashMap::with_capacity(capacity),
        }
    }

    /// Number of unspent outputs.
    pub fn len(&self) -> usize {
        self.unspent.len()
    }

    /// `true` iff no outputs are unspent.
    pub fn is_empty(&self) -> bool {
        self.unspent.is_empty()
    }

    /// Looks up an unspent output.
    pub fn get(&self, outpoint: OutPoint) -> Option<&TxOutput> {
        self.unspent.get(&outpoint)
    }

    /// `true` iff `outpoint` is currently unspent.
    pub fn contains(&self, outpoint: OutPoint) -> bool {
        self.unspent.contains_key(&outpoint)
    }

    /// Iterates over the unspent outpoints and their outputs.
    ///
    /// Iteration order is unspecified.
    pub fn iter(&self) -> impl Iterator<Item = (OutPoint, &TxOutput)> {
        self.unspent.iter().map(|(op, out)| (*op, out))
    }

    /// Validates `tx` against the current set without mutating it.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule: [`UtxoError::DuplicateInput`],
    /// [`UtxoError::MissingInput`], [`UtxoError::Empty`],
    /// [`UtxoError::Overflow`] or [`UtxoError::ValueCreated`].
    pub fn validate(&self, tx: &Transaction) -> Result<()> {
        if tx.inputs().is_empty() && tx.outputs().is_empty() {
            return Err(UtxoError::Empty { txid: tx.id() });
        }
        let mut consumed: u64 = 0;
        for (i, op) in tx.inputs().iter().enumerate() {
            if tx.inputs()[..i].contains(op) {
                return Err(UtxoError::DuplicateInput {
                    spender: tx.id(),
                    outpoint: *op,
                });
            }
            let Some(out) = self.unspent.get(op) else {
                return Err(UtxoError::MissingInput {
                    spender: tx.id(),
                    outpoint: *op,
                });
            };
            consumed = consumed
                .checked_add(out.value)
                .ok_or(UtxoError::Overflow { txid: tx.id() })?;
        }
        let produced = tx
            .output_value()
            .ok_or(UtxoError::Overflow { txid: tx.id() })?;
        if !tx.is_coinbase() && produced > consumed {
            return Err(UtxoError::ValueCreated {
                txid: tx.id(),
                consumed,
                produced,
            });
        }
        Ok(())
    }

    /// Validates and applies `tx`: removes its inputs from the set and
    /// inserts its outputs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`UtxoSet::validate`]; on error the set is
    /// unchanged.
    pub fn apply(&mut self, tx: &Transaction) -> Result<()> {
        self.validate(tx)?;
        for op in tx.inputs() {
            self.unspent.remove(op);
        }
        for (vout, out) in tx.outputs().iter().enumerate() {
            self.unspent.insert(tx.id().outpoint(vout as u32), *out);
        }
        Ok(())
    }

    /// Reverses a previously applied transaction, restoring its inputs.
    ///
    /// `restored` must supply the original outputs consumed by `tx`, in the
    /// order of `tx.inputs()`. This supports abort paths in the cross-shard
    /// protocols (an `unlock-to-abort` reclaims the locked funds,
    /// Section III.A of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `restored.len() != tx.inputs().len()`.
    pub fn unapply(&mut self, tx: &Transaction, restored: &[TxOutput]) {
        assert_eq!(
            restored.len(),
            tx.inputs().len(),
            "unapply needs one restored output per input"
        );
        for vout in 0..tx.outputs().len() {
            self.unspent.remove(&tx.id().outpoint(vout as u32));
        }
        for (op, out) in tx.inputs().iter().zip(restored) {
            self.unspent.insert(*op, *out);
        }
    }

    /// Total value of all unspent outputs.
    ///
    /// Returns `None` on overflow.
    pub fn total_value(&self) -> Option<u64> {
        self.unspent
            .values()
            .try_fold(0u64, |acc, o| acc.checked_add(o.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TxId, WalletId};

    fn coinbase(id: u64, value: u64) -> Transaction {
        Transaction::coinbase(TxId(id), value, WalletId(0))
    }

    #[test]
    fn apply_coinbase_then_spend() {
        let mut set = UtxoSet::new();
        set.apply(&coinbase(0, 100)).unwrap();
        let spend = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(60, WalletId(1)))
            .output(TxOutput::new(30, WalletId(0)))
            .build();
        set.apply(&spend).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_value(), Some(90)); // 10 paid as fee
    }

    #[test]
    fn double_spend_across_txs_rejected() {
        let mut set = UtxoSet::new();
        set.apply(&coinbase(0, 100)).unwrap();
        let spend = |id: u64| {
            Transaction::builder(TxId(id))
                .input(TxId(0).outpoint(0))
                .output(TxOutput::new(1, WalletId(1)))
                .build()
        };
        set.apply(&spend(1)).unwrap();
        let err = set.apply(&spend(2)).unwrap_err();
        assert!(matches!(err, UtxoError::MissingInput { .. }));
    }

    #[test]
    fn duplicate_input_within_tx_rejected() {
        let mut set = UtxoSet::new();
        set.apply(&coinbase(0, 100)).unwrap();
        let tx = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(1, WalletId(1)))
            .build();
        assert!(matches!(
            set.apply(&tx),
            Err(UtxoError::DuplicateInput { .. })
        ));
        // Set unchanged on failure.
        assert!(set.contains(TxId(0).outpoint(0)));
    }

    #[test]
    fn value_creation_rejected_for_non_coinbase() {
        let mut set = UtxoSet::new();
        set.apply(&coinbase(0, 10)).unwrap();
        let tx = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(11, WalletId(1)))
            .build();
        assert!(matches!(
            set.apply(&tx),
            Err(UtxoError::ValueCreated { .. })
        ));
    }

    #[test]
    fn empty_tx_rejected() {
        let mut set = UtxoSet::new();
        let tx = Transaction::new(TxId(0), vec![], vec![]);
        assert!(matches!(set.apply(&tx), Err(UtxoError::Empty { .. })));
    }

    #[test]
    fn unapply_restores_inputs() {
        let mut set = UtxoSet::new();
        set.apply(&coinbase(0, 100)).unwrap();
        let original = *set.get(TxId(0).outpoint(0)).unwrap();
        let spend = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(90, WalletId(1)))
            .build();
        set.apply(&spend).unwrap();
        set.unapply(&spend, &[original]);
        assert!(set.contains(TxId(0).outpoint(0)));
        assert!(!set.contains(TxId(1).outpoint(0)));
        assert_eq!(set.total_value(), Some(100));
    }

    #[test]
    fn validate_does_not_mutate() {
        let mut set = UtxoSet::new();
        set.apply(&coinbase(0, 100)).unwrap();
        let spend = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(90, WalletId(1)))
            .build();
        set.validate(&spend).unwrap();
        assert!(set.contains(TxId(0).outpoint(0)));
        assert_eq!(set.len(), 1);
    }
}
