//! Transactions and the transaction builder.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{OutPoint, TxId, TxOutput, WalletId};

/// Average serialized size of a Bitcoin transaction assumed by the paper's
/// simulation ("The average size of a transaction is about 500 bytes",
/// Section V.A). Used as the base for the size model below.
pub const BASE_TX_BYTES: u32 = 122;
/// Serialized bytes attributed to each input in the size model.
pub const BYTES_PER_INPUT: u32 = 148;
/// Serialized bytes attributed to each output in the size model.
pub const BYTES_PER_OUTPUT: u32 = 34;

/// A UTXO-model transaction.
///
/// A transaction consumes the outputs referenced by `inputs` and produces
/// `outputs`. A transaction with no inputs is a *coinbase* transaction: it
/// mints credits (block rewards) out of thin air and is never cross-shard
/// (Section V.A of the paper).
///
/// # Example
///
/// ```
/// use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};
///
/// let cb = Transaction::coinbase(TxId(0), 50, WalletId(1));
/// assert!(cb.is_coinbase());
///
/// let tx = Transaction::builder(TxId(1))
///     .input(TxId(0).outpoint(0))
///     .output(TxOutput::new(49, WalletId(2)))
///     .build();
/// assert_eq!(tx.inputs().len(), 1);
/// assert!(!tx.is_coinbase());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    id: TxId,
    inputs: Vec<OutPoint>,
    outputs: Vec<TxOutput>,
}

impl Transaction {
    /// Creates a transaction from parts.
    ///
    /// Prefer [`Transaction::builder`] for incremental construction. This
    /// constructor performs no ledger-level validation (that happens in
    /// [`crate::UtxoSet::apply`]), but the structural invariants (duplicate
    /// inputs) are still checked there.
    pub fn new(id: TxId, inputs: Vec<OutPoint>, outputs: Vec<TxOutput>) -> Self {
        Transaction {
            id,
            inputs,
            outputs,
        }
    }

    /// Creates a coinbase transaction minting `reward` credits to `miner`.
    pub fn coinbase(id: TxId, reward: u64, miner: WalletId) -> Self {
        Transaction {
            id,
            inputs: Vec::new(),
            outputs: vec![TxOutput::new(reward, miner)],
        }
    }

    /// Starts building a transaction with the given id.
    pub fn builder(id: TxId) -> TransactionBuilder {
        TransactionBuilder::new(id)
    }

    /// The transaction id.
    pub fn id(&self) -> TxId {
        self.id
    }

    /// The outputs this transaction spends.
    pub fn inputs(&self) -> &[OutPoint] {
        &self.inputs
    }

    /// The outputs this transaction creates.
    pub fn outputs(&self) -> &[TxOutput] {
        &self.outputs
    }

    /// `true` iff the transaction has no inputs (mints credits).
    pub fn is_coinbase(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Total value produced by the outputs.
    ///
    /// Returns `None` on arithmetic overflow.
    pub fn output_value(&self) -> Option<u64> {
        self.outputs
            .iter()
            .try_fold(0u64, |acc, o| acc.checked_add(o.value))
    }

    /// The distinct transactions whose outputs this transaction spends, in
    /// first-appearance order.
    ///
    /// This is the paper's `Nin(u)` — the *set* of input transactions of `u`
    /// (Section IV.B) — deduplicated even when several outputs of the same
    /// parent are consumed.
    pub fn input_txids(&self) -> Vec<TxId> {
        let mut seen = Vec::new();
        for op in &self.inputs {
            if !seen.contains(&op.txid) {
                seen.push(op.txid);
            }
        }
        seen
    }

    /// Serialized size in bytes under the linear size model
    /// (`BASE_TX_BYTES + inputs·BYTES_PER_INPUT + outputs·BYTES_PER_OUTPUT`),
    /// chosen so a typical 2-in/2-out transaction is ≈ 500 bytes as assumed
    /// by the paper's simulation configuration (Table III).
    pub fn size_bytes(&self) -> u32 {
        BASE_TX_BYTES
            + BYTES_PER_INPUT * self.inputs.len() as u32
            + BYTES_PER_OUTPUT * self.outputs.len() as u32
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} in, {} out{})",
            self.id,
            self.inputs.len(),
            self.outputs.len(),
            if self.is_coinbase() { ", coinbase" } else { "" }
        )
    }
}

/// Incremental builder for [`Transaction`].
///
/// # Example
///
/// ```
/// use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};
///
/// let tx = Transaction::builder(TxId(10))
///     .input(TxId(4).outpoint(0))
///     .input(TxId(5).outpoint(2))
///     .output(TxOutput::new(70, WalletId(1)))
///     .build();
/// assert_eq!(tx.inputs().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TransactionBuilder {
    id: TxId,
    inputs: Vec<OutPoint>,
    outputs: Vec<TxOutput>,
}

impl TransactionBuilder {
    /// Starts a builder for a transaction with id `id`.
    pub fn new(id: TxId) -> Self {
        TransactionBuilder {
            id,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds an input spending `outpoint`.
    pub fn input(mut self, outpoint: OutPoint) -> Self {
        self.inputs.push(outpoint);
        self
    }

    /// Adds every outpoint from the iterator as an input.
    pub fn inputs<I: IntoIterator<Item = OutPoint>>(mut self, outpoints: I) -> Self {
        self.inputs.extend(outpoints);
        self
    }

    /// Adds an output.
    pub fn output(mut self, output: TxOutput) -> Self {
        self.outputs.push(output);
        self
    }

    /// Adds every output from the iterator.
    pub fn outputs<I: IntoIterator<Item = TxOutput>>(mut self, outputs: I) -> Self {
        self.outputs.extend(outputs);
        self
    }

    /// Finishes building the transaction.
    pub fn build(self) -> Transaction {
        Transaction {
            id: self.id,
            inputs: self.inputs,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coinbase_has_no_inputs() {
        let cb = Transaction::coinbase(TxId(0), 50, WalletId(9));
        assert!(cb.is_coinbase());
        assert_eq!(cb.outputs().len(), 1);
        assert_eq!(cb.output_value(), Some(50));
    }

    #[test]
    fn builder_accumulates_inputs_and_outputs() {
        let tx = Transaction::builder(TxId(3))
            .inputs([TxId(0).outpoint(0), TxId(1).outpoint(0)])
            .outputs([
                TxOutput::new(10, WalletId(1)),
                TxOutput::new(5, WalletId(2)),
            ])
            .build();
        assert_eq!(tx.inputs().len(), 2);
        assert_eq!(tx.outputs().len(), 2);
        assert_eq!(tx.output_value(), Some(15));
        assert_eq!(tx.id(), TxId(3));
    }

    #[test]
    fn input_txids_deduplicates_parents() {
        let tx = Transaction::builder(TxId(5))
            .input(TxId(2).outpoint(0))
            .input(TxId(2).outpoint(1))
            .input(TxId(4).outpoint(0))
            .output(TxOutput::new(1, WalletId(0)))
            .build();
        assert_eq!(tx.input_txids(), vec![TxId(2), TxId(4)]);
    }

    #[test]
    fn typical_two_in_two_out_is_about_500_bytes() {
        let tx = Transaction::builder(TxId(1))
            .inputs([TxId(0).outpoint(0), TxId(0).outpoint(1)])
            .outputs([TxOutput::new(1, WalletId(0)), TxOutput::new(2, WalletId(1))])
            .build();
        let size = tx.size_bytes();
        assert!((400..=600).contains(&size), "size model off: {size}");
    }

    #[test]
    fn output_value_overflow_returns_none() {
        let tx = Transaction::builder(TxId(1))
            .output(TxOutput::new(u64::MAX, WalletId(0)))
            .output(TxOutput::new(1, WalletId(0)))
            .build();
        assert_eq!(tx.output_value(), None);
    }

    #[test]
    fn display_mentions_coinbase() {
        let cb = Transaction::coinbase(TxId(0), 50, WalletId(9));
        assert!(cb.to_string().contains("coinbase"));
    }
}
