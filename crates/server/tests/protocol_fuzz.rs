//! Adversarial input tests for the wire protocol and a live server.
//!
//! The decoding contract is *totality*: any byte sequence — random
//! garbage, truncations, mutations of valid frames, hostile length
//! fields — decodes to either a message or a typed error, never a
//! panic, never an unbounded allocation, and a live server fed such
//! bytes sheds them with a typed `Malformed`/`TooLarge` rejection and
//! keeps serving other connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use optchain_core::RouterFleet;
use optchain_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameRead, RejectReason, Request, Response, WireTx, DEFAULT_MAX_FRAME_BYTES,
};
use optchain_server::PlacementServer;
use optchain_utxo::TxId;
use proptest::collection;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Decoder totality (pure, no sockets)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2_000))]

    /// Arbitrary bytes never panic the request decoder.
    #[test]
    fn random_bytes_decode_request_totally(payload in collection::vec(0u8..=255, 0..96)) {
        let _ = decode_request(&payload);
    }

    /// Arbitrary bytes never panic the response decoder.
    #[test]
    fn random_bytes_decode_response_totally(payload in collection::vec(0u8..=255, 0..96)) {
        let _ = decode_response(&payload);
    }

    /// Bytes that *start* like a real opcode but carry hostile counts
    /// and truncated bodies must error, not panic or over-allocate.
    #[test]
    fn opcode_prefixed_garbage_is_rejected(
        opcode in 0u8..=255,
        body in collection::vec(0u8..=255, 0..64),
    ) {
        let mut payload = vec![opcode];
        payload.extend_from_slice(&body);
        let _ = decode_request(&payload);
        let _ = decode_response(&payload);
    }

    /// Every encodable request survives the round trip bit-exactly.
    #[test]
    fn request_roundtrip(
        req_id in 0u64..=u64::MAX,
        fee in 0u64..=u64::MAX,
        txid in 0u64..1_000_000,
        inputs in collection::vec(0u64..1_000_000, 0..12),
        batch in 0usize..4,
    ) {
        let tx = WireTx {
            txid: TxId(txid),
            inputs: inputs.iter().copied().map(TxId).collect(),
        };
        let request = match batch {
            0 => Request::Submit { req_id, fee, tx },
            1 => Request::SubmitBatch { req_id, fee, txs: vec![tx.clone(), tx] },
            2 => Request::Query { req_id, txid: TxId(txid) },
            _ => Request::Metrics { req_id },
        };
        let mut payload = Vec::new();
        encode_request(&request, &mut payload);
        prop_assert_eq!(decode_request(&payload).expect("own encoding decodes"), request);
    }

    /// Truncating a valid frame at any point yields a typed error.
    #[test]
    fn truncated_valid_request_errors_typed(
        txid in 0u64..1_000_000,
        inputs in collection::vec(0u64..1_000_000, 0..8),
        keep_fraction in 0.0f64..1.0,
    ) {
        let request = Request::Submit {
            req_id: 7,
            fee: 9,
            tx: WireTx {
                txid: TxId(txid),
                inputs: inputs.iter().copied().map(TxId).collect(),
            },
        };
        let mut payload = Vec::new();
        encode_request(&request, &mut payload);
        let keep = ((payload.len() as f64) * keep_fraction) as usize;
        if keep < payload.len() {
            prop_assert!(decode_request(&payload[..keep]).is_err());
        }
    }

    /// Flipping any single byte never panics, and flips outside the
    /// payload body always fail or decode to a *different* message —
    /// no mutation is silently ignored.
    #[test]
    fn single_byte_mutations_never_panic(
        txid in 0u64..1_000_000,
        pos_seed in 0usize..1_000,
        flip in 1u8..=255,
    ) {
        let request = Request::Query { req_id: 3, txid: TxId(txid) };
        let mut payload = Vec::new();
        encode_request(&request, &mut payload);
        let pos = pos_seed % payload.len();
        payload[pos] ^= flip;
        if let Ok(decoded) = decode_request(&payload) {
            prop_assert!(decoded != request);
        }
    }

    /// Appending trailing garbage to a valid message is an error: the
    /// frame length and the message body must agree exactly.
    #[test]
    fn trailing_garbage_is_an_error(
        req_id in 0u64..=u64::MAX,
        extra in collection::vec(0u8..=255, 1..16),
    ) {
        let mut payload = Vec::new();
        encode_request(&Request::Metrics { req_id }, &mut payload);
        payload.extend_from_slice(&extra);
        prop_assert!(decode_request(&payload).is_err());
    }

    /// Responses round trip too (the client depends on this).
    #[test]
    fn response_roundtrip(
        req_id in 0u64..=u64::MAX,
        shard in 0u32..4_096,
        shards in collection::vec(0u32..4_096, 0..16),
        pick in 0usize..5,
    ) {
        let response = match pick {
            0 => Response::Ack { req_id, shard },
            1 => Response::AckBatch { req_id, shards },
            2 => Response::Reject { req_id, reason: RejectReason::QueueFull },
            3 => Response::QueryResult { req_id, shard: Some(shard) },
            _ => Response::MetricsText { req_id, text: "optchain_up 1\n".into() },
        };
        let mut payload = Vec::new();
        encode_response(&response, &mut payload);
        prop_assert_eq!(decode_response(&payload).expect("own encoding decodes"), response);
    }

    /// The frame reader never reads (or allocates) an oversized
    /// payload, whatever length the prefix claims.
    #[test]
    fn hostile_length_prefixes_never_allocate(len in 0u32..=u32::MAX) {
        let mut wire = Vec::from(len.to_le_bytes());
        // Supply a little real data so undersized claims can succeed.
        wire.extend_from_slice(&[0u8; 64]);
        let mut buf = Vec::new();
        match read_frame(&mut &wire[..], 1_024, &mut buf) {
            Ok(FrameRead::Payload) => prop_assert!(len <= 64),
            Ok(FrameRead::TooLarge { len: l }) => {
                prop_assert_eq!(l, len);
                prop_assert!(len > 1_024);
                prop_assert!(buf.capacity() <= 1_024, "allocated for a hostile prefix");
            }
            Ok(FrameRead::Eof) => prop_assert!(false, "prefix was fully supplied"),
            Err(_) => prop_assert!(len > 64 && len <= 1_024),
        }
    }
}

// ---------------------------------------------------------------------------
// A live server under hostile bytes
// ---------------------------------------------------------------------------

fn start_server() -> PlacementServer {
    PlacementServer::builder()
        .fleet(RouterFleet::builder().shards(4).workers(1))
        .max_frame_bytes(4_096)
        .start()
        .expect("start server")
}

/// Connects a raw socket and reads past the `Hello` frame.
fn raw_conn(server: &PlacementServer) -> TcpStream {
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    let mut buf = Vec::new();
    match read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES, &mut buf).expect("hello frame") {
        FrameRead::Payload => {
            assert!(matches!(
                decode_response(&buf).expect("hello decodes"),
                Response::Hello { .. }
            ));
        }
        other => panic!("expected hello, got {other:?}"),
    }
    s
}

fn read_response(s: &mut TcpStream) -> Response {
    let mut buf = Vec::new();
    match read_frame(s, DEFAULT_MAX_FRAME_BYTES, &mut buf).expect("response frame") {
        FrameRead::Payload => decode_response(&buf).expect("response decodes"),
        other => panic!("expected a response frame, got {other:?}"),
    }
}

fn read_eof(s: &mut TcpStream) {
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte) {
            Ok(0) => return,
            Ok(_) => continue, // drain whatever remains before EOF
            Err(err) => panic!("expected clean EOF, got {err}"),
        }
    }
}

/// Garbage after a valid frame: the valid request is served, the
/// garbage is shed with a typed `Malformed` rejection, the connection
/// closes, and the server keeps serving new connections.
#[test]
fn garbage_after_valid_frame_is_shed_typed() {
    let server = start_server();
    let mut s = raw_conn(&server);

    let mut payload = Vec::new();
    encode_request(
        &Request::Submit {
            req_id: 1,
            fee: 5,
            tx: WireTx {
                txid: TxId(77),
                inputs: vec![],
            },
        },
        &mut payload,
    );
    write_frame(&mut s, &payload).unwrap();
    // A frame whose payload is pure garbage (unknown opcode).
    write_frame(&mut s, &[0x5a, 0xde, 0xad, 0xbe, 0xef]).unwrap();
    s.flush().unwrap();

    // Both responses must arrive, but their order is not guaranteed:
    // the ack routes through the admission queue and dispatcher while
    // the reader writes the malformed reject directly.
    let (mut acked, mut rejected) = (false, false);
    for _ in 0..2 {
        match read_response(&mut s) {
            Response::Ack { req_id: 1, .. } => acked = true,
            Response::Reject { req_id: 0, reason } => {
                assert_eq!(reason, RejectReason::Malformed);
                rejected = true;
            }
            other => panic!("expected ack + typed malformed rejection, got {other:?}"),
        }
    }
    assert!(acked, "the valid frame was never acked");
    assert!(rejected, "the garbage frame was never shed");
    read_eof(&mut s);

    // The server survived: a fresh connection still places work.
    let mut s2 = raw_conn(&server);
    encode_request(
        &Request::Query {
            req_id: 9,
            txid: TxId(77),
        },
        &mut payload,
    );
    write_frame(&mut s2, &payload).unwrap();
    s2.flush().unwrap();
    match read_response(&mut s2) {
        Response::QueryResult {
            req_id: 9,
            shard: Some(_),
        } => {}
        other => panic!("the earlier valid submit was lost: {other:?}"),
    }
    assert_eq!(server.metrics().shed(RejectReason::Malformed), 1);
    server.shutdown();
}

/// An oversized frame is shed with `TooLarge` without the payload
/// ever being read, and the connection closes.
#[test]
fn oversized_frame_is_shed_typed() {
    let server = start_server();
    let mut s = raw_conn(&server);

    // Claim a 16 MiB payload on a connection capped at 4 KiB.
    s.write_all(&(16u32 << 20).to_le_bytes()).unwrap();
    s.flush().unwrap();
    match read_response(&mut s) {
        Response::Reject { req_id: 0, reason } => assert_eq!(reason, RejectReason::TooLarge),
        other => panic!("expected typed too-large rejection, got {other:?}"),
    }
    read_eof(&mut s);
    assert_eq!(server.metrics().shed(RejectReason::TooLarge), 1);
    server.shutdown();
}

/// A connection that dies mid-frame neither hangs nor kills the
/// server; the half-received request is simply dropped (it was never
/// admitted, so no ack was owed).
#[test]
fn truncated_frame_then_disconnect_is_harmless() {
    let server = start_server();
    {
        let mut s = raw_conn(&server);
        // Declare 100 bytes, send 3, vanish.
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
        s.flush().unwrap();
    } // dropped: RST/FIN mid-frame

    // The server keeps serving.
    let mut s2 = raw_conn(&server);
    let mut payload = Vec::new();
    encode_request(&Request::Metrics { req_id: 4 }, &mut payload);
    write_frame(&mut s2, &payload).unwrap();
    s2.flush().unwrap();
    match read_response(&mut s2) {
        Response::MetricsText { req_id: 4, .. } => {}
        other => panic!("expected metrics, got {other:?}"),
    }
    server.shutdown();
}

/// A zero-length frame (empty payload) is malformed, typed, and
/// non-fatal to the server.
#[test]
fn empty_frame_is_shed_typed() {
    let server = start_server();
    let mut s = raw_conn(&server);
    write_frame(&mut s, &[]).unwrap();
    s.flush().unwrap();
    match read_response(&mut s) {
        Response::Reject { req_id: 0, reason } => assert_eq!(reason, RejectReason::Malformed),
        other => panic!("expected typed malformed rejection, got {other:?}"),
    }
    read_eof(&mut s);
    server.shutdown();
}

/// `req_id` is client-chosen and 0 is legal on the wire. A rejected
/// request carrying `req_id` 0 must settle its credit like any other
/// answered request — a leaked credit wedges connection teardown (the
/// reader waits for the window to go idle) and hangs server shutdown.
/// The in-repo client starts req_ids at 1, so only a raw socket can
/// cover this.
#[test]
fn rejected_req_id_zero_request_settles_its_credit() {
    let server = start_server();
    let mut s = raw_conn(&server);
    let mut payload = Vec::new();
    // The same submission twice, both with req_id 0: the first is
    // admitted and acked, the second is shed as a Duplicate — a
    // credited rejection that happens to carry req_id 0 on the wire.
    for _ in 0..2 {
        encode_request(
            &Request::Submit {
                req_id: 0,
                fee: 1,
                tx: WireTx {
                    txid: TxId(7),
                    inputs: vec![],
                },
            },
            &mut payload,
        );
        write_frame(&mut s, &payload).unwrap();
    }
    s.flush().unwrap();
    let (mut acked, mut rejected) = (false, false);
    for _ in 0..2 {
        match read_response(&mut s) {
            Response::Ack { req_id: 0, .. } => acked = true,
            Response::Reject { req_id: 0, reason } => {
                assert_eq!(reason, RejectReason::Duplicate);
                rejected = true;
            }
            other => panic!("expected ack + duplicate rejection, got {other:?}"),
        }
    }
    assert!(acked, "the first req_id-0 submit was never acked");
    assert!(rejected, "the duplicate req_id-0 submit was never shed");
    // EOF starts connection teardown: the reader waits for every
    // acquired credit to settle before deregistering. Shutdown must
    // then complete — bound it so a leaked credit fails fast instead
    // of hanging the test run.
    drop(s);
    let done = std::thread::spawn(move || server.shutdown());
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done.is_finished() {
        assert!(
            Instant::now() < deadline,
            "shutdown wedged: a rejected req_id-0 request leaked its credit"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    done.join().expect("shutdown thread");
}

/// Submits with hostile *interior* counts (a batch claiming millions
/// of entries in a short frame) are rejected without allocation.
#[test]
fn hostile_interior_count_is_shed_typed() {
    let server = start_server();
    let mut s = raw_conn(&server);
    // OP_SUBMIT_BATCH (0x02) + req_id + fee + count=u32::MAX, then EOF
    // of the frame: the count can't possibly fit the remaining bytes.
    let mut payload = vec![0x02];
    payload.extend_from_slice(&11u64.to_le_bytes());
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    write_frame(&mut s, &payload).unwrap();
    s.flush().unwrap();
    match read_response(&mut s) {
        Response::Reject { req_id: 0, reason } => assert_eq!(reason, RejectReason::Malformed),
        other => panic!("expected typed malformed rejection, got {other:?}"),
    }
    read_eof(&mut s);
    server.shutdown();
}
