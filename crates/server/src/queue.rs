//! The bounded, fee-ordered admission queue — the server's mempool.
//!
//! Entries are served **highest fee first**, FIFO within equal fees
//! (admission order breaks ties, so a single client paying a flat fee
//! observes strict submission order). Capacity is counted in
//! *transactions*, not entries — a batch occupies its length — so the
//! queue bounds placement backlog, which is what bounds admitted-
//! request latency. A push over capacity fails and the caller sheds
//! the request with [`crate::protocol::RejectReason::QueueFull`];
//! nothing is ever silently dropped or evicted.

use std::collections::BinaryHeap;

/// One admitted unit of work (a single submit or a whole batch).
#[derive(Debug)]
pub struct Admitted<T> {
    /// Admission priority (higher first).
    pub fee: u64,
    /// Admission order, assigned by the queue; the FIFO tiebreak.
    pub seq: u64,
    /// How many transactions this entry places.
    pub txs: usize,
    /// The caller's payload.
    pub work: T,
}

impl<T> PartialEq for Admitted<T> {
    fn eq(&self, other: &Self) -> bool {
        self.fee == other.fee && self.seq == other.seq
    }
}

impl<T> Eq for Admitted<T> {}

impl<T> PartialOrd for Admitted<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Admitted<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: order by fee, then *reversed*
        // admission seq so equal fees pop oldest-first.
        self.fee
            .cmp(&other.fee)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The error returned when a push would exceed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Transactions currently queued.
    pub depth: usize,
    /// The configured capacity.
    pub capacity: usize,
}

/// A bounded max-heap of [`Admitted`] entries. Not synchronized — the
/// server wraps it in its admission mutex.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    heap: BinaryHeap<Admitted<T>>,
    /// Queued transactions (sum of entry `txs`).
    depth: usize,
    capacity: usize,
    next_seq: u64,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` transactions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue capacity must be positive");
        AdmissionQueue {
            heap: BinaryHeap::new(),
            depth: 0,
            capacity,
            next_seq: 0,
        }
    }

    /// Transactions currently queued (the `/metrics` depth gauge).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The configured capacity in transactions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` iff nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Admits `work` placing `txs` transactions at priority `fee`, or
    /// refuses it if the queue cannot hold `txs` more.
    ///
    /// # Panics
    ///
    /// Panics if `txs == 0` — an empty unit would be unanswerable.
    pub fn try_push(&mut self, fee: u64, txs: usize, work: T) -> Result<(), QueueFull> {
        assert!(txs > 0, "an admission unit must place at least one tx");
        if self.depth + txs > self.capacity {
            return Err(QueueFull {
                depth: self.depth,
                capacity: self.capacity,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.depth += txs;
        self.heap.push(Admitted {
            fee,
            seq,
            txs,
            work,
        });
        Ok(())
    }

    /// Removes and returns the highest-priority entry.
    pub fn pop(&mut self) -> Option<Admitted<T>> {
        let entry = self.heap.pop()?;
        self.depth -= entry.txs;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_highest_fee_first_fifo_within_fee() {
        let mut q = AdmissionQueue::new(16);
        q.try_push(1, 1, "low-a").unwrap();
        q.try_push(9, 1, "high").unwrap();
        q.try_push(1, 1, "low-b").unwrap();
        q.try_push(5, 1, "mid").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.work)).collect();
        assert_eq!(order, ["high", "mid", "low-a", "low-b"]);
    }

    #[test]
    fn capacity_counts_transactions_not_entries() {
        let mut q = AdmissionQueue::new(10);
        q.try_push(0, 8, "batch").unwrap();
        assert_eq!(q.depth(), 8);
        // 8 + 3 > 10: refused, depth unchanged.
        let err = q.try_push(0, 3, "spill").unwrap_err();
        assert_eq!(
            err,
            QueueFull {
                depth: 8,
                capacity: 10
            }
        );
        // 8 + 2 == 10: exactly fits.
        q.try_push(0, 2, "fits").unwrap();
        assert_eq!(q.depth(), 10);
        q.pop().unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn equal_everything_orders_by_admission() {
        let mut q = AdmissionQueue::new(100);
        for i in 0..50 {
            q.try_push(7, 1, i).unwrap();
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.work)).collect();
        assert_eq!(popped, (0..50).collect::<Vec<_>>());
    }
}
