//! The placement server: a std-TCP front-end over a
//! [`RouterFleet`].
//!
//! # Threading model
//!
//! ```text
//!                    ┌──────────────┐
//!   accept loop ───▶ │ per-conn     │──▶ bounded admission queue ──▶ dispatcher ──▶ RouterFleet
//!   (1 thread)       │ reader thread│    (fee-ordered, capacity-     (1 thread,     (N workers,
//!                    └──────────────┘     bounded, shed on full)      detached       detached
//!                    ┌──────────────┐                                 submit+drain)  batch path)
//!   responses ◀───── │ per-conn     │◀─── outbox channel ◀────────────────┘
//!                    │ writer thread│
//!                    └──────────────┘
//! ```
//!
//! * The **reader** parses frames, enforces the per-connection credit
//!   window (by *pausing reads* — a client over its window stalls in
//!   TCP backpressure, it is never disconnected or silently dropped),
//!   and admits work into the bounded fee-ordered queue. Admission
//!   failures are shed with a typed rejection immediately.
//! * The **dispatcher** pops admitted work highest-fee-first, feeds
//!   the fleet through the detached (fire-and-forget) submission path,
//!   then drains the placement results and routes acks back to each
//!   connection's outbox.
//! * The **writer** drains the outbox to the socket and returns credit.
//!
//! # Overload behavior
//!
//! Every request gets **exactly one response**. When the admission
//! queue is full, new work is rejected with
//! [`RejectReason::QueueFull`]; because the queue is bounded, the
//! latency of *admitted* work is bounded by `queue_capacity` over the
//! placement rate — overload degrades by shedding, never by collapse.
//! During shutdown the server **drains**: everything admitted is still
//! placed and acknowledged (and journaled, under `.storage(...)`),
//! new work is rejected with [`RejectReason::Shutdown`], and the fleet
//! is shut down through [`RouterFleet::shutdown`], which flushes every
//! worker's WAL tail before the server returns.

use std::collections::HashMap;
use std::io::{self, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use optchain_core::{RouterFleet, RouterFleetBuilder};
use optchain_utxo::TxId;

use crate::metrics::ServerMetrics;
use crate::protocol::{
    self, FrameRead, RejectReason, Request, Response, WireTx, DEFAULT_MAX_FRAME_BYTES,
    MAX_FRAME_BYTES_CEILING,
};
use crate::queue::AdmissionQueue;

/// Default admission queue capacity, in transactions.
pub const DEFAULT_QUEUE_CAPACITY: usize = 16_384;

/// Default per-connection credit window, in requests.
pub const DEFAULT_CREDIT_WINDOW: u32 = 256;

/// How many transactions the dispatcher pulls per round before
/// draining results. Larger chunks amortize the drain round trip;
/// smaller chunks re-consult the fee order sooner (a high-fee arrival
/// can only jump work that is still queued, not a chunk already
/// handed to the fleet). 256 keeps the drain overhead under a few
/// percent at fleet throughput while bounding priority inversion.
const DISPATCH_CHUNK: usize = 256;

// ---------------------------------------------------------------------------
// Admission state
// ---------------------------------------------------------------------------

/// One unit of dispatcher work.
enum Work {
    Submit {
        conn: u64,
        req_id: u64,
        tx: WireTx,
        admitted_at: Instant,
    },
    Batch {
        conn: u64,
        req_id: u64,
        txs: Vec<WireTx>,
        admitted_at: Instant,
    },
    Query {
        conn: u64,
        req_id: u64,
        txid: TxId,
    },
}

/// Duplicate-submission guard: remembers admitted transaction ids,
/// optionally windowed (`window == 0` means remember forever). The
/// window should be at least the fleet's retention horizon — a
/// duplicate older than the graph's own memory re-enters as a fresh
/// node, exactly like a pre-history spend, so forgetting it here is
/// consistent.
struct Dedup {
    set: std::collections::HashSet<u64>,
    ring: std::collections::VecDeque<u64>,
    window: usize,
}

impl Dedup {
    fn new(window: usize) -> Self {
        Dedup {
            set: std::collections::HashSet::new(),
            ring: std::collections::VecDeque::new(),
            window,
        }
    }

    fn contains(&self, txid: TxId) -> bool {
        self.set.contains(&txid.0)
    }

    fn insert(&mut self, txid: TxId) {
        if self.set.insert(txid.0) && self.window > 0 {
            self.ring.push_back(txid.0);
            while self.ring.len() > self.window {
                let evicted = self.ring.pop_front().expect("ring non-empty");
                self.set.remove(&evicted);
            }
        }
    }
}

struct AdmissionState {
    queue: AdmissionQueue<Work>,
    dedup: Dedup,
    /// Shutdown has begun: admitted work still drains, new work is
    /// shed with [`RejectReason::Shutdown`].
    draining: bool,
}

struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
}

// ---------------------------------------------------------------------------
// Per-connection plumbing
// ---------------------------------------------------------------------------

/// Credit-window accounting for one connection. The reader blocks in
/// [`Window::acquire`] while the window is exhausted; the writer
/// releases one credit per response written.
struct Window {
    state: Mutex<(u32, bool)>, // (in_flight, closed)
    cv: Condvar,
}

impl Window {
    fn new() -> Self {
        Window {
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a credit is free, then takes it. Returns `false`
    /// if the connection closed while waiting.
    fn acquire(&self, max: u32) -> bool {
        let mut s = self.state.lock().expect("window mutex");
        while s.0 >= max && !s.1 {
            s = self.cv.wait(s).expect("window mutex");
        }
        if s.1 {
            return false;
        }
        s.0 += 1;
        true
    }

    fn release(&self) {
        let mut s = self.state.lock().expect("window mutex");
        s.0 = s.0.saturating_sub(1);
        self.cv.notify_all();
    }

    /// Blocks until every acquired credit has been released (every
    /// in-flight request has had its response written), or the
    /// connection closed. The reader calls this before tearing a
    /// connection down so a protocol violation never drops acks for
    /// work admitted before it.
    fn wait_idle(&self) {
        let mut s = self.state.lock().expect("window mutex");
        while s.0 > 0 && !s.1 {
            s = self.cv.wait(s).expect("window mutex");
        }
    }

    fn close(&self) {
        self.state.lock().expect("window mutex").1 = true;
        self.cv.notify_all();
    }
}

/// A response on its way to a connection's writer, tagged with whether
/// writing it settles a credit the reader acquired. The tag travels
/// with the response — credit accounting is never inferred from wire
/// fields like `req_id`, which is client-chosen (0 is legal).
enum Outgoing {
    /// Settles one credit when written: the answer to a request the
    /// reader admitted through [`Window::acquire`].
    Credited(Response),
    /// No credit attached: the hello and connection-level rejects
    /// (malformed/oversized frames, which never acquired a credit).
    Uncredited(Response),
}

struct ConnEntry {
    outbox: SyncSender<Outgoing>,
    /// A cloned stream handle used only to `shutdown()` the socket
    /// from the server side (unblocking the reader).
    shutdown_handle: TcpStream,
}

type Registry = Arc<Mutex<HashMap<u64, ConnEntry>>>;

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Builder for [`PlacementServer`]. The one required input is the
/// [`RouterFleetBuilder`] describing the placement fleet the server
/// fronts — every fleet knob (strategy, retention, `.storage(...)`
/// durability, worker count) composes unchanged.
pub struct PlacementServerBuilder {
    fleet: Option<RouterFleetBuilder>,
    addr: String,
    queue_capacity: usize,
    credit_window: u32,
    max_frame_bytes: u32,
    max_placements_per_sec: Option<u64>,
    dedup_window: usize,
}

impl PlacementServerBuilder {
    fn new() -> Self {
        PlacementServerBuilder {
            fleet: None,
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            credit_window: DEFAULT_CREDIT_WINDOW,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_placements_per_sec: None,
            dedup_window: 0,
        }
    }

    /// The placement fleet to serve (required). The builder is built —
    /// and its worker threads spawned — inside [`Self::start`].
    pub fn fleet(mut self, fleet: RouterFleetBuilder) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Listen address (default `127.0.0.1:0` — an ephemeral loopback
    /// port; read the bound address back with
    /// [`PlacementServer::local_addr`]).
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Admission queue capacity in transactions (default 16384). This
    /// is the overload knob: it bounds both memory and the latency of
    /// admitted requests; anything beyond it is shed with
    /// [`RejectReason::QueueFull`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.queue_capacity = capacity;
        self
    }

    /// Per-connection credit window in requests (default 256): how
    /// many requests a client may have in flight. Enforced by pausing
    /// reads, i.e. TCP backpressure — never by disconnecting.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn credit_window(mut self, window: u32) -> Self {
        assert!(window > 0, "credit window must be positive");
        self.credit_window = window;
        self
    }

    /// Largest accepted frame payload in bytes (default 1 MiB, capped
    /// at [`MAX_FRAME_BYTES_CEILING`]). Larger frames are shed with
    /// [`RejectReason::TooLarge`] and the connection is closed (the
    /// unread payload makes the stream unframable).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or above the ceiling.
    pub fn max_frame_bytes(mut self, bytes: u32) -> Self {
        assert!(
            bytes > 0 && bytes <= MAX_FRAME_BYTES_CEILING,
            "max_frame_bytes must be in 1..={MAX_FRAME_BYTES_CEILING}"
        );
        self.max_frame_bytes = bytes;
        self
    }

    /// Caps the dispatcher's placement rate (transactions per second).
    /// An operations knob — useful to bound a node's resource share —
    /// and the deterministic way to drive the server into overload in
    /// tests and the `loadgen` overload arm.
    ///
    /// # Panics
    ///
    /// Panics if `rate == 0`.
    pub fn max_placements_per_sec(mut self, rate: u64) -> Self {
        assert!(rate > 0, "placement rate cap must be positive");
        self.max_placements_per_sec = Some(rate);
        self
    }

    /// Bounds the duplicate-submission guard to the last `window`
    /// admitted transaction ids (default 0 = remember every id).
    /// Set it to at least the fleet's retention window: a duplicate
    /// the graph itself has evicted re-enters as a fresh node, so the
    /// guard may forget it too.
    pub fn dedup_window(mut self, window: usize) -> Self {
        self.dedup_window = window;
        self
    }

    /// Binds the listener, builds the fleet, and spawns the accept
    /// loop and dispatcher.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    ///
    /// # Panics
    ///
    /// Panics if no fleet was configured, or on any condition
    /// [`RouterFleetBuilder::build`] rejects.
    pub fn start(self) -> io::Result<PlacementServer> {
        let fleet = self
            .fleet
            .expect("PlacementServerBuilder::fleet is required")
            .build();
        let shards = fleet.k();
        let listener =
            TcpListener::bind(self.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable addr")
            })?)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let admission = Arc::new(Admission {
            state: Mutex::new(AdmissionState {
                queue: AdmissionQueue::new(self.queue_capacity),
                dedup: Dedup::new(self.dedup_window),
                draining: false,
            }),
            cv: Condvar::new(),
        });
        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let metrics = Arc::new(ServerMetrics::new());
        metrics.init_shards(shards);
        let stop_accept = Arc::new(AtomicBool::new(false));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let dispatcher = {
            let admission = admission.clone();
            let registry = registry.clone();
            let metrics = metrics.clone();
            let rate = self.max_placements_per_sec;
            std::thread::Builder::new()
                .name("optchain-dispatch".into())
                .spawn(move || dispatcher_loop(fleet, admission, registry, metrics, rate))
                .expect("spawn dispatcher")
        };

        let acceptor = {
            let admission = admission.clone();
            let registry = registry.clone();
            let metrics = metrics.clone();
            let stop_accept = stop_accept.clone();
            let conn_threads = conn_threads.clone();
            let credit_window = self.credit_window;
            let max_frame_bytes = self.max_frame_bytes;
            std::thread::Builder::new()
                .name("optchain-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        admission,
                        registry,
                        metrics,
                        stop_accept,
                        conn_threads,
                        credit_window,
                        max_frame_bytes,
                        shards,
                    )
                })
                .expect("spawn acceptor")
        };

        Ok(PlacementServer {
            local_addr,
            admission,
            registry,
            metrics,
            stop_accept,
            conn_threads,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }
}

// ---------------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    admission: Arc<Admission>,
    registry: Registry,
    metrics: Arc<ServerMetrics>,
    stop_accept: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    credit_window: u32,
    max_frame_bytes: u32,
    shards: u32,
) {
    let mut next_conn_id = 0u64;
    while !stop_accept.load(Ordering::Relaxed) {
        reap_finished(&conn_threads);
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Err(err) = setup_connection(
                    conn_id,
                    stream,
                    &admission,
                    &registry,
                    &metrics,
                    &conn_threads,
                    credit_window,
                    max_frame_bytes,
                    shards,
                ) {
                    // A connection that died during setup is not a
                    // server error; drop it and keep accepting.
                    let _ = err;
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept errors (e.g. ECONNABORTED): retry.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Joins connection threads that have already finished, so
/// `conn_threads` tracks live connections instead of growing without
/// bound under connection churn (shutdown joins whatever remains).
fn reap_finished(conn_threads: &Mutex<Vec<JoinHandle<()>>>) {
    let mut threads = conn_threads.lock().expect("threads mutex");
    let mut i = 0;
    while i < threads.len() {
        if threads[i].is_finished() {
            let _ = threads.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn setup_connection(
    conn_id: u64,
    stream: TcpStream,
    admission: &Arc<Admission>,
    registry: &Registry,
    metrics: &Arc<ServerMetrics>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    credit_window: u32,
    max_frame_bytes: u32,
    shards: u32,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let write_stream = stream.try_clone()?;
    let shutdown_handle = stream.try_clone()?;
    // Sized so the dispatcher can never block on a full outbox: at
    // most `credit_window` responses are ever outstanding (the reader
    // stops admitting beyond the window), plus the hello and a
    // connection-level rejection.
    let (outbox, outbox_rx) = mpsc::sync_channel::<Outgoing>(credit_window as usize + 8);
    let window = Arc::new(Window::new());

    outbox
        .send(Outgoing::Uncredited(Response::Hello {
            credit_window,
            max_frame_bytes,
            shards,
        }))
        .expect("fresh outbox has room");

    registry.lock().expect("registry mutex").insert(
        conn_id,
        ConnEntry {
            outbox: outbox.clone(),
            shutdown_handle,
        },
    );
    metrics.on_connection_opened();

    let writer = {
        let window = window.clone();
        let metrics = metrics.clone();
        std::thread::Builder::new()
            .name(format!("optchain-conn-{conn_id}-w"))
            .spawn(move || writer_loop(write_stream, outbox_rx, window, metrics))
            .expect("spawn conn writer")
    };
    let reader = {
        let admission = admission.clone();
        let registry = registry.clone();
        let metrics = metrics.clone();
        let window = window.clone();
        std::thread::Builder::new()
            .name(format!("optchain-conn-{conn_id}-r"))
            .spawn(move || {
                reader_loop(
                    conn_id,
                    stream,
                    outbox,
                    window,
                    admission,
                    metrics.clone(),
                    credit_window,
                    max_frame_bytes,
                );
                // The reader owns teardown: deregister (dropping the
                // registry's outbox sender) so the writer can finish.
                registry.lock().expect("registry mutex").remove(&conn_id);
                metrics.on_connection_closed();
            })
            .expect("spawn conn reader")
    };
    let mut threads = conn_threads.lock().expect("threads mutex");
    threads.push(writer);
    threads.push(reader);
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-connection reader
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn reader_loop(
    conn_id: u64,
    mut stream: TcpStream,
    outbox: SyncSender<Outgoing>,
    window: Arc<Window>,
    admission: Arc<Admission>,
    metrics: Arc<ServerMetrics>,
    credit_window: u32,
    max_frame_bytes: u32,
) {
    let mut frame = Vec::new();
    loop {
        let payload = match protocol::read_frame(&mut stream, max_frame_bytes, &mut frame) {
            Ok(FrameRead::Payload) => &frame[..],
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::TooLarge { .. }) => {
                // The oversized payload was never read, so the stream
                // cannot be re-framed: reject, then close. req_id 0 on
                // the wire means "no particular request" here — no
                // credit was acquired for the unreadable frame.
                metrics.on_shed(RejectReason::TooLarge, 1);
                let _ = outbox.send(Outgoing::Uncredited(Response::Reject {
                    req_id: 0,
                    reason: RejectReason::TooLarge,
                }));
                break;
            }
            Err(_) => break,
        };
        let request = match protocol::decode_request(payload) {
            Ok(request) => request,
            Err(_) => {
                metrics.on_shed(RejectReason::Malformed, 1);
                let _ = outbox.send(Outgoing::Uncredited(Response::Reject {
                    req_id: 0,
                    reason: RejectReason::Malformed,
                }));
                break;
            }
        };
        // One credit per request; blocking here (not buffering) is the
        // per-connection backpressure. The writer returns the credit
        // when the response hits the socket.
        if !window.acquire(credit_window) {
            break;
        }
        let response = handle_request(conn_id, request, &admission, &metrics);
        if let Some(response) = response {
            if outbox.send(Outgoing::Credited(response)).is_err() {
                break;
            }
        }
    }
    // Whatever ended the read loop — clean EOF, a malformed frame, an
    // oversized frame — requests already admitted still get their
    // responses: hold the registry entry (deregistration happens after
    // this returns) until the writer has returned every credit.
    window.wait_idle();
    window.close();
    let _ = stream.shutdown(Shutdown::Read);
}

/// Admits, sheds, or directly answers one request. `None` means the
/// request was queued and the dispatcher will answer it.
fn handle_request(
    conn_id: u64,
    request: Request,
    admission: &Admission,
    metrics: &ServerMetrics,
) -> Option<Response> {
    match request {
        Request::Metrics { req_id } => {
            let depth;
            let capacity;
            {
                let s = admission.state.lock().expect("admission mutex");
                depth = s.queue.depth();
                capacity = s.queue.capacity();
            }
            Some(Response::MetricsText {
                req_id,
                text: metrics.render(depth, capacity),
            })
        }
        Request::Query { req_id, txid } => {
            let mut s = admission.state.lock().expect("admission mutex");
            if s.draining {
                metrics.on_shed(RejectReason::Shutdown, 1);
                return Some(Response::Reject {
                    req_id,
                    reason: RejectReason::Shutdown,
                });
            }
            // Queries ride the queue at maximum priority: they answer
            // from placed state, so they should not wait behind bulk
            // submissions — but they still occupy one bounded slot.
            let push = s.queue.try_push(
                u64::MAX,
                1,
                Work::Query {
                    conn: conn_id,
                    req_id,
                    txid,
                },
            );
            match push {
                Ok(()) => {
                    admission.cv.notify_all();
                    None
                }
                Err(_) => {
                    metrics.on_shed(RejectReason::QueueFull, 1);
                    Some(Response::Reject {
                        req_id,
                        reason: RejectReason::QueueFull,
                    })
                }
            }
        }
        Request::Submit { req_id, fee, tx } => {
            match admit(conn_id, req_id, fee, vec![tx], false, admission, metrics) {
                Ok(()) => None,
                Err(reason) => Some(Response::Reject { req_id, reason }),
            }
        }
        Request::SubmitBatch { req_id, fee, txs } => {
            if txs.is_empty() {
                // An empty batch is trivially placed.
                return Some(Response::AckBatch {
                    req_id,
                    shards: Vec::new(),
                });
            }
            match admit(conn_id, req_id, fee, txs, true, admission, metrics) {
                Ok(()) => None,
                Err(reason) => Some(Response::Reject { req_id, reason }),
            }
        }
    }
}

/// Admission decision for a submit (single tx or batch), atomic under
/// the admission mutex: shutdown check, duplicate check, capacity
/// check, then enqueue + dedup registration.
fn admit(
    conn_id: u64,
    req_id: u64,
    fee: u64,
    txs: Vec<WireTx>,
    is_batch: bool,
    admission: &Admission,
    metrics: &ServerMetrics,
) -> Result<(), RejectReason> {
    let ntxs = txs.len();
    let mut s = admission.state.lock().expect("admission mutex");
    if s.draining {
        drop(s);
        metrics.on_shed(RejectReason::Shutdown, 1);
        return Err(RejectReason::Shutdown);
    }
    let mut seen_in_batch = std::collections::HashSet::new();
    for tx in &txs {
        if s.dedup.contains(tx.txid) || !seen_in_batch.insert(tx.txid.0) {
            drop(s);
            metrics.on_shed(RejectReason::Duplicate, 1);
            return Err(RejectReason::Duplicate);
        }
    }
    // Capacity check before touching the dedup set: a shed request was
    // never admitted, so its ids must remain submittable.
    if s.queue.depth() + ntxs > s.queue.capacity() {
        drop(s);
        metrics.on_shed(RejectReason::QueueFull, 1);
        return Err(RejectReason::QueueFull);
    }
    let admitted_at = Instant::now();
    for tx in &txs {
        s.dedup.insert(tx.txid);
    }
    let work = if is_batch {
        Work::Batch {
            conn: conn_id,
            req_id,
            txs,
            admitted_at,
        }
    } else {
        let mut txs = txs;
        Work::Submit {
            conn: conn_id,
            req_id,
            tx: txs.pop().expect("single submit has one tx"),
            admitted_at,
        }
    };
    s.queue
        .try_push(fee, ntxs, work)
        .expect("capacity checked above");
    drop(s);
    metrics.on_admitted(ntxs as u64);
    admission.cv.notify_all();
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-connection writer
// ---------------------------------------------------------------------------

fn writer_loop(
    stream: TcpStream,
    rx: Receiver<Outgoing>,
    window: Arc<Window>,
    metrics: Arc<ServerMetrics>,
) {
    let mut w = BufWriter::new(stream);
    let mut payload = Vec::new();
    let mut dead = false;
    // Drain until every sender (registry + reader + transient
    // dispatcher clones) is gone, releasing credits even when the
    // socket has failed — otherwise a reader blocked on the window
    // would never observe the close.
    while let Ok(first) = rx.recv() {
        let mut pending = Some(first);
        while let Some(outgoing) = pending.take() {
            // Only Credited responses release a credit — the teardown
            // wait_idle relies on acquires and releases matching, and
            // the sender tagged each response explicitly.
            let (response, consumes_credit) = match outgoing {
                Outgoing::Credited(response) => (response, true),
                Outgoing::Uncredited(response) => (response, false),
            };
            let is_ack = matches!(response, Response::Ack { .. } | Response::AckBatch { .. });
            if !dead {
                protocol::encode_response(&response, &mut payload);
                if protocol::write_frame(&mut w, &payload).is_err() {
                    dead = true;
                }
            }
            if dead && is_ack {
                metrics.on_ack_to_closed_conn();
            }
            if consumes_credit {
                window.release();
            }
            // Keep the socket saturated while the outbox has more;
            // flush once it momentarily runs dry.
            pending = match rx.try_recv() {
                Ok(next) => Some(next),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
            };
        }
        if !dead && w.flush().is_err() {
            dead = true;
        }
    }
    let _ = w.flush();
    if let Ok(stream) = w.into_inner() {
        let _ = stream.shutdown(Shutdown::Write);
    }
    window.close();
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

fn dispatcher_loop(
    fleet: RouterFleet,
    admission: Arc<Admission>,
    registry: Registry,
    metrics: Arc<ServerMetrics>,
    rate: Option<u64>,
) {
    let mut handles: HashMap<u64, optchain_core::FleetHandle> = HashMap::new();
    let mut placed_total = 0u64;
    let started = Instant::now();
    let mut batch: Vec<crate::queue::Admitted<Work>> = Vec::new();
    // Fleet-counter snapshots (cross-shard ratio, rebalancer progress)
    // cost a worker round trip, so they are taken at most every
    // FLEET_POLL_INTERVAL instead of per ack.
    let mut polled_at = 0u64;
    // Backdated so the first placements are snapshotted promptly.
    let mut last_poll = Instant::now()
        .checked_sub(FLEET_POLL_INTERVAL)
        .unwrap_or_else(Instant::now);

    loop {
        batch.clear();
        {
            let mut s = admission.state.lock().expect("admission mutex");
            loop {
                let mut pulled = 0usize;
                while pulled < DISPATCH_CHUNK {
                    match s.queue.pop() {
                        Some(entry) => {
                            pulled += entry.txs;
                            batch.push(entry);
                        }
                        None => break,
                    }
                }
                if !batch.is_empty() {
                    break;
                }
                if s.draining {
                    // Queue fully drained and no more admissions can
                    // arrive: the server is done. Take a final counter
                    // snapshot while the workers still answer.
                    drop(s);
                    poll_fleet_stats(&fleet, &metrics);
                    fleet.shutdown();
                    return;
                }
                s = admission.cv.wait(s).expect("admission mutex");
            }
        }

        // Phase 1: feed the fleet's detached path (fire-and-forget) —
        // placements for many connections pipeline through the worker
        // queues without a per-transaction round trip.
        let mut order: Vec<(u64, usize)> = Vec::with_capacity(batch.len());
        for (idx, entry) in batch.iter().enumerate() {
            match &entry.work {
                Work::Query { conn, req_id, txid } => {
                    let shard = fleet.shard_of(*txid).map(|s| s.0);
                    send_to_conn(
                        &registry,
                        *conn,
                        Response::QueryResult {
                            req_id: *req_id,
                            shard,
                        },
                        &metrics,
                    );
                }
                Work::Submit { conn, tx, .. } => {
                    pace(rate, started, placed_total);
                    let handle = handles.entry(*conn).or_insert_with(|| fleet.handle(*conn));
                    handle.submit_detached(tx.txid, &tx.inputs);
                    placed_total += 1;
                    order.push((*conn, idx));
                }
                Work::Batch { conn, txs, .. } => {
                    pace(rate, started, placed_total);
                    let handle = handles.entry(*conn).or_insert_with(|| fleet.handle(*conn));
                    for tx in txs {
                        handle.submit_detached(tx.txid, &tx.inputs);
                    }
                    placed_total += txs.len() as u64;
                    order.push((*conn, idx));
                }
            }
        }

        // Phase 2: drain each touched connection's results, in the
        // order the entries were submitted (global sequence numbers
        // are monotone per connection, and `drain` returns them
        // sorted), and route the acks.
        let mut per_conn: HashMap<u64, Vec<usize>> = HashMap::new();
        for (conn, idx) in order {
            per_conn.entry(conn).or_default().push(idx);
        }
        for (conn, idxs) in per_conn {
            let results = handles
                .get(&conn)
                .expect("handle created in phase 1")
                .drain();
            let mut shards = results.into_iter().map(|(_, shard)| shard.0);
            for idx in idxs {
                match &batch[idx].work {
                    Work::Submit {
                        req_id,
                        admitted_at,
                        ..
                    } => {
                        let shard = shards.next().expect("one shard per detached submit");
                        metrics.on_placed_to(shard);
                        metrics.on_acked(1, admitted_at.elapsed().as_micros() as u64);
                        send_to_conn(
                            &registry,
                            conn,
                            Response::Ack {
                                req_id: *req_id,
                                shard,
                            },
                            &metrics,
                        );
                    }
                    Work::Batch {
                        req_id,
                        txs,
                        admitted_at,
                        ..
                    } => {
                        let batch_shards: Vec<u32> = (&mut shards).take(txs.len()).collect();
                        assert_eq!(
                            batch_shards.len(),
                            txs.len(),
                            "one shard per detached batch submit"
                        );
                        for &shard in &batch_shards {
                            metrics.on_placed_to(shard);
                        }
                        metrics
                            .on_acked(txs.len() as u64, admitted_at.elapsed().as_micros() as u64);
                        send_to_conn(
                            &registry,
                            conn,
                            Response::AckBatch {
                                req_id: *req_id,
                                shards: batch_shards,
                            },
                            &metrics,
                        );
                    }
                    Work::Query { .. } => unreachable!("queries are answered in phase 1"),
                }
            }
            assert!(
                shards.next().is_none(),
                "drained more results than submitted this round"
            );
        }

        // Drop FleetHandles for connections that have deregistered so
        // churn doesn't accumulate them. Safe at this point: a
        // connection cannot deregister while it has queued work (the
        // reader holds its credits until the acks are written), every
        // submission this round was drained above, conn ids are never
        // reused, and detached results live worker-side keyed by conn
        // id — so a handle can always be recreated if ever needed.
        if !handles.is_empty() {
            let registry = registry.lock().expect("registry mutex");
            handles.retain(|conn, _| registry.contains_key(conn));
        }

        if placed_total > polled_at && last_poll.elapsed() >= FLEET_POLL_INTERVAL {
            poll_fleet_stats(&fleet, &metrics);
            polled_at = placed_total;
            last_poll = Instant::now();
        }
    }
}

/// How often the dispatcher refreshes the fleet-counter snapshot in
/// the metrics (each refresh is a blocking worker round trip).
const FLEET_POLL_INTERVAL: Duration = Duration::from_millis(100);

/// One fleet-counter snapshot into the shared metrics.
fn poll_fleet_stats(fleet: &RouterFleet, metrics: &ServerMetrics) {
    let stats = fleet.stats();
    metrics.record_fleet(stats.placed, stats.cross_placed, stats.rebalance);
}

/// Paces the dispatcher to `rate` placements per second (no-op when
/// uncapped): sleeps until the virtual schedule catches up.
fn pace(rate: Option<u64>, started: Instant, placed_total: u64) {
    if let Some(rate) = rate {
        let target = Duration::from_secs_f64(placed_total as f64 / rate as f64);
        let elapsed = started.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
    }
}

fn send_to_conn(registry: &Registry, conn: u64, response: Response, metrics: &ServerMetrics) {
    let outbox = registry
        .lock()
        .expect("registry mutex")
        .get(&conn)
        .map(|e| e.outbox.clone());
    let is_ack = matches!(response, Response::Ack { .. } | Response::AckBatch { .. });
    match outbox {
        Some(outbox) => {
            if outbox.send(Outgoing::Credited(response)).is_err() && is_ack {
                metrics.on_ack_to_closed_conn();
            }
        }
        None => {
            if is_ack {
                metrics.on_ack_to_closed_conn();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// A running placement node: a TCP server fronting a [`RouterFleet`]
/// with bounded fee-ordered admission, per-connection credit
/// backpressure, explicit overload shedding, a `/metrics`-style text
/// endpoint, and graceful drain-then-shutdown. See the
/// [crate docs](crate) for the design.
pub struct PlacementServer {
    local_addr: SocketAddr,
    admission: Arc<Admission>,
    registry: Registry,
    metrics: Arc<ServerMetrics>,
    stop_accept: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl PlacementServer {
    /// Starts configuring a server.
    pub fn builder() -> PlacementServerBuilder {
        PlacementServerBuilder::new()
    }

    /// The bound listen address (resolves the ephemeral port when the
    /// builder bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live server counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Renders the `/metrics` text exposition (the same body the wire
    /// protocol's `Metrics` request returns).
    pub fn metrics_text(&self) -> String {
        let (depth, capacity) = {
            let s = self.admission.state.lock().expect("admission mutex");
            (s.queue.depth(), s.queue.capacity())
        };
        self.metrics.render(depth, capacity)
    }

    /// Transactions currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.admission
            .state
            .lock()
            .expect("admission mutex")
            .queue
            .depth()
    }

    /// Begins a graceful drain without blocking: new submissions are
    /// shed with [`RejectReason::Shutdown`] from this point on, while
    /// everything already admitted continues to place and ack. Call
    /// [`PlacementServer::shutdown`] to finish.
    pub fn begin_shutdown(&self) {
        self.stop_accept.store(true, Ordering::Relaxed);
        let mut s = self.admission.state.lock().expect("admission mutex");
        s.draining = true;
        drop(s);
        self.admission.cv.notify_all();
    }

    /// Gracefully drains and shuts the node down: stops accepting,
    /// sheds new work with [`RejectReason::Shutdown`], places and acks
    /// **everything already admitted** (zero lost acks), shuts the
    /// fleet down — flushing every worker's WAL tail under
    /// `.storage(...)` — and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.begin_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The dispatcher drains the admission queue, acks everything
        // admitted, then shuts the fleet down (WAL tails flushed).
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        // Unblock readers parked on their sockets; they deregister
        // themselves, which lets the writers drain and exit.
        let handles: Vec<TcpStream> = {
            let registry = self.registry.lock().expect("registry mutex");
            registry
                .values()
                .filter_map(|e| e.shutdown_handle.try_clone().ok())
                .collect()
        };
        for handle in handles {
            let _ = handle.shutdown(Shutdown::Read);
        }
        loop {
            let thread = self.conn_threads.lock().expect("threads mutex").pop();
            match thread {
                Some(thread) => {
                    let _ = thread.join();
                }
                None => break,
            }
        }
    }
}

impl std::fmt::Debug for PlacementServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Drop for PlacementServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
