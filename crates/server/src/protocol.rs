//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is one **frame**: a 4-byte little-endian payload
//! length, then the payload — one opcode byte followed by the
//! fixed-layout little-endian body. The length prefix never includes
//! itself, and a frame larger than the connection's advertised
//! `max_frame_bytes` is rejected before the payload is read
//! ([`RejectReason::TooLarge`]).
//!
//! Decoding is **total**: any byte sequence decodes to either a typed
//! message or a typed [`DecodeError`] — never a panic, and (because
//! the length prefix bounds every read) never a hang on trailing
//! garbage. `protocol_fuzz.rs` drives the decoder with random and
//! mutated frames to pin this.
//!
//! The protocol is deliberately request/response over one ordered
//! stream: the server replies to every request exactly once (ack,
//! batch ack, rejection, query result, or metrics text), in the order
//! it finished them — which is admission-queue order, not necessarily
//! request order. Clients correlate by `req_id`.

use std::io::{self, Read, Write};

use optchain_utxo::TxId;

/// Default cap on a frame's payload size (1 MiB). At 8 bytes per
/// input id this admits batches of ~100k inputs — far beyond what a
/// sane client sends, small enough that a hostile length prefix
/// cannot balloon server memory.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 1 << 20;

/// Absolute ceiling on `max_frame_bytes` (64 MiB): the decoder
/// allocates up to one frame, so the cap must stay allocation-sane
/// even when a builder raises the default.
pub const MAX_FRAME_BYTES_CEILING: u32 = 64 << 20;

const OP_SUBMIT: u8 = 0x01;
const OP_SUBMIT_BATCH: u8 = 0x02;
const OP_QUERY: u8 = 0x03;
const OP_METRICS: u8 = 0x04;

const OP_HELLO: u8 = 0x80;
const OP_ACK: u8 = 0x81;
const OP_ACK_BATCH: u8 = 0x82;
const OP_REJECT: u8 = 0x83;
const OP_QUERY_RESULT: u8 = 0x84;
const OP_METRICS_TEXT: u8 = 0x85;

/// Why the server refused a request. Shedding is always **explicit**:
/// every refused request gets exactly one `Reject` carrying one of
/// these — never a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RejectReason {
    /// The admission queue is at capacity; resubmit later (mempool
    /// overload shedding).
    QueueFull = 1,
    /// The frame exceeded the connection's `max_frame_bytes`. The
    /// server closes the connection after sending this — the
    /// oversized payload is unread, so the stream cannot be resynced.
    TooLarge = 2,
    /// The server is draining for shutdown; already-admitted requests
    /// are still served, new ones are refused.
    Shutdown = 3,
    /// The frame decoded to garbage (unknown opcode, truncated body,
    /// trailing bytes). The server closes the connection after
    /// sending this.
    Malformed = 4,
    /// A transaction id in the request was already admitted within
    /// the server's dedup window (duplicate submission).
    Duplicate = 5,
}

impl RejectReason {
    /// The wire byte → reason, if valid.
    pub fn from_u8(byte: u8) -> Option<RejectReason> {
        match byte {
            1 => Some(RejectReason::QueueFull),
            2 => Some(RejectReason::TooLarge),
            3 => Some(RejectReason::Shutdown),
            4 => Some(RejectReason::Malformed),
            5 => Some(RejectReason::Duplicate),
            _ => None,
        }
    }

    /// Stable lowercase label (metrics exposition, error messages).
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TooLarge => "too_large",
            RejectReason::Shutdown => "shutdown",
            RejectReason::Malformed => "malformed",
            RejectReason::Duplicate => "duplicate",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One transaction inside a submit request: its id and the distinct
/// ids of the transactions it spends from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTx {
    /// The transaction id being placed.
    pub txid: TxId,
    /// Parent transaction ids (the TaN edges), first-appearance order.
    pub inputs: Vec<TxId>,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Place one transaction.
    Submit {
        /// Client-chosen correlation id.
        req_id: u64,
        /// Admission priority (higher is served first).
        fee: u64,
        /// The transaction to place.
        tx: WireTx,
    },
    /// Place a batch of transactions as one admission unit: admitted
    /// or rejected atomically, answered by one [`Response::AckBatch`]
    /// (or one [`Response::Reject`] covering the whole batch).
    SubmitBatch {
        /// Client-chosen correlation id for the whole batch.
        req_id: u64,
        /// Admission priority of the batch.
        fee: u64,
        /// The transactions, placed in order.
        txs: Vec<WireTx>,
    },
    /// Look up the shard of a previously placed transaction.
    Query {
        /// Client-chosen correlation id.
        req_id: u64,
        /// The transaction id to look up.
        txid: TxId,
    },
    /// Fetch the text metrics exposition (`/metrics`-style).
    Metrics {
        /// Client-chosen correlation id.
        req_id: u64,
    },
}

impl Request {
    /// The correlation id the response will carry.
    pub fn req_id(&self) -> u64 {
        match self {
            Request::Submit { req_id, .. }
            | Request::SubmitBatch { req_id, .. }
            | Request::Query { req_id, .. }
            | Request::Metrics { req_id } => *req_id,
        }
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Sent once, immediately after accept: the connection's flow
    /// control and sizing contract.
    Hello {
        /// How many requests may be in flight (sent but unanswered) on
        /// this connection. The server enforces it by pausing reads —
        /// a client exceeding the window stalls in TCP, it is not
        /// disconnected.
        credit_window: u32,
        /// Largest accepted frame payload, in bytes.
        max_frame_bytes: u32,
        /// Number of shards the fleet places over.
        shards: u32,
    },
    /// A single submit was placed.
    Ack {
        /// Correlation id of the submit.
        req_id: u64,
        /// The shard the transaction was placed into.
        shard: u32,
    },
    /// A batch was placed; `shards[i]` answers `txs[i]`.
    AckBatch {
        /// Correlation id of the batch.
        req_id: u64,
        /// Per-transaction shard assignments, in batch order.
        shards: Vec<u32>,
    },
    /// A request was refused, with the reason.
    Reject {
        /// Correlation id of the refused request (0 when the request
        /// could not be parsed far enough to learn it).
        req_id: u64,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// Answer to a [`Request::Query`].
    QueryResult {
        /// Correlation id of the query.
        req_id: u64,
        /// The shard, or `None` if the id is unknown (never placed, or
        /// aged out under the retention policy).
        shard: Option<u32>,
    },
    /// Answer to a [`Request::Metrics`].
    MetricsText {
        /// Correlation id of the request.
        req_id: u64,
        /// The exposition body.
        text: String,
    },
}

/// Why a payload failed to decode. Every variant is a protocol error
/// the server answers with [`RejectReason::Malformed`] (or
/// [`RejectReason::TooLarge`] for [`DecodeError::FrameTooLarge`])
/// before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload was empty or ended inside a fixed-layout field.
    Truncated,
    /// The first payload byte is not a known opcode.
    UnknownOpcode(u8),
    /// Bytes remained after a complete message — the frame length and
    /// the message body disagree.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A count field promises more elements than the remaining payload
    /// can hold (a hostile count that would balloon an allocation).
    CountOverflow {
        /// The promised element count.
        count: u64,
    },
    /// A declared frame length exceeds the connection's cap.
    FrameTooLarge {
        /// The declared payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// A reject frame carried an unknown reason byte.
    UnknownReason(u8),
    /// A metrics body was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            DecodeError::CountOverflow { count } => {
                write!(f, "count field {count} exceeds the remaining payload")
            }
            DecodeError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            DecodeError::UnknownReason(b) => write!(f, "unknown reject reason {b}"),
            DecodeError::BadUtf8 => write!(f, "metrics text is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Little-endian cursor helpers
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos.checked_add(4).ok_or(DecodeError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let end = self.pos.checked_add(8).ok_or(DecodeError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Validates that `count` elements of `elem_bytes` each can still
    /// fit in the remaining payload before any allocation happens.
    fn check_count(&self, count: u32, elem_bytes: usize) -> Result<usize, DecodeError> {
        let need = (count as u64).saturating_mul(elem_bytes as u64);
        if need > self.remaining() as u64 {
            return Err(DecodeError::CountOverflow {
                count: count as u64,
            });
        }
        Ok(count as usize)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn decode_wire_tx(c: &mut Cursor<'_>) -> Result<WireTx, DecodeError> {
    let txid = TxId(c.u64()?);
    let n = c.u32()?;
    let n = c.check_count(n, 8)?;
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        inputs.push(TxId(c.u64()?));
    }
    Ok(WireTx { txid, inputs })
}

fn encode_wire_tx(out: &mut Vec<u8>, tx: &WireTx) {
    put_u64(out, tx.txid.0);
    put_u32(out, tx.inputs.len() as u32);
    for input in &tx.inputs {
        put_u64(out, input.0);
    }
}

// ---------------------------------------------------------------------------
// Payload encode/decode
// ---------------------------------------------------------------------------

/// Encodes a request payload (no length prefix) into `out`, cleared
/// first.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    out.clear();
    match req {
        Request::Submit { req_id, fee, tx } => {
            out.push(OP_SUBMIT);
            put_u64(out, *req_id);
            put_u64(out, *fee);
            encode_wire_tx(out, tx);
        }
        Request::SubmitBatch { req_id, fee, txs } => {
            out.push(OP_SUBMIT_BATCH);
            put_u64(out, *req_id);
            put_u64(out, *fee);
            put_u32(out, txs.len() as u32);
            for tx in txs {
                encode_wire_tx(out, tx);
            }
        }
        Request::Query { req_id, txid } => {
            out.push(OP_QUERY);
            put_u64(out, *req_id);
            put_u64(out, txid.0);
        }
        Request::Metrics { req_id } => {
            out.push(OP_METRICS);
            put_u64(out, *req_id);
        }
    }
}

/// Decodes a request payload. Total: every input yields a request or a
/// typed error.
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        OP_SUBMIT => {
            let req_id = c.u64()?;
            let fee = c.u64()?;
            let tx = decode_wire_tx(&mut c)?;
            Request::Submit { req_id, fee, tx }
        }
        OP_SUBMIT_BATCH => {
            let req_id = c.u64()?;
            let fee = c.u64()?;
            let count = c.u32()?;
            // A wire tx is at least 12 bytes (txid + input count).
            let count = c.check_count(count, 12)?;
            let mut txs = Vec::with_capacity(count);
            for _ in 0..count {
                txs.push(decode_wire_tx(&mut c)?);
            }
            Request::SubmitBatch { req_id, fee, txs }
        }
        OP_QUERY => {
            let req_id = c.u64()?;
            let txid = TxId(c.u64()?);
            Request::Query { req_id, txid }
        }
        OP_METRICS => {
            let req_id = c.u64()?;
            Request::Metrics { req_id }
        }
        op => return Err(DecodeError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a response payload (no length prefix) into `out`, cleared
/// first.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    out.clear();
    match resp {
        Response::Hello {
            credit_window,
            max_frame_bytes,
            shards,
        } => {
            out.push(OP_HELLO);
            put_u32(out, *credit_window);
            put_u32(out, *max_frame_bytes);
            put_u32(out, *shards);
        }
        Response::Ack { req_id, shard } => {
            out.push(OP_ACK);
            put_u64(out, *req_id);
            put_u32(out, *shard);
        }
        Response::AckBatch { req_id, shards } => {
            out.push(OP_ACK_BATCH);
            put_u64(out, *req_id);
            put_u32(out, shards.len() as u32);
            for shard in shards {
                put_u32(out, *shard);
            }
        }
        Response::Reject { req_id, reason } => {
            out.push(OP_REJECT);
            put_u64(out, *req_id);
            out.push(*reason as u8);
        }
        Response::QueryResult { req_id, shard } => {
            out.push(OP_QUERY_RESULT);
            put_u64(out, *req_id);
            out.push(shard.is_some() as u8);
            put_u32(out, shard.unwrap_or(0));
        }
        Response::MetricsText { req_id, text } => {
            out.push(OP_METRICS_TEXT);
            put_u64(out, *req_id);
            put_u32(out, text.len() as u32);
            out.extend_from_slice(text.as_bytes());
        }
    }
}

/// Decodes a response payload. Total, like [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        OP_HELLO => Response::Hello {
            credit_window: c.u32()?,
            max_frame_bytes: c.u32()?,
            shards: c.u32()?,
        },
        OP_ACK => Response::Ack {
            req_id: c.u64()?,
            shard: c.u32()?,
        },
        OP_ACK_BATCH => {
            let req_id = c.u64()?;
            let count = c.u32()?;
            let count = c.check_count(count, 4)?;
            let mut shards = Vec::with_capacity(count);
            for _ in 0..count {
                shards.push(c.u32()?);
            }
            Response::AckBatch { req_id, shards }
        }
        OP_REJECT => {
            let req_id = c.u64()?;
            let byte = c.u8()?;
            let reason = RejectReason::from_u8(byte).ok_or(DecodeError::UnknownReason(byte))?;
            Response::Reject { req_id, reason }
        }
        OP_QUERY_RESULT => {
            let req_id = c.u64()?;
            let found = c.u8()? != 0;
            let shard = c.u32()?;
            Response::QueryResult {
                req_id,
                shard: found.then_some(shard),
            }
        }
        OP_METRICS_TEXT => {
            let req_id = c.u64()?;
            let len = c.u32()?;
            let len = c.check_count(len, 1)?;
            let start = c.pos;
            let bytes = &c.buf[start..start + len];
            c.pos += len;
            Response::MetricsText {
                req_id,
                text: std::str::from_utf8(bytes)
                    .map_err(|_| DecodeError::BadUtf8)?
                    .to_string(),
            }
        }
        op => return Err(DecodeError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// The outcome of reading one frame off a stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload landed in the caller's buffer.
    Payload,
    /// The peer closed the stream cleanly at a frame boundary.
    Eof,
    /// The declared length exceeds `max_bytes`; the payload was **not**
    /// read (the stream is no longer framable).
    TooLarge {
        /// The declared payload length.
        len: u32,
    },
}

/// Reads one length-prefixed frame into `buf` (cleared first).
///
/// A clean EOF *before any length byte* is [`FrameRead::Eof`]; EOF
/// inside the prefix or the payload is an [`io::ErrorKind::UnexpectedEof`]
/// error — a truncated frame, which the caller treats as a broken peer.
pub fn read_frame(r: &mut impl Read, max_bytes: u32, buf: &mut Vec<u8>) -> io::Result<FrameRead> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(FrameRead::Eof);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(prefix);
    if len > max_bytes {
        return Ok(FrameRead::TooLarge { len });
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(FrameRead::Payload)
}

/// Writes `payload` as one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Submit {
                req_id: 7,
                fee: 42,
                tx: WireTx {
                    txid: TxId(9),
                    inputs: vec![TxId(1), TxId(2)],
                },
            },
            Request::SubmitBatch {
                req_id: 8,
                fee: 0,
                txs: vec![
                    WireTx {
                        txid: TxId(10),
                        inputs: vec![],
                    },
                    WireTx {
                        txid: TxId(11),
                        inputs: vec![TxId(10)],
                    },
                ],
            },
            Request::Query {
                req_id: 9,
                txid: TxId(3),
            },
            Request::Metrics { req_id: 10 },
        ];
        let mut buf = Vec::new();
        for req in &reqs {
            encode_request(req, &mut buf);
            assert_eq!(decode_request(&buf).unwrap(), *req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Hello {
                credit_window: 64,
                max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
                shards: 16,
            },
            Response::Ack {
                req_id: 1,
                shard: 3,
            },
            Response::AckBatch {
                req_id: 2,
                shards: vec![0, 1, 2],
            },
            Response::Reject {
                req_id: 3,
                reason: RejectReason::QueueFull,
            },
            Response::QueryResult {
                req_id: 4,
                shard: Some(5),
            },
            Response::QueryResult {
                req_id: 5,
                shard: None,
            },
            Response::MetricsText {
                req_id: 6,
                text: "optchain_admitted_total 3\n".to_string(),
            },
        ];
        let mut buf = Vec::new();
        for resp in &resps {
            encode_response(resp, &mut buf);
            assert_eq!(decode_response(&buf).unwrap(), *resp);
        }
    }

    #[test]
    fn hostile_count_is_rejected_without_allocation() {
        // A batch count of u32::MAX with a near-empty payload must be
        // caught by the pre-allocation bound check.
        let mut buf = vec![OP_SUBMIT_BATCH];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        match decode_request(&buf) {
            Err(DecodeError::CountOverflow { count }) => assert_eq!(count, u32::MAX as u64),
            other => panic!("expected CountOverflow, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut buf = Vec::new();
        encode_request(&Request::Metrics { req_id: 1 }, &mut buf);
        buf.push(0xFF);
        assert_eq!(
            decode_request(&buf),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn frame_roundtrip_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, 1024, &mut buf).unwrap(),
            FrameRead::Payload
        ));
        assert_eq!(buf, b"hello");
        assert!(matches!(
            read_frame(&mut r, 1024, &mut buf).unwrap(),
            FrameRead::Payload
        ));
        assert!(buf.is_empty());
        assert!(matches!(
            read_frame(&mut r, 1024, &mut buf).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversized_frame_is_reported_not_read() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &wire[..];
        let mut buf = Vec::new();
        match read_frame(&mut r, 1024, &mut buf).unwrap() {
            FrameRead::TooLarge { len } => assert_eq!(len, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_unexpected_eof() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_le_bytes());
        wire.extend_from_slice(b"abc"); // 3 of 10 promised bytes
        let mut r = &wire[..];
        let mut buf = Vec::new();
        let err = read_frame(&mut r, 1024, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
