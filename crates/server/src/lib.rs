//! optchain-server: a network-facing placement node.
//!
//! This crate turns the in-process [`RouterFleet`] placement engine
//! into a TCP service with the failure modes a shared node needs to
//! have *on purpose*:
//!
//! * **Admission control** — a bounded, fee-ordered mempool-style
//!   queue ([`AdmissionQueue`]) between the wire and the fleet.
//!   Capacity is counted in transactions, so the queue bounds both
//!   memory and the placement backlog behind every admitted request.
//! * **Backpressure** — a per-connection credit window: a client may
//!   have at most `credit_window` requests in flight; beyond that the
//!   server simply stops reading its socket, pushing the pressure
//!   into TCP where the kernel meters it. No unbounded buffers.
//! * **Overload shedding** — when the queue is full, new work is
//!   rejected immediately with a typed reason
//!   ([`RejectReason::QueueFull`]); during drain, with
//!   [`RejectReason::Shutdown`]. Every request receives exactly one
//!   response; nothing is silently dropped.
//! * **Observability** — a `/metrics`-style text exposition
//!   ([`ServerMetrics::render`]) with queue depth, admitted/shed
//!   counters, and admission→ack latency quantiles.
//! * **Graceful shutdown** — [`PlacementServer::shutdown`] drains the
//!   admission queue (everything admitted is placed and acked), then
//!   shuts the fleet down, flushing WAL tails when the fleet was
//!   built with `.storage(...)`.
//!
//! The wire format ([`protocol`]) is a 4-byte length-prefixed binary
//! framing with fixed little-endian encodings — decodable with
//! nothing but a stream of bytes, and *total*: any byte sequence
//! decodes to either a message or a typed [`protocol::DecodeError`],
//! never a panic.
//!
//! ```no_run
//! use optchain_core::RouterFleet;
//! use optchain_server::PlacementServer;
//!
//! let server = PlacementServer::builder()
//!     .fleet(RouterFleet::builder().shards(8).workers(4))
//!     .bind("127.0.0.1:0")
//!     .queue_capacity(16_384)
//!     .credit_window(256)
//!     .start()
//!     .expect("bind");
//! println!("placement node on {}", server.local_addr());
//! // ... serve ...
//! server.shutdown(); // drain, ack everything admitted, flush WALs
//! ```
//!
//! The matching blocking client lives in the `optchain-client` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod protocol;
pub mod queue;
mod server;

pub use metrics::ServerMetrics;
pub use protocol::{DecodeError, RejectReason, Request, Response, WireTx};
pub use queue::{AdmissionQueue, Admitted, QueueFull};
pub use server::{
    PlacementServer, PlacementServerBuilder, DEFAULT_CREDIT_WINDOW, DEFAULT_QUEUE_CAPACITY,
};

// Re-exported so downstream code (client, loadgen) can name the fleet
// types without an extra direct dependency.
pub use optchain_core::{RouterFleet, RouterFleetBuilder};
