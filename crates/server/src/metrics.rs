//! Server-side counters and latency summaries, exposed as a
//! `/metrics`-style text exposition over the wire protocol's
//! `Metrics` request.
//!
//! Counters are lock-free atomics bumped on the admission and ack
//! paths; the latency histogram (microseconds from admission to ack,
//! an [`optchain_metrics::Histogram`]) sits behind a mutex touched
//! once per ack — diagnostics cost, not hot-path cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use optchain_core::RebalanceStats;
use optchain_metrics::Histogram;

use crate::protocol::RejectReason;

/// Placement-engine counters mirrored from the fleet by the
/// dispatcher's throttled stats poll (a worker round-trip, so sampled
/// every few thousand placements rather than per ack).
#[derive(Debug, Default, Clone, Copy)]
struct FleetSnapshot {
    /// Transactions the fleet has placed.
    placed: u64,
    /// Placements whose inputs resolved to another shard.
    cross_placed: u64,
    /// Rebalancer counters (all zero without a rebalancer).
    rebalance: RebalanceStats,
}

/// Aggregate server counters. All methods are `&self`; the struct is
/// shared via `Arc` between the acceptor, readers, and the dispatcher.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Transactions admitted into the queue (batch counts its length).
    admitted: AtomicU64,
    /// Transactions placed and acknowledged.
    acked: AtomicU64,
    /// Requests shed, by reason (indexed by `RejectReason as u8 - 1`).
    shed: [AtomicU64; 5],
    /// Connections accepted over the server's lifetime.
    connections_opened: AtomicU64,
    /// Connections torn down.
    connections_closed: AtomicU64,
    /// Acks that found their connection already gone (the client
    /// disconnected between admission and placement — the placement
    /// still happened and is queryable, only the notification had no
    /// reader).
    acks_to_closed_conns: AtomicU64,
    /// Admission→ack latency of acknowledged transactions, in
    /// microseconds.
    latency_usec: Mutex<Histogram>,
    /// Acks per shard (index = shard id); sized once at server start.
    per_shard_acked: OnceLock<Vec<AtomicU64>>,
    /// Last fleet stats poll (see [`FleetSnapshot`]).
    fleet: Mutex<FleetSnapshot>,
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn on_admitted(&self, txs: u64) {
        self.admitted.fetch_add(txs, Ordering::Relaxed);
    }

    pub(crate) fn on_acked(&self, txs: u64, latency_usec: u64) {
        self.acked.fetch_add(txs, Ordering::Relaxed);
        self.latency_usec
            .lock()
            .expect("metrics mutex")
            .record(latency_usec);
    }

    pub(crate) fn on_shed(&self, reason: RejectReason, requests: u64) {
        self.shed[reason as usize - 1].fetch_add(requests, Ordering::Relaxed);
    }

    pub(crate) fn on_connection_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_ack_to_closed_conn(&self) {
        self.acks_to_closed_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// Sizes the per-shard ack counters. Called once by the server
    /// before the dispatcher starts; later calls are no-ops.
    pub(crate) fn init_shards(&self, k: u32) {
        let _ = self
            .per_shard_acked
            .set((0..k).map(|_| AtomicU64::new(0)).collect());
    }

    pub(crate) fn on_placed_to(&self, shard: u32) {
        if let Some(counters) = self.per_shard_acked.get() {
            if let Some(counter) = counters.get(shard as usize) {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn record_fleet(&self, placed: u64, cross_placed: u64, rebalance: RebalanceStats) {
        *self.fleet.lock().expect("metrics mutex") = FleetSnapshot {
            placed,
            cross_placed,
            rebalance,
        };
    }

    /// Transactions admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Transactions placed and acknowledged so far.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Relaxed)
    }

    /// Requests shed with the given reason so far.
    pub fn shed(&self, reason: RejectReason) -> u64 {
        self.shed[reason as usize - 1].load(Ordering::Relaxed)
    }

    /// Requests shed across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Admission→ack latency quantile in microseconds (`None` before
    /// the first ack).
    pub fn latency_usec_quantile(&self, q: f64) -> Option<u64> {
        self.latency_usec.lock().expect("metrics mutex").quantile(q)
    }

    /// Acked placements per shard (empty before the server sizes the
    /// counters).
    pub fn per_shard_acked(&self) -> Vec<u64> {
        self.per_shard_acked
            .get()
            .map(|counters| counters.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            .unwrap_or_default()
    }

    /// Cross-shard placements, from the last fleet stats poll.
    pub fn cross_placed(&self) -> u64 {
        self.fleet.lock().expect("metrics mutex").cross_placed
    }

    /// Cross-shard fraction of placed transactions, from the last
    /// fleet stats poll (`0` before any placement).
    pub fn cross_ratio(&self) -> f64 {
        let snap = *self.fleet.lock().expect("metrics mutex");
        if snap.placed == 0 {
            0.0
        } else {
            snap.cross_placed as f64 / snap.placed as f64
        }
    }

    /// Rebalancer counters from the last fleet stats poll (all zero
    /// without a rebalancer).
    pub fn rebalance_stats(&self) -> RebalanceStats {
        self.fleet.lock().expect("metrics mutex").rebalance
    }

    /// Renders the text exposition. `queue_depth` and `queue_capacity`
    /// are gauges owned by the admission queue, passed in by the
    /// server.
    pub fn render(&self, queue_depth: usize, queue_capacity: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "optchain_queue_depth {queue_depth}");
        let _ = writeln!(out, "optchain_queue_capacity {queue_capacity}");
        let _ = writeln!(out, "optchain_admitted_total {}", self.admitted());
        let _ = writeln!(out, "optchain_acked_total {}", self.acked());
        for reason in [
            RejectReason::QueueFull,
            RejectReason::TooLarge,
            RejectReason::Shutdown,
            RejectReason::Malformed,
            RejectReason::Duplicate,
        ] {
            let _ = writeln!(
                out,
                "optchain_shed_total{{reason=\"{}\"}} {}",
                reason.label(),
                self.shed(reason)
            );
        }
        let _ = writeln!(
            out,
            "optchain_connections_opened_total {}",
            self.connections_opened.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "optchain_connections_closed_total {}",
            self.connections_closed.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "optchain_acks_to_closed_conns_total {}",
            self.acks_to_closed_conns.load(Ordering::Relaxed)
        );
        for (shard, acked) in self.per_shard_acked().iter().enumerate() {
            let _ = writeln!(
                out,
                "optchain_shard_acked_total{{shard=\"{shard}\"}} {acked}"
            );
        }
        let snap = *self.fleet.lock().expect("metrics mutex");
        let cross_ratio = if snap.placed == 0 {
            0.0
        } else {
            snap.cross_placed as f64 / snap.placed as f64
        };
        let _ = writeln!(out, "optchain_cross_placed_total {}", snap.cross_placed);
        let _ = writeln!(out, "optchain_cross_ratio {cross_ratio:.6}");
        let _ = writeln!(
            out,
            "optchain_rebalance_epochs_committed_total {}",
            snap.rebalance.epochs_committed
        );
        let _ = writeln!(
            out,
            "optchain_rebalance_nodes_moved_total {}",
            snap.rebalance.nodes_moved
        );
        let _ = writeln!(
            out,
            "optchain_rebalance_bytes_migrated_total {}",
            snap.rebalance.bytes_migrated
        );
        let hist = self.latency_usec.lock().expect("metrics mutex");
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("1.0", 1.0)] {
            let _ = writeln!(
                out,
                "optchain_latency_usec{{quantile=\"{label}\"}} {}",
                hist.quantile(q).unwrap_or(0)
            );
        }
        let _ = writeln!(out, "optchain_latency_samples_total {}", hist.total());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_rendering() {
        let m = ServerMetrics::new();
        m.init_shards(2);
        m.on_admitted(10);
        m.on_acked(10, 250);
        for _ in 0..7 {
            m.on_placed_to(0);
        }
        for _ in 0..3 {
            m.on_placed_to(1);
        }
        m.record_fleet(
            10,
            4,
            RebalanceStats {
                epochs_opened: 2,
                epochs_committed: 1,
                nodes_moved: 5,
                bytes_migrated: 640,
                moves_dropped: 0,
            },
        );
        m.on_shed(RejectReason::QueueFull, 3);
        m.on_shed(RejectReason::Shutdown, 1);
        m.on_connection_opened();
        assert_eq!(m.admitted(), 10);
        assert_eq!(m.acked(), 10);
        assert_eq!(m.shed(RejectReason::QueueFull), 3);
        assert_eq!(m.shed_total(), 4);
        assert_eq!(m.latency_usec_quantile(0.5), Some(250));
        let text = m.render(7, 64);
        assert!(text.contains("optchain_queue_depth 7"));
        assert!(text.contains("optchain_queue_capacity 64"));
        assert!(text.contains("optchain_admitted_total 10"));
        assert!(text.contains("optchain_shed_total{reason=\"queue_full\"} 3"));
        assert!(text.contains("optchain_latency_usec{quantile=\"0.99\"} 250"));
        assert_eq!(m.per_shard_acked(), vec![7, 3]);
        assert!(text.contains("optchain_shard_acked_total{shard=\"0\"} 7"));
        assert!(text.contains("optchain_shard_acked_total{shard=\"1\"} 3"));
        assert!(text.contains("optchain_cross_placed_total 4"));
        assert!(text.contains("optchain_cross_ratio 0.400000"));
        assert!(text.contains("optchain_rebalance_epochs_committed_total 1"));
        assert!(text.contains("optchain_rebalance_nodes_moved_total 5"));
        assert!(text.contains("optchain_rebalance_bytes_migrated_total 640"));
        assert!((m.cross_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(m.rebalance_stats().nodes_moved, 5);
    }

    #[test]
    fn uninitialized_shards_render_no_shard_lines_but_zero_gauges() {
        let m = ServerMetrics::new();
        let text = m.render(0, 8);
        assert!(!text.contains("optchain_shard_acked_total"));
        assert!(text.contains("optchain_cross_placed_total 0"));
        assert!(text.contains("optchain_cross_ratio 0.000000"));
        assert!(text.contains("optchain_rebalance_epochs_committed_total 0"));
    }
}
