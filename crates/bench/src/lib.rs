//! Experiment harness for the OptChain reproduction.
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p optchain-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table I — % cross-TXs from scratch |
//! | `table2` | Table II — cross-TXs from a warm-started system |
//! | `fig2`   | Fig 2 — TaN degree statistics |
//! | `fig3`   | Fig 3 — latency/throughput grids per strategy |
//! | `fig4`   | Fig 4 — throughput vs rate and best-config grid |
//! | `fig5`   | Fig 5 — committed transactions per window |
//! | `fig6`   | Fig 6 — max/min queue sizes over time |
//! | `fig7`   | Fig 7 — queue size ratio over time |
//! | `fig8`   | Fig 8 — average confirmation latency |
//! | `fig9`   | Fig 9 — maximum confirmation latency |
//! | `fig10`  | Fig 10 — latency CDF at 6000 tps / 16 shards |
//! | `fig11`  | Fig 11 — OptChain max sustainable rate vs shards |
//! | `ablation_alpha` | α sweep for the T2S damping factor |
//! | `ablation_weight` | L2S weight sweep around the paper's 0.01 |
//! | `ablation_l2s` | self-convolution vs verify+commit L2S |
//! | `ablation_telemetry` | quantized vs raw telemetry fidelity |
//! | `ablation_window` | T2S memory window (SPV pruning) |
//! | `ext_rapidchain` | OmniLedger lock vs RapidChain yank protocol |
//!
//! Every binary accepts `--txs N`, `--seed N` and `--full` (paper-scale
//! stream lengths); see [`Opts`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;

use optchain_sim::{SimConfig, SimMetrics, Simulation, Strategy};
use optchain_utxo::Transaction;
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Stream length for replay-style experiments.
    pub txs: u64,
    /// Stream length for DES runs (smaller: each transaction costs
    /// several simulated messages).
    pub sim_txs: u64,
    /// Simulated injection horizon for rate-driven figures, seconds: a
    /// cell at rate `r` receives `r × horizon` transactions so queueing
    /// dynamics have time to develop.
    pub horizon_s: f64,
    /// Workload seed.
    pub seed: u64,
    /// Paper-scale mode.
    pub full: bool,
}

impl Opts {
    /// Parses `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut opts = Opts {
            txs: 200_000,
            sim_txs: 60_000,
            horizon_s: 60.0,
            seed: 0xB17C04,
            full: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--txs" => {
                    opts.txs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--txs needs a number"));
                    opts.sim_txs = opts.txs;
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--full" => {
                    opts.full = true;
                    opts.txs = 2_000_000;
                    opts.sim_txs = 400_000;
                    opts.horizon_s = 300.0;
                }
                "--horizon" => {
                    opts.horizon_s = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--horizon needs seconds"));
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [--txs N] [--seed N] [--horizon S] [--full]");
    std::process::exit(2)
}

/// Generates the shared Bitcoin-like stream every strategy is compared
/// on (identical streams per the paper's methodology).
pub fn shared_workload(n: u64, seed: u64) -> Vec<Transaction> {
    WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(seed))
        .take(n as usize)
        .collect()
}

/// A paper-configured [`SimConfig`] scaled to `total_txs` at `tx_rate`,
/// with the commit window scaled so runs produce ~20 windows.
pub fn sim_config(n_shards: u32, tx_rate: f64, total_txs: u64, seed: u64) -> SimConfig {
    let mut config = SimConfig::paper();
    config.n_shards = n_shards;
    config.tx_rate = tx_rate;
    config.total_txs = total_txs;
    config.workload_seed = seed;
    config.seed = derive_seed(seed, n_shards, tx_rate);
    // Aim for ~20 commit windows and ~100 queue samples per run.
    let horizon = total_txs as f64 / tx_rate;
    config.commit_window_s = (horizon / 20.0).max(1.0);
    config.queue_sample_s = (horizon / 100.0).max(0.5);
    config
}

/// Stream length for a rate-driven simulation cell: `rate × horizon`,
/// clamped to keep single runs laptop-sized.
pub fn cell_txs(rate: f64, opts: &Opts) -> u64 {
    ((rate * opts.horizon_s) as u64).clamp(20_000, 3_000_000)
}

/// Runs one `(shards, rate, strategy)` cell on a shared stream.
///
/// # Panics
///
/// Panics if the simulation rejects the configuration — experiment
/// binaries construct only valid configs.
pub fn run_cell(
    shards: u32,
    rate: f64,
    strategy: Strategy,
    txs: &[Transaction],
    seed: u64,
) -> SimMetrics {
    let config = sim_config(shards, rate, txs.len() as u64, seed);
    Simulation::run_on(config, strategy, txs).expect("experiment config is valid")
}

/// Maps `run` over `jobs` across the configured worker count
/// (work-stealing via a shared cursor), preserving input order in the
/// output. This is the generic fan-out primitive behind
/// [`parallel_runs`] and [`run_grid`]; the registry `rayon` crate is
/// unavailable offline, so the pool is built on `std::thread::scope`.
/// The pool size defaults to all CPUs and is pinned with the
/// `OPTCHAIN_THREADS` environment variable
/// ([`optchain_core::configured_threads`] — shared with
/// [`optchain_core::RouterFleet`]'s default worker count).
pub fn par_map<J, R, F>(jobs: &[J], run: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Send + Sync,
{
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = optchain_core::configured_threads().min(jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let m = run(&jobs[i]);
                results
                    .lock()
                    .expect("no panics hold the lock")
                    .push((i, m));
            });
        }
    });
    let mut results = results.into_inner().expect("threads joined");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, m)| m).collect()
}

/// Runs `jobs` across all CPUs, preserving input order in the output.
pub fn parallel_runs<J, R, F>(jobs: Vec<J>, run: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Send + Sync,
{
    par_map(&jobs, run)
}

/// One cell of an experiment grid: a strategy at `(shards, rate)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Placement strategy driven in this cell.
    pub strategy: Strategy,
    /// Number of shards.
    pub shards: u32,
    /// Offered transaction rate (tps).
    pub rate: f64,
}

impl RunSpec {
    /// Builds a cell.
    pub fn new(strategy: Strategy, shards: u32, rate: f64) -> Self {
        RunSpec {
            strategy,
            shards,
            rate,
        }
    }
}

/// Deterministic per-cell simulation seed: mixes the base seed with the
/// cell's coordinates, so a run's RNG stream depends only on *what* the
/// cell is — never on scheduling order, worker count, or how many other
/// cells a grid contains. The strategy is deliberately **not** mixed in:
/// strategies compared at the same `(shards, rate)` must share network
/// and consensus randomness, as the paper's methodology requires.
/// [`sim_config`] applies this to every experiment config, so the same
/// cell produces the same numbers in every figure binary.
pub fn derive_seed(base: u64, shards: u32, rate: f64) -> u64 {
    use optchain_tan::hash::splitmix64;
    let mut s = splitmix64(base);
    s = splitmix64(s ^ shards as u64);
    s = splitmix64(s ^ rate.to_bits());
    s
}

/// Fans a grid of `(strategy × shards × rate)` cells out across all
/// cores against one shared stream, with deterministic per-cell RNG
/// seeding ([`derive_seed`], via [`sim_config`]). Results match `specs`'
/// order.
///
/// # Panics
///
/// Panics if a cell's configuration is invalid or the stream is shorter
/// than the cell requires — experiment binaries construct valid grids.
pub fn run_grid(specs: &[RunSpec], txs: &[Transaction], base_seed: u64) -> Vec<SimMetrics> {
    par_map(specs, |spec| {
        let config = sim_config(spec.shards, spec.rate, txs.len() as u64, base_seed);
        Simulation::run_on(config, spec.strategy, txs).expect("experiment config is valid")
    })
}

/// Formats a count with thousands separators for table cells.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Percentage with two decimals, e.g. `9.28 %`.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.2} %", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
    }

    #[test]
    fn fmt_pct_matches_paper_style() {
        assert_eq!(fmt_pct(0.0928), "9.28 %");
    }

    #[test]
    fn sim_config_scales_windows() {
        let c = sim_config(8, 2_000.0, 40_000, 1);
        assert_eq!(c.n_shards, 8);
        assert!((c.commit_window_s - 1.0).abs() < 1e-9);
        assert!(c.queue_sample_s > 0.0);
    }

    #[test]
    fn derive_seed_depends_only_on_cell_coordinates() {
        assert_eq!(derive_seed(1, 8, 4_000.0), derive_seed(1, 8, 4_000.0));
        assert_ne!(derive_seed(1, 8, 4_000.0), derive_seed(2, 8, 4_000.0));
        assert_ne!(derive_seed(1, 8, 4_000.0), derive_seed(1, 16, 4_000.0));
        assert_ne!(derive_seed(1, 8, 4_000.0), derive_seed(1, 8, 6_000.0));
    }

    #[test]
    fn sim_config_seeds_cells_consistently_across_callers() {
        // The same (shards, rate) cell must carry the same consensus seed
        // no matter which figure binary builds it.
        let a = sim_config(8, 2_000.0, 10_000, 42);
        let b = sim_config(8, 2_000.0, 50_000, 42);
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, sim_config(16, 2_000.0, 10_000, 42).seed);
    }

    #[test]
    fn run_grid_is_deterministic_and_ordered() {
        let txs = shared_workload(3_000, 7);
        let specs = [
            RunSpec::new(Strategy::OmniLedger, 2, 800.0),
            RunSpec::new(Strategy::OmniLedger, 4, 800.0),
        ];
        let a = run_grid(&specs, &txs, 7);
        let b = run_grid(&specs, &txs, 7);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].per_shard_committed.len(), 2);
        assert_eq!(a[1].per_shard_committed.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.committed, y.committed);
            assert!((x.makespan_s - y.makespan_s).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_runs_preserves_order() {
        let txs = shared_workload(2_000, 7);
        let jobs: Vec<u32> = vec![2, 4];
        let results = parallel_runs(jobs, |k| {
            let mut config = optchain_sim::SimConfig::small();
            config.total_txs = 2_000;
            config.n_shards = *k;
            Simulation::run_on(config, Strategy::OmniLedger, &txs).unwrap()
        });
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].per_shard_committed.len(), 2);
        assert_eq!(results[1].per_shard_committed.len(), 4);
    }
}
