//! Fig 7 — ratio between the maximum and minimum shard queue size over
//! time at 6000 tps / 16 shards.
//!
//! Paper shape: Metis and Greedy show enormous ratios (starved shards);
//! OptChain and OmniLedger stay near 1.

use optchain_bench::{cell_txs, parallel_runs, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let n = cell_txs(6_000.0, &opts);
    let txs = shared_workload(n, opts.seed);
    let config = sim_config(16, 6_000.0, n, opts.seed);
    println!("Fig 7: max/min queue-size ratio over time at 6000 tps / 16 shards\n");
    let results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
        Simulation::run_on(config.clone(), *strategy, &txs).expect("valid config")
    });
    let bins = results
        .iter()
        .map(|m| m.queue_ratio.bins().len())
        .max()
        .unwrap_or(0);
    let mut table = Table::new(["t (s)", "OptChain", "OmniLedger", "Metis", "Greedy"]);
    for b in 0..bins {
        let t = b as f64 * config.queue_sample_s;
        let mut cells = vec![format!("{t:.0}")];
        let mut any = false;
        for m in &results {
            match m.queue_ratio.bins().get(b) {
                Some(bin) if !bin.is_empty() => {
                    any = true;
                    cells.push(format!("{:.1}", bin.max));
                }
                _ => cells.push(String::from("-")),
            }
        }
        if any {
            table.row(cells);
        }
    }
    println!("{table}");
    for m in &results {
        // The instantaneous ratio spikes whenever some queue drains to
        // zero between blocks, so summarize with the median (persistent
        // imbalance) alongside the worst spike.
        let mut means: Vec<f64> = m
            .queue_ratio
            .bins()
            .iter()
            .filter(|b| !b.is_empty())
            .map(|b| b.mean())
            .collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let median = means.get(means.len() / 2).copied().unwrap_or(1.0);
        let worst = means.last().copied().unwrap_or(1.0);
        println!(
            "{:<12} median ratio {:>8.1}   worst window {:>9.1}",
            m.strategy, median, worst
        );
    }
}
