//! Table II — number of cross-TXs placing a fresh window of transactions
//! after the system warm-started from a Metis partition.
//!
//! The paper partitions the first 30M transactions with Metis, then
//! places the next 1M with each online strategy and counts cross-TXs:
//!
//! ```text
//! k   Greedy    OmniLedger  T2S-based
//! 4   335,269   837,356     112,657
//! 8   407,747   922,073     172,978
//! 16  441,267   960,935     226,171
//! 32  449,032   979,323     282,108
//! 64  454,321   988,144     366,854
//! ```
//!
//! Here the prefix:delta ratio (30:1) is preserved at reduced scale, and
//! the warm start is expressed through [`Router::warm_start`] restoring a
//! [`RouterSnapshot`] of the Metis-partitioned prefix.

use optchain_bench::{fmt_count, shared_workload, Opts};
use optchain_core::replay::replay_router;
use optchain_core::{Router, RouterSnapshot, Strategy};
use optchain_metrics::Table;
use optchain_partition::{partition_kway, CsrGraph};
use optchain_tan::TanGraph;

fn main() {
    let opts = Opts::parse();
    // Preserve the paper's 30:1 prefix-to-delta ratio.
    let delta_n = (opts.txs / 8).max(10_000);
    let prefix_n = opts.txs;
    let txs = shared_workload(prefix_n + delta_n, opts.seed);
    let (prefix, delta) = txs.split_at(prefix_n as usize);
    println!(
        "Table II: cross-TXs placing {} new txs after a Metis-partitioned prefix of {}\n",
        fmt_count(delta_n),
        fmt_count(prefix_n),
    );

    let prefix_tan = TanGraph::from_transactions(prefix.iter());
    let csr = CsrGraph::from_tan(&prefix_tan);

    let mut table = Table::new(["k", "Greedy", "OmniLedger", "T2S-based", "OptChain"]);
    for k in [4u32, 8, 16, 32, 64] {
        let warm = partition_kway(&csr, k, 0.1, opts.seed);
        let snapshot = RouterSnapshot::new(prefix_tan.clone(), warm);

        let run = |strategy: Strategy| {
            let mut router = Router::builder()
                .shards(k)
                .strategy(strategy)
                .expected_total(prefix_n + delta_n)
                .build();
            router.warm_start(&snapshot);
            replay_router(delta, &mut router)
        };
        table.row([
            k.to_string(),
            fmt_count(run(Strategy::Greedy).cross),
            fmt_count(run(Strategy::OmniLedger).cross),
            fmt_count(run(Strategy::T2s).cross),
            fmt_count(run(Strategy::OptChain).cross),
        ]);
    }
    println!("{table}");
    println!("(OptChain column added beyond the paper: Table II only lists T2S-based.)");
}
