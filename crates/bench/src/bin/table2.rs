//! Table II — number of cross-TXs placing a fresh window of transactions
//! after the system warm-started from a Metis partition.
//!
//! The paper partitions the first 30M transactions with Metis, then
//! places the next 1M with each online strategy and counts cross-TXs:
//!
//! ```text
//! k   Greedy    OmniLedger  T2S-based
//! 4   335,269   837,356     112,657
//! 8   407,747   922,073     172,978
//! 16  441,267   960,935     226,171
//! 32  449,032   979,323     282,108
//! 64  454,321   988,144     366,854
//! ```
//!
//! Here the prefix:delta ratio (30:1) is preserved at reduced scale.

use optchain_bench::{fmt_count, shared_workload, Opts};
use optchain_core::replay::replay_into;
use optchain_core::{GreedyPlacer, OptChainPlacer, RandomPlacer, T2sEngine, T2sPlacer};
use optchain_metrics::Table;
use optchain_partition::{partition_kway, CsrGraph};
use optchain_tan::TanGraph;

fn main() {
    let opts = Opts::parse();
    // Preserve the paper's 30:1 prefix-to-delta ratio.
    let delta_n = (opts.txs / 8).max(10_000);
    let prefix_n = opts.txs;
    let txs = shared_workload(prefix_n + delta_n, opts.seed);
    let (prefix, delta) = txs.split_at(prefix_n as usize);
    println!(
        "Table II: cross-TXs placing {} new txs after a Metis-partitioned prefix of {}\n",
        fmt_count(delta_n),
        fmt_count(prefix_n),
    );

    let prefix_tan = TanGraph::from_transactions(prefix.iter());
    let csr = CsrGraph::from_tan(&prefix_tan);

    let mut table = Table::new(["k", "Greedy", "OmniLedger", "T2S-based", "OptChain"]);
    for k in [4u32, 8, 16, 32, 64] {
        let warm = partition_kway(&csr, k, 0.1, opts.seed);

        // Greedy warm start: seed its shard sizes via a fresh placer over
        // the prefix assignment (its state is only sizes + assignments).
        let run_greedy = {
            let mut tan = TanGraph::from_transactions(prefix.iter());
            let mut placer = GreedyPlacer::with_epsilon(k, 0.1, Some(prefix_n + delta_n));
            // Feed the oracle prefix through the greedy state.
            for node in tan.nodes() {
                placer.adopt(warm[node.index()]);
            }
            replay_into(delta, &mut placer, &mut tan)
        };
        let run_random = {
            let mut tan = TanGraph::from_transactions(prefix.iter());
            let mut placer = RandomPlacer::new(k);
            for node in tan.nodes() {
                placer.adopt(warm[node.index()]);
            }
            replay_into(delta, &mut placer, &mut tan)
        };
        let run_t2s = {
            let mut tan = TanGraph::from_transactions(prefix.iter());
            let mut placer =
                T2sPlacer::with_engine(T2sEngine::new(k), 0.1, Some(prefix_n + delta_n));
            placer.warm_start(&tan, &warm);
            replay_into(delta, &mut placer, &mut tan)
        };
        let run_opt = {
            let mut tan = TanGraph::from_transactions(prefix.iter());
            let mut placer = OptChainPlacer::new(k);
            placer.warm_start(&tan, &warm);
            replay_into(delta, &mut placer, &mut tan)
        };
        table.row([
            k.to_string(),
            fmt_count(run_greedy.cross),
            fmt_count(run_random.cross),
            fmt_count(run_t2s.cross),
            fmt_count(run_opt.cross),
        ]);
    }
    println!("{table}");
    println!("(OptChain column added beyond the paper: Table II only lists T2S-based.)");
}
