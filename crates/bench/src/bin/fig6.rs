//! Fig 6 — maximum and minimum shard queue sizes over time at 6000 tps /
//! 16 shards, one panel per strategy.
//!
//! Paper shape: Metis starves some shards while others hold ~507k txs;
//! Greedy leaves shards idle at moments (peak 230k); OmniLedger's queues
//! grow without bound at this rate (peak 499k); OptChain stays balanced
//! with a worst-case queue near 44k.

use optchain_bench::{cell_txs, parallel_runs, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let n = cell_txs(6_000.0, &opts);
    let txs = shared_workload(n, opts.seed);
    let config = sim_config(16, 6_000.0, n, opts.seed);
    println!(
        "Fig 6: max/min shard queue sizes over time at 6000 tps / 16 shards (sample every {:.1}s)\n",
        config.queue_sample_s,
    );
    let results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
        Simulation::run_on(config.clone(), *strategy, &txs).expect("valid config")
    });
    for m in &results {
        println!("── {} ──", m.strategy);
        let mut table = Table::new(["t (s)", "max queue", "min queue"]);
        let bins = m.queue_max.bins();
        for (i, bin) in bins.iter().enumerate() {
            if bin.is_empty() {
                continue;
            }
            let min_bin = &m.queue_min.bins()[i];
            table.row([
                format!("{:.0}", bin.start),
                format!("{:.0}", bin.max),
                format!("{:.0}", min_bin.min),
            ]);
        }
        println!("{table}");
        println!("peak queue: {}\n", optchain_bench::fmt_count(m.peak_queue));
    }
}
