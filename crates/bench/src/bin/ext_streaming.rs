//! Extension — streaming graph-partitioning baselines (Section II of the
//! paper cites Stanton & Kliot and Abbas et al.): Linear Deterministic
//! Greedy and Fennel vs the paper's strategies, on cross-TXs and balance.

use optchain_bench::{fmt_pct, shared_workload, Opts};
use optchain_core::replay::replay;
use optchain_core::{
    FennelPlacer, GreedyPlacer, LdgPlacer, OptChainPlacer, RandomPlacer, T2sEngine, T2sPlacer,
};
use optchain_metrics::Table;

fn main() {
    let opts = Opts::parse();
    let txs = shared_workload(opts.txs, opts.seed);
    let n = txs.len() as u64;
    println!(
        "Extension: streaming-partitioning baselines ({} txs)\n",
        optchain_bench::fmt_count(n)
    );
    for k in [4u32, 16] {
        println!("── k = {k} ──");
        let mut table = Table::new(["strategy", "cross-TXs", "size ratio"]);
        let mut row = |name: &str, outcome: optchain_core::replay::ReplayOutcome| {
            table.row([
                name.to_string(),
                fmt_pct(outcome.cross_fraction()),
                format!("{:.2}", outcome.size_ratio()),
            ]);
        };
        row("OptChain", replay(&txs, &mut OptChainPlacer::new(k)));
        row(
            "T2S-based",
            replay(
                &txs,
                &mut T2sPlacer::with_engine(T2sEngine::new(k), 0.1, Some(n)),
            ),
        );
        row(
            "Greedy",
            replay(&txs, &mut GreedyPlacer::with_epsilon(k, 0.1, Some(n))),
        );
        row("LDG", replay(&txs, &mut LdgPlacer::new(k, n)));
        row("Fennel", replay(&txs, &mut FennelPlacer::new(k, n)));
        row("OmniLedger", replay(&txs, &mut RandomPlacer::new(k)));
        println!("{table}");
    }
    println!(
        "(LDG/Fennel minimize crossing edges under balance — the objective the \
         paper argues is not quite the right one for sharding)"
    );
}
