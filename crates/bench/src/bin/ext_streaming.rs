//! Extension — streaming graph-partitioning baselines (Section II of the
//! paper cites Stanton & Kliot and Abbas et al.): Linear Deterministic
//! Greedy and Fennel vs the paper's strategies, on cross-TXs and balance.

use optchain_bench::{fmt_pct, shared_workload, Opts};
use optchain_core::replay::replay_router;
use optchain_core::{FennelPlacer, LdgPlacer, Router, Strategy};
use optchain_metrics::Table;

fn main() {
    let opts = Opts::parse();
    let txs = shared_workload(opts.txs, opts.seed);
    let n = txs.len() as u64;
    println!(
        "Extension: streaming-partitioning baselines ({} txs)\n",
        optchain_bench::fmt_count(n)
    );
    for k in [4u32, 16] {
        println!("── k = {k} ──");
        let mut table = Table::new(["strategy", "cross-TXs", "size ratio"]);
        let mut row = |name: &str, outcome: optchain_core::replay::ReplayOutcome| {
            table.row([
                name.to_string(),
                fmt_pct(outcome.cross_fraction()),
                format!("{:.2}", outcome.size_ratio()),
            ]);
        };
        // Built-in strategies run through the Router by name; the
        // streaming baselines ride along as custom placers — one
        // replay loop for all of them (`replay_router` is bit-identical
        // to the old concrete-placer `replay`, per `router_golden.rs`).
        let built_in = |strategy: Strategy| {
            Router::builder()
                .shards(k)
                .strategy(strategy)
                .expected_total(n)
                .build()
        };
        row(
            "OptChain",
            replay_router(&txs, &mut built_in(Strategy::OptChain)),
        );
        row(
            "T2S-based",
            replay_router(&txs, &mut built_in(Strategy::T2s)),
        );
        row(
            "Greedy",
            replay_router(&txs, &mut built_in(Strategy::Greedy)),
        );
        row(
            "LDG",
            replay_router(
                &txs,
                &mut Router::builder()
                    .custom(Box::new(LdgPlacer::new(k, n)))
                    .build(),
            ),
        );
        row(
            "Fennel",
            replay_router(
                &txs,
                &mut Router::builder()
                    .custom(Box::new(FennelPlacer::new(k, n)))
                    .build(),
            ),
        );
        row(
            "OmniLedger",
            replay_router(&txs, &mut built_in(Strategy::OmniLedger)),
        );
        println!("{table}");
    }
    println!(
        "(LDG/Fennel minimize crossing edges under balance — the objective the \
         paper argues is not quite the right one for sharding)"
    );
}
