//! Fig 2 — TaN network statistics.
//!
//! Paper (298M-node Bitcoin TaN): power-law degree distribution with
//! average in/out degree ≈ 2.3; 93.1% of in-degrees below 3; 97.6% of
//! out-degrees below 10 (86.3% below 3); average degree stable over time
//! except the bootstrap period and the 2015 spam-attack bump.

use optchain_bench::{fmt_count, Opts};
use optchain_metrics::Table;
use optchain_tan::stats::{windowed_average_degree, TanStats};
use optchain_tan::TanGraph;
use optchain_workload::{SpamEpisode, WorkloadConfig, WorkloadGenerator};

fn main() {
    let opts = Opts::parse();
    let n = opts.txs as usize;
    // Recreate Fig 2c's shape: a spam episode at 60% of the stream.
    let config = WorkloadConfig::bitcoin_like()
        .with_seed(opts.seed)
        .with_spam(SpamEpisode {
            start: n * 6 / 10,
            len: n / 50,
            sweep_inputs: 40,
            sweep_probability: 0.5,
        });
    let txs: Vec<_> = WorkloadGenerator::new(config).take(n).collect();
    let tan = TanGraph::from_transactions(txs.iter());
    let stats = TanStats::compute(&tan);

    println!(
        "Fig 2: TaN statistics over {} synthetic txs ({} edges)\n",
        fmt_count(stats.node_count as u64),
        fmt_count(stats.edge_count),
    );
    println!(
        "average degree            {:.2}   (paper: 2.3)",
        stats.average_degree
    );
    println!(
        "in-degree  < 3            {:.1} % (paper: 93.1 %)",
        100.0 * stats.in_degree_fraction_below(3)
    );
    println!(
        "out-degree < 3            {:.1} % (paper: 86.3 %)",
        100.0 * stats.out_degree_fraction_below(3)
    );
    println!(
        "out-degree < 10           {:.1} % (paper: 97.6 %)",
        100.0 * stats.out_degree_fraction_below(10)
    );
    println!(
        "coinbase txs              {}",
        fmt_count(stats.coinbase_count as u64)
    );
    println!(
        "unspent-frontier txs      {}",
        fmt_count(stats.unspent_count as u64)
    );
    println!(
        "isolated txs              {}",
        fmt_count(stats.isolated_count as u64)
    );
    if let Some(slope) = stats.in_degree.power_law_slope() {
        println!("in-degree log-log slope   {slope:.2} (power-law exponent)");
    }

    // Fig 2a: the degree distribution (log-log), bucketed for terminals.
    println!("\nFig 2a: degree distribution (count of nodes per degree)");
    let mut dist = Table::new(["degree", "in-degree nodes", "out-degree nodes"]);
    for d in [0u64, 1, 2, 3, 5, 10, 20, 50, 100] {
        dist.row([
            d.to_string(),
            fmt_count(stats.in_degree.count_of(d)),
            fmt_count(stats.out_degree.count_of(d)),
        ]);
    }
    println!("{dist}");

    // Fig 2b: cumulative distribution.
    println!("Fig 2b: cumulative fraction of nodes below degree");
    let mut cum = Table::new(["degree", "in-degree", "out-degree"]);
    for d in [1u64, 2, 3, 5, 10, 20, 50] {
        cum.row([
            d.to_string(),
            format!("{:.4}", stats.in_degree.cumulative_fraction_below(d)),
            format!("{:.4}", stats.out_degree.cumulative_fraction_below(d)),
        ]);
    }
    println!("{cum}");

    // Fig 2c: average degree over (stream) time, windowed so the spam
    // bump is visible.
    println!(
        "Fig 2c: average degree per window of {} txs",
        fmt_count((n / 20) as u64)
    );
    let mut series = Table::new(["after tx", "window avg degree"]);
    for (at, avg) in windowed_average_degree(&tan, n / 20) {
        series.row([fmt_count(at as u64), format!("{avg:.2}")]);
    }
    println!("{series}");
    println!(
        "(the bump near {} is the injected spam episode)",
        fmt_count((n * 6 / 10) as u64)
    );
}
