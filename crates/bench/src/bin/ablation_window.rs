//! Ablation — T2S memory window: the paper deploys OptChain in wallets
//! via SPV ("users do not need to download the complete transaction
//! history"). This sweep bounds the T2S engine's retained state and
//! measures the placement-quality cost.

use optchain_bench::{fmt_pct, shared_workload, Opts};
use optchain_core::replay::replay_router;
use optchain_core::{Router, Strategy};
use optchain_metrics::Table;

fn main() {
    let opts = Opts::parse();
    let txs = shared_workload(opts.txs, opts.seed);
    let n = txs.len() as u64;
    println!(
        "Ablation: T2S retained-ancestor window at 16 shards ({} txs)\n",
        optchain_bench::fmt_count(n)
    );
    let mut table = Table::new(["window (txs)", "cross-TXs", "state (MB, k=16)"]);
    for window in [1_000usize, 10_000, 100_000, usize::MAX] {
        let mut builder = Router::builder()
            .shards(16)
            .strategy(Strategy::T2s)
            .expected_total(n);
        if window != usize::MAX {
            builder = builder.window(window);
        }
        let outcome = replay_router(&txs, &mut builder.build());
        let state_mb = if window == usize::MAX {
            n as f64 * 16.0 * 4.0 / 1e6
        } else {
            window as f64 * 16.0 * 4.0 / 1e6
        };
        table.row([
            if window == usize::MAX {
                "unbounded".to_string()
            } else {
                window.to_string()
            },
            fmt_pct(outcome.cross_fraction()),
            format!("{state_mb:.1}"),
        ]);
    }
    println!("{table}");
}
