//! Extension — leader failures: how placement strategies cope when shard
//! leaders crash and view changes stall consensus (a failure mode the
//! paper's BFT committees face in practice but its evaluation does not
//! exercise).

use optchain_bench::{shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let n = optchain_bench::cell_txs(4_000.0, &opts);
    let txs = shared_workload(n, opts.seed);
    println!("Extension: leader failures at 4000 tps / 16 shards\n");
    let mut table = Table::new([
        "failure rate",
        "placement",
        "mean latency (s)",
        "max latency (s)",
        "steady tput (tps)",
    ]);
    for rate in [0.0, 0.02, 0.10] {
        for strategy in [Strategy::OptChain, Strategy::OmniLedger] {
            let mut config = sim_config(16, 4_000.0, n, opts.seed);
            config.leader_failure_rate = rate;
            let mut m = Simulation::run_on(config, strategy, &txs).expect("valid config");
            table.row([
                format!("{:.0} %", rate * 100.0),
                strategy.label().to_string(),
                format!("{:.1}", m.mean_latency()),
                format!("{:.1}", m.max_latency()),
                format!("{:.0}", m.steady_throughput()),
            ]);
        }
    }
    println!("{table}");
    println!(
        "(view changes cost 5 s + a consensus re-run; OptChain's advantage \
         persists because same-shard txs touch fewer committees)"
    );
}
