//! Table I — percentage of cross-TXs when running from scratch.
//!
//! Paper values (first 10M Bitcoin txs):
//!
//! ```text
//! k   Metis    Greedy   OmniLedger  T2S-based
//! 4   1.66 %   24.62 %  80.82 %     9.28 %
//! 8   3.09 %   27.02 %  90.33 %     12.52 %
//! 16  4.70 %   28.14 %  94.87 %     15.73 %
//! 32  6.91 %   28.69 %  97.09 %     18.94 %
//! 64  9.91 %   28.97 %  98.18 %     21.65 %
//! ```

use optchain_bench::{fmt_pct, shared_workload, Opts};
use optchain_core::replay::replay;
use optchain_core::{
    GreedyPlacer, OptChainPlacer, OraclePlacer, RandomPlacer, T2sEngine, T2sPlacer,
};
use optchain_metrics::Table;
use optchain_partition::{partition_kway, CsrGraph};
use optchain_tan::TanGraph;

fn main() {
    let opts = Opts::parse();
    let txs = shared_workload(opts.txs, opts.seed);
    let n = txs.len() as u64;
    println!(
        "Table I: % cross-TXs from scratch ({} synthetic txs, seed {:#x})\n",
        optchain_bench::fmt_count(n),
        opts.seed
    );
    let tan = TanGraph::from_transactions(txs.iter());
    let csr = CsrGraph::from_tan(&tan);

    let mut table = Table::new([
        "k",
        "Metis",
        "Greedy",
        "OmniLedger",
        "T2S-based",
        "OptChain",
    ]);
    for k in [4u32, 8, 16, 32, 64] {
        let metis_assign = partition_kway(&csr, k, 0.1, opts.seed);
        let metis = replay(&txs, &mut OraclePlacer::new(k, metis_assign));
        let greedy = replay(&txs, &mut GreedyPlacer::with_epsilon(k, 0.1, Some(n)));
        let random = replay(&txs, &mut RandomPlacer::new(k));
        let t2s = replay(
            &txs,
            &mut T2sPlacer::with_engine(T2sEngine::new(k), 0.1, Some(n)),
        );
        let optchain = replay(&txs, &mut OptChainPlacer::new(k));
        table.row([
            k.to_string(),
            fmt_pct(metis.cross_fraction()),
            fmt_pct(greedy.cross_fraction()),
            fmt_pct(random.cross_fraction()),
            fmt_pct(t2s.cross_fraction()),
            fmt_pct(optchain.cross_fraction()),
        ]);
    }
    println!("{table}");
    println!("(OptChain column added beyond the paper: Table I only lists T2S-based.)");
}
