//! Table I — percentage of cross-TXs when running from scratch.
//!
//! Paper values (first 10M Bitcoin txs):
//!
//! ```text
//! k   Metis    Greedy   OmniLedger  T2S-based
//! 4   1.66 %   24.62 %  80.82 %     9.28 %
//! 8   3.09 %   27.02 %  90.33 %     12.52 %
//! 16  4.70 %   28.14 %  94.87 %     15.73 %
//! 32  6.91 %   28.69 %  97.09 %     18.94 %
//! 64  9.91 %   28.97 %  98.18 %     21.65 %
//! ```
//!
//! Every strategy is driven through the session-based
//! [`optchain_core::Router`]; the OptChain column additionally reports
//! its L2S memo hit rate (reachable through the router surface).

use optchain_bench::{fmt_pct, shared_workload, Opts};
use optchain_core::replay::replay_router;
use optchain_core::{Router, Strategy};
use optchain_metrics::Table;
use optchain_partition::{partition_kway, CsrGraph};
use optchain_tan::TanGraph;

fn main() {
    let opts = Opts::parse();
    let txs = shared_workload(opts.txs, opts.seed);
    let n = txs.len() as u64;
    println!(
        "Table I: % cross-TXs from scratch ({} synthetic txs, seed {:#x})\n",
        optchain_bench::fmt_count(n),
        opts.seed
    );
    let tan = TanGraph::from_transactions(txs.iter());
    let csr = CsrGraph::from_tan(&tan);

    let router_for = |strategy: Strategy, k: u32| {
        let mut builder = Router::builder()
            .shards(k)
            .strategy(strategy)
            .expected_total(n);
        if strategy == Strategy::Metis {
            builder = builder.oracle(partition_kway(&csr, k, 0.1, opts.seed));
        }
        builder.build()
    };

    let mut table = Table::new([
        "k",
        "Metis",
        "Greedy",
        "OmniLedger",
        "T2S-based",
        "OptChain",
    ]);
    let mut memo_lines = Vec::new();
    for k in [4u32, 8, 16, 32, 64] {
        let metis = replay_router(&txs, &mut router_for(Strategy::Metis, k));
        let greedy = replay_router(&txs, &mut router_for(Strategy::Greedy, k));
        let random = replay_router(&txs, &mut router_for(Strategy::OmniLedger, k));
        let t2s = replay_router(&txs, &mut router_for(Strategy::T2s, k));
        let mut opt_router = router_for(Strategy::OptChain, k);
        let optchain = replay_router(&txs, &mut opt_router);
        let (hits, misses) = opt_router.l2s_memo_stats();
        memo_lines.push(format!(
            "  k={k:<2}  {hits} hits / {misses} misses ({:.1} % hit rate)",
            100.0 * hits as f64 / (hits + misses).max(1) as f64
        ));
        table.row([
            k.to_string(),
            fmt_pct(metis.cross_fraction()),
            fmt_pct(greedy.cross_fraction()),
            fmt_pct(random.cross_fraction()),
            fmt_pct(t2s.cross_fraction()),
            fmt_pct(optchain.cross_fraction()),
        ]);
    }
    println!("{table}");
    println!("(OptChain column added beyond the paper: Table I only lists T2S-based.)");
    println!("\nOptChain session L2S memo:");
    for line in memo_lines {
        println!("{line}");
    }
}
