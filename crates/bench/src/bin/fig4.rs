//! Fig 4 — system throughput.
//!
//! (a) throughput of every strategy vs transaction rate at 16 shards;
//! (b) maximum throughput at the per-rate best (rate, #shards) pairs.
//!
//! Paper shape: at 16 shards OptChain tracks the offered rate through
//! 6000 tps; OmniLedger flattens around 3000; Metis never tracks; at the
//! best configs OptChain's maximum is ~34%/31%/17% above
//! OmniLedger/Metis/Greedy.

use optchain_bench::{cell_txs, parallel_runs, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let rates = [2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0];

    println!(
        "Fig 4a: steady throughput (tps) at 16 shards vs transaction rate ({:.0}s of injected load per cell)\n",
        opts.horizon_s,
    );
    let mut table = Table::new(["rate", "OptChain", "OmniLedger", "Metis", "Greedy"]);
    for &rate in &rates {
        let n = cell_txs(rate, &opts);
        let txs = shared_workload(n, opts.seed);
        let results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
            let config = sim_config(16, rate, n, opts.seed);
            Simulation::run_on(config, *strategy, &txs).expect("valid config")
        });
        table.row(
            std::iter::once(format!("{rate:.0}")).chain(
                results
                    .iter()
                    .map(|m| format!("{:.0}", m.steady_throughput())),
            ),
        );
    }
    println!("{table}");

    // Fig 4b: the per-rate configurations the paper highlights (rate,
    // #shards) = (2000,6), (3000,8), (4000,10), (5000,14), (6000,16).
    println!("Fig 4b: max throughput at the paper's (rate, #shards) pairs");
    let pairs = [
        (2_000.0, 6u32),
        (3_000.0, 8),
        (4_000.0, 10),
        (5_000.0, 14),
        (6_000.0, 16),
    ];
    let mut best = Table::new([
        "rate",
        "shards",
        "OptChain",
        "OmniLedger",
        "Metis",
        "Greedy",
    ]);
    for &(rate, k) in &pairs {
        let n = cell_txs(rate, &opts);
        let txs = shared_workload(n, opts.seed);
        let results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
            let config = sim_config(k, rate, n, opts.seed);
            Simulation::run_on(config, *strategy, &txs).expect("valid config")
        });
        best.row(
            [format!("{rate:.0}"), k.to_string()].into_iter().chain(
                results
                    .iter()
                    .map(|m| format!("{:.0}", m.steady_throughput())),
            ),
        );
    }
    println!("{best}");
}
