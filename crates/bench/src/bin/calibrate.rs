use optchain_sim::{SimConfig, Simulation, Strategy};

fn main() {
    let mut args = std::env::args().skip(1);
    let total: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let mut config = SimConfig::paper();
    config.total_txs = total;
    let txs = Simulation::workload(&config);
    for shards in [4u32, 16] {
        for rate in [2000.0, 4000.0, 6000.0] {
            for strat in [Strategy::OptChain, Strategy::OmniLedger] {
                let mut c = config.clone();
                c.n_shards = shards;
                c.tx_rate = rate;
                let t0 = std::time::Instant::now();
                let mut m = Simulation::run_on(c, strat, &txs).unwrap();
                println!("k={shards:2} rate={rate:5} {:10}: tput={:7.0} meanlat={:7.2}s maxlat={:7.1}s cross={:4.1}% backlog={:6} peakq={:6} ({:.1?})",
                    strat.label(), m.throughput(), m.mean_latency(), m.max_latency(),
                    100.0*m.cross_fraction(), m.backlog, m.peak_queue, t0.elapsed());
            }
        }
    }
}
