//! Dynamic re-sharding tradeoff curve: drives one hot-spot workload
//! through the full discrete-event simulation under static OptChain
//! placement and under the same placement with the [`Rebalancer`]
//! enabled at a sweep of per-epoch migration byte budgets, then records
//! the cost/benefit curve — migration bytes spent vs. cross-shard ratio
//! and max-shard utilization recovered — to `BENCH_rebalance.json`.
//!
//! Gates (exit 1 on failure): the default-budget rebalanced arm must
//! beat the static arm on **both** cross-tx ratio and max-shard
//! utilization, every arm's migrated bytes must respect its per-epoch
//! budget, and the gated arm must be bit-deterministic across two runs.
//!
//! ```sh
//! cargo run --release -p optchain-bench --bin rebalance_curve -- \
//!     [--txs N] [--k K] [--seed S] [--out PATH] [--smoke]
//! ```
//!
//! [`Rebalancer`]: optchain_core::RebalancePolicy

use std::fmt::Write as _;

use optchain_core::{RebalancePolicy, Router};
use optchain_sim::{SimConfig, SimMetrics, Simulation};
use optchain_utxo::Transaction;
use optchain_workload::{HotSpotConfig, WorkloadConfig, WorkloadGenerator};

struct Args {
    txs: u64,
    k: u32,
    seed: u64,
    out: String,
    /// Hub wallets in the hot-spot.
    hubs: u32,
    /// Probability a post-warmup transaction is hub traffic.
    p_hot: f64,
    /// Migration epoch length, in submissions.
    epoch_interval: u64,
    /// Offered client load, transactions per second.
    rate: f64,
    /// CI-scale run: fewer transactions, a single-budget sweep.
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        txs: 20_000,
        k: 4,
        seed: 0xB17C04,
        out: "BENCH_rebalance.json".to_string(),
        hubs: 2,
        p_hot: 0.7,
        epoch_interval: 500,
        rate: 1_500.0,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--txs" => args.txs = next("--txs").parse().expect("--txs: number"),
            "--k" => args.k = next("--k").parse().expect("--k: number"),
            "--seed" => args.seed = next("--seed").parse().expect("--seed: number"),
            "--out" => args.out = next("--out"),
            "--hubs" => args.hubs = next("--hubs").parse().expect("--hubs: number"),
            "--p-hot" => args.p_hot = next("--p-hot").parse().expect("--p-hot: number"),
            "--epoch-interval" => {
                args.epoch_interval = next("--epoch-interval")
                    .parse()
                    .expect("--epoch-interval: number")
            }
            "--rate" => args.rate = next("--rate").parse().expect("--rate: number"),
            "--smoke" => args.smoke = true,
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!(
                    "usage: rebalance_curve [--txs N] [--k K] [--seed S] [--out PATH] \
                     [--hubs N] [--p-hot X] [--epoch-interval N] [--smoke]"
                );
                std::process::exit(2)
            }
        }
    }
    if args.smoke {
        // Short enough for CI, long enough that the epoch protocol has
        // corrected the skew (the hot-spot needs a few epochs of data
        // before the moves pay for themselves).
        args.txs = args.txs.min(10_000);
    }
    args
}

/// Per-epoch migration byte budgets swept into the tradeoff curve. The
/// low points throttle the planner mid-batch (fewer hubs re-homed per
/// epoch, cheaper but slower skew recovery); the 64 KiB point is
/// [`RebalancePolicy`]'s default and carries the gates.
const BUDGET_SWEEP: &[u64] = &[512, 1024, 2 * 1024, 64 * 1024];
const GATED_BUDGET: u64 = 64 * 1024;

/// One simulated arm of the curve.
struct Arm {
    label: String,
    /// Per-epoch byte budget (`None` for the static arm).
    budget: Option<u64>,
    metrics: SimMetrics,
}

impl Arm {
    fn cross_ratio(&self) -> f64 {
        self.metrics.cross_fraction()
    }

    fn max_util(&self) -> f64 {
        self.metrics.max_shard_utilization()
    }
}

/// Policy for one rebalanced arm: the default cost model with the
/// calibrated hub threshold (93% of synthetic-workload in-degrees sit
/// below 3, so degree ≥ 2 is where the hub tail starts) and the swept
/// byte budget.
fn policy(epoch_interval: u64, budget: u64) -> RebalancePolicy {
    RebalancePolicy::default()
        .with_epoch_interval(epoch_interval)
        .with_min_in_degree(2)
        .with_byte_budget(budget)
}

fn run_arm(
    config: &SimConfig,
    txs: &[Transaction],
    epoch_interval: u64,
    label: String,
    budget: Option<u64>,
) -> Arm {
    let mut builder = Router::builder()
        .shards(config.n_shards)
        .expected_total(config.total_txs);
    if let Some(bytes) = budget {
        builder = builder.rebalancer(policy(epoch_interval, bytes));
    }
    let metrics = Simulation::run_with_router(config.clone(), txs, builder.build())
        .expect("simulation config is valid and the stream covers total_txs");
    Arm {
        label,
        budget,
        metrics,
    }
}

fn main() {
    let args = parse_args();
    println!(
        "rebalance_curve: {} txs, k = {}, seed = {:#x}, hot-spot {} hubs @ p = {}{}",
        args.txs,
        args.k,
        args.seed,
        args.hubs,
        args.p_hot,
        if args.smoke { " [smoke]" } else { "" }
    );

    let mut config = SimConfig::small();
    config.n_shards = args.k;
    config.total_txs = args.txs;
    config.tx_rate = args.rate;
    config.workload_seed = args.seed;

    // The hot-spot starts after the warm-up tenth of the stream, so the
    // hubs exist as ordinary wallets (and T2S families) before the
    // crowd piles onto them — the skew a static placement is stuck with.
    let hotspot = HotSpotConfig {
        hubs: args.hubs,
        p_hot: args.p_hot,
        start: (args.txs / 10) as usize,
    };
    println!(
        "generating hot-spot workload (start at tx {})...",
        hotspot.start
    );
    let wl = WorkloadConfig::bitcoin_like()
        .with_seed(config.workload_seed)
        .with_hotspot(hotspot);
    let txs: Vec<Transaction> = WorkloadGenerator::new(wl).take(args.txs as usize).collect();

    println!("running the static OptChain arm...");
    let static_arm = run_arm(
        &config,
        &txs,
        args.epoch_interval,
        "static".to_string(),
        None,
    );
    report(&static_arm);

    let sweep: &[u64] = if args.smoke {
        &[GATED_BUDGET]
    } else {
        BUDGET_SWEEP
    };
    let mut arms = Vec::new();
    for &budget in sweep {
        let tag = if budget.is_multiple_of(1024) {
            format!("{}k", budget / 1024)
        } else {
            format!("{budget}b")
        };
        println!("running the rebalanced arm (budget {tag}/epoch)...");
        let arm = run_arm(
            &config,
            &txs,
            args.epoch_interval,
            format!("rebalance_{tag}"),
            Some(budget),
        );
        report(&arm);
        arms.push(arm);
    }

    let gated = arms
        .iter()
        .find(|a| a.budget == Some(GATED_BUDGET))
        .expect("the sweep always contains the gated default budget");

    // Determinism: the gated arm replayed over the same stream must
    // reproduce every counter bit for bit (same epoch boundaries →
    // same assignments → same consensus schedule).
    println!("re-running the gated arm (determinism check)...");
    let repeat = run_arm(
        &config,
        &txs,
        args.epoch_interval,
        "rebalance_repeat".to_string(),
        Some(GATED_BUDGET),
    );
    assert_eq!(gated.metrics.cross_txs, repeat.metrics.cross_txs);
    assert_eq!(gated.metrics.committed, repeat.metrics.committed);
    assert_eq!(
        gated.metrics.per_shard_items,
        repeat.metrics.per_shard_items
    );
    assert_eq!(
        gated.metrics.rebalance_nodes_moved,
        repeat.metrics.rebalance_nodes_moved
    );
    assert_eq!(
        gated.metrics.rebalance_bytes_migrated,
        repeat.metrics.rebalance_bytes_migrated
    );
    println!("  deterministic: every counter identical");

    write_json(&args, &config, &static_arm, &arms);
    println!("wrote {}", args.out);

    let mut failed = false;
    if gated.cross_ratio() >= static_arm.cross_ratio() {
        eprintln!(
            "error: rebalanced cross-tx ratio {:.4} not below static {:.4}",
            gated.cross_ratio(),
            static_arm.cross_ratio()
        );
        failed = true;
    }
    if gated.max_util() >= static_arm.max_util() {
        eprintln!(
            "error: rebalanced max-shard utilization {:.3} not below static {:.3}",
            gated.max_util(),
            static_arm.max_util()
        );
        failed = true;
    }
    for arm in &arms {
        let budget = arm.budget.expect("every swept arm has a budget");
        let ceiling = arm.metrics.rebalance_epochs_committed * budget;
        if arm.metrics.rebalance_bytes_migrated > ceiling {
            eprintln!(
                "error: arm {} migrated {} bytes over {} committed epochs \
                 (budget {} bytes/epoch)",
                arm.label,
                arm.metrics.rebalance_bytes_migrated,
                arm.metrics.rebalance_epochs_committed,
                budget
            );
            failed = true;
        }
    }
    if gated.metrics.rebalance_nodes_moved == 0 {
        eprintln!("error: the gated arm never migrated a hub — the trigger did not fire");
        failed = true;
    }
    if !failed {
        println!(
            "gates passed: cross ratio {:.4} -> {:.4}, max utilization {:.3} -> {:.3}, \
             {} hubs re-homed / {:.1} KiB migrated",
            static_arm.cross_ratio(),
            gated.cross_ratio(),
            static_arm.max_util(),
            gated.max_util(),
            gated.metrics.rebalance_nodes_moved,
            gated.metrics.rebalance_bytes_migrated as f64 / 1024.0,
        );
    }
    if failed {
        std::process::exit(1);
    }
}

fn report(arm: &Arm) {
    let m = &arm.metrics;
    println!(
        "  {}: cross ratio {:.4}, max utilization {:.3}, {:.0} tps, \
         {} committed / {} aborted, {} epochs / {} moves / {} bytes migrated",
        arm.label,
        arm.cross_ratio(),
        arm.max_util(),
        m.throughput(),
        m.committed,
        m.aborted,
        m.rebalance_epochs_committed,
        m.rebalance_nodes_moved,
        m.rebalance_bytes_migrated,
    );
}

fn arm_json(json: &mut String, arm: &Arm) {
    let m = &arm.metrics;
    let _ = write!(
        json,
        "{{\"label\": \"{}\", \"budget_bytes\": {}, \"cross_ratio\": {:.6}, \
         \"max_shard_utilization\": {:.4}, \"throughput_tps\": {:.1}, \
         \"mean_latency_s\": {:.4}, \"committed\": {}, \"aborted\": {}, \
         \"epochs_committed\": {}, \"nodes_moved\": {}, \"bytes_migrated\": {}}}",
        arm.label,
        match arm.budget {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        },
        arm.cross_ratio(),
        arm.max_util(),
        m.throughput(),
        m.mean_latency(),
        m.committed,
        m.aborted,
        m.rebalance_epochs_committed,
        m.rebalance_nodes_moved,
        m.rebalance_bytes_migrated,
    );
}

fn write_json(args: &Args, config: &SimConfig, static_arm: &Arm, arms: &[Arm]) {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"rebalance_curve\",");
    let _ = writeln!(json, "  \"txs\": {},", args.txs);
    let _ = writeln!(json, "  \"k\": {},", config.n_shards);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(
        json,
        "  \"hotspot\": {{\"hubs\": {}, \"p_hot\": {}, \"start\": {}}},",
        args.hubs,
        args.p_hot,
        args.txs / 10
    );
    let _ = writeln!(json, "  \"epoch_interval\": {},", args.epoch_interval);
    let _ = writeln!(json, "  \"gated_budget_bytes\": {GATED_BUDGET},");
    let _ = write!(json, "  \"static\": ");
    arm_json(&mut json, static_arm);
    let _ = writeln!(json, ",");
    let _ = writeln!(json, "  \"arms\": [");
    for (i, arm) in arms.iter().enumerate() {
        let _ = write!(json, "    ");
        arm_json(&mut json, arm);
        let _ = writeln!(json, "{}", if i + 1 < arms.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"deterministic\": true");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH json");
}
