//! Ablation — telemetry fidelity: quantized (block-granular, shared
//! baselines — the reading that reproduces the paper) versus raw
//! per-shard measurements, which let persistent millisecond-scale noise
//! override the T2S signal (DESIGN.md §4).

use optchain_bench::{fmt_pct, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy, TelemetryFidelity};

fn main() {
    let opts = Opts::parse();
    let n = optchain_bench::cell_txs(6_000.0, &opts);
    let txs = shared_workload(n, opts.seed);
    println!("Ablation: telemetry fidelity for OptChain at 6000 tps / 16 shards\n");
    let mut table = Table::new(["telemetry", "cross-TXs", "mean latency (s)", "peak queue"]);
    for (label, fidelity) in [
        ("quantized (default)", TelemetryFidelity::Quantized),
        ("raw per-shard", TelemetryFidelity::Raw),
    ] {
        let mut config = sim_config(16, 6_000.0, n, opts.seed);
        config.telemetry_fidelity = fidelity;
        let m = Simulation::run_on(config, Strategy::OptChain, &txs).expect("valid config");
        table.row([
            label.to_string(),
            fmt_pct(m.cross_fraction()),
            format!("{:.1}", m.mean_latency()),
            optchain_bench::fmt_count(m.peak_queue),
        ]);
    }
    println!("{table}");
}
