//! Ablation — the T2S damping factor α (the paper fixes α = 0.5 without
//! a sensitivity study). Sweeps α and reports cross-TX% of pure
//! T2S placement at 16 shards.

use optchain_bench::{fmt_pct, shared_workload, Opts};
use optchain_core::replay::replay_router;
use optchain_core::{Router, Strategy};
use optchain_metrics::Table;

fn main() {
    let opts = Opts::parse();
    let txs = shared_workload(opts.txs, opts.seed);
    let n = txs.len() as u64;
    println!(
        "Ablation: T2S damping factor α at 16 shards ({} txs)\n",
        optchain_bench::fmt_count(n)
    );
    let mut table = Table::new(["alpha", "cross-TXs", "size ratio"]);
    for alpha in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let mut router = Router::builder()
            .shards(16)
            .strategy(Strategy::T2s)
            .alpha(alpha)
            .expected_total(n)
            .build();
        let outcome = replay_router(&txs, &mut router);
        table.row([
            format!("{alpha:.2}"),
            fmt_pct(outcome.cross_fraction()),
            format!("{:.2}", outcome.size_ratio()),
        ]);
    }
    println!("{table}");
    println!("(the paper's choice is α = 0.5)");
}
