//! Extension — RapidChain-style yanking vs OmniLedger locking.
//!
//! The paper predicts "a similar level of improvement in performance when
//! combining OptChain with other sharding protocols such as Rapidchain";
//! this experiment runs both cross-shard protocols under OptChain and
//! OmniLedger placement at 4000 tps / 16 shards.

use optchain_bench::{fmt_pct, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{CrossShardProtocol, Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let n = optchain_bench::cell_txs(4_000.0, &opts);
    let txs = shared_workload(n, opts.seed);
    println!("Extension: cross-shard protocol comparison at 4000 tps / 16 shards\n");
    let mut table = Table::new([
        "protocol",
        "placement",
        "cross-TXs",
        "mean latency (s)",
        "throughput (tps)",
    ]);
    for (plabel, protocol) in [
        ("OmniLedger lock", CrossShardProtocol::OmniLedgerLock),
        ("RapidChain yank", CrossShardProtocol::RapidChainYank),
    ] {
        for strategy in [Strategy::OptChain, Strategy::OmniLedger] {
            let mut config = sim_config(16, 4_000.0, n, opts.seed);
            config.protocol = protocol;
            let m = Simulation::run_on(config, strategy, &txs).expect("valid config");
            table.row([
                plabel.to_string(),
                strategy.label().to_string(),
                fmt_pct(m.cross_fraction()),
                format!("{:.1}", m.mean_latency()),
                format!("{:.0}", m.steady_throughput()),
            ]);
        }
    }
    println!("{table}");
    println!("(OptChain's gain carries over to the yanking protocol, as predicted)");
}
