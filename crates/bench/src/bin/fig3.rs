//! Fig 3 — impact of transaction rate and shard count on latency and
//! throughput, one grid per placement strategy.
//!
//! Paper shape: every method improves with more shards; only OptChain
//! reaches throughput ≈ offered rate across the sweep (needing 6/8/10/
//! 14/16 shards for 2000/3000/4000/5000/6000 tps), OmniLedger needs 16
//! shards for 3000 tps, Metis never tracks the rate.

use optchain_bench::{cell_txs, run_grid, shared_workload, Opts, RunSpec};
use optchain_metrics::Table;
use optchain_sim::{SimMetrics, Strategy};

fn main() {
    let opts = Opts::parse();
    let shards = [4u32, 6, 8, 10, 12, 14, 16];
    let rates = [2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0];
    println!(
        "Fig 3: latency / throughput grids ({:.0}s of injected load per cell)\n",
        opts.horizon_s,
    );

    // results[strategy][shard][rate]
    let mut grids: Vec<Vec<Vec<SimMetrics>>> = Strategy::figure_set()
        .iter()
        .map(|_| shards.iter().map(|_| Vec::new()).collect())
        .collect();
    for &rate in &rates {
        let n = cell_txs(rate, &opts);
        let txs = shared_workload(n, opts.seed);
        let specs: Vec<RunSpec> = Strategy::figure_set()
            .iter()
            .flat_map(|&s| shards.iter().map(move |&k| RunSpec::new(s, k, rate)))
            .collect();
        let results = run_grid(&specs, &txs, opts.seed);
        for (i, m) in results.into_iter().enumerate() {
            let s = i / shards.len();
            let k = i % shards.len();
            grids[s][k].push(m);
        }
    }

    for (si, strategy) in Strategy::figure_set().iter().enumerate() {
        println!("── {} ──", strategy.label());
        let mut lat = Table::new(["shards\\rate", "2000", "3000", "4000", "5000", "6000"]);
        let mut tput = Table::new(["shards\\rate", "2000", "3000", "4000", "5000", "6000"]);
        for (ki, k) in shards.iter().enumerate() {
            let row = &grids[si][ki];
            lat.row(
                std::iter::once(k.to_string())
                    .chain(row.iter().map(|m| format!("{:.1}", m.mean_latency()))),
            );
            tput.row(
                std::iter::once(k.to_string())
                    .chain(row.iter().map(|m| format!("{:.0}", m.steady_throughput()))),
            );
        }
        println!("mean latency (s):\n{lat}");
        println!("steady throughput (tps):\n{tput}");
    }
}
