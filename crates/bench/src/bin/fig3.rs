//! Fig 3 — impact of transaction rate and shard count on latency and
//! throughput, one grid per placement strategy.
//!
//! Paper shape: every method improves with more shards; only OptChain
//! reaches throughput ≈ offered rate across the sweep (needing 6/8/10/
//! 14/16 shards for 2000/3000/4000/5000/6000 tps), OmniLedger needs 16
//! shards for 3000 tps, Metis never tracks the rate.

use optchain_bench::{cell_txs, parallel_runs, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{SimMetrics, Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let shards = [4u32, 6, 8, 10, 12, 14, 16];
    let rates = [2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0];
    println!(
        "Fig 3: latency / throughput grids ({:.0}s of injected load per cell)\n",
        opts.horizon_s,
    );

    // results[strategy][shard][rate]
    let mut grids: Vec<Vec<Vec<SimMetrics>>> = Strategy::figure_set()
        .iter()
        .map(|_| shards.iter().map(|_| Vec::new()).collect())
        .collect();
    for (ri, &rate) in rates.iter().enumerate() {
        let n = cell_txs(rate, &opts);
        let txs = shared_workload(n, opts.seed);
        let jobs: Vec<(usize, usize)> = (0..Strategy::figure_set().len())
            .flat_map(|s| (0..shards.len()).map(move |k| (s, k)))
            .collect();
        let results = parallel_runs(jobs.clone(), |(s, k)| {
            let config = sim_config(shards[*k], rate, n, opts.seed);
            Simulation::run_on(config, Strategy::figure_set()[*s], &txs).expect("valid config")
        });
        for ((s, k), m) in jobs.into_iter().zip(results) {
            grids[s][k].push(m);
        }
        let _ = ri;
    }

    for (si, strategy) in Strategy::figure_set().iter().enumerate() {
        println!("── {} ──", strategy.label());
        let mut lat = Table::new(["shards\\rate", "2000", "3000", "4000", "5000", "6000"]);
        let mut tput = Table::new(["shards\\rate", "2000", "3000", "4000", "5000", "6000"]);
        for (ki, k) in shards.iter().enumerate() {
            let row = &grids[si][ki];
            lat.row(
                std::iter::once(k.to_string())
                    .chain(row.iter().map(|m| format!("{:.1}", m.mean_latency()))),
            );
            tput.row(
                std::iter::once(k.to_string())
                    .chain(row.iter().map(|m| format!("{:.0}", m.steady_throughput()))),
            );
        }
        println!("mean latency (s):\n{lat}");
        println!("steady throughput (tps):\n{tput}");
    }
}
