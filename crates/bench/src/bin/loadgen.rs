//! Loopback load driver for the placement service.
//!
//! Three arms, all in one process so the numbers are directly
//! comparable and the server's own histograms are readable:
//!
//! 1. **fleet_reference** — the same transaction stream through the
//!    in-process `RouterFleet` detached-batch path at the same worker
//!    and sync configuration. This is the ceiling: what the placement
//!    engine does with no network, no framing, no admission control.
//! 2. **sustained** — the stream over loopback TCP through
//!    `optchain-server`, several pipelined client connections keeping
//!    the credit window full. Records placements/sec and the server's
//!    admission→ack p50/p99. `service_ratio` = sustained / reference.
//! 3. **overload** — a rate-capped server driven at 2x its capacity.
//!    Demonstrates the overload contract: typed `QueueFull` shedding,
//!    admitted-request p99 within the queue-derived bound, and one
//!    response per request (zero lost acks).
//!
//! Writes `BENCH_service.json` (diffed against the committed baseline
//! by `scripts/bench_compare.py --mode service`).
//!
//! ```sh
//! cargo run --release -p optchain-bench --bin loadgen -- \
//!     [--txs N] [--k K] [--workers W] [--conns C] [--seed S] \
//!     [--smoke] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use optchain_client::{Client, Event};
use optchain_core::{RouterFleet, RouterFleetBuilder};
use optchain_server::{PlacementServer, RejectReason};
use optchain_utxo::{Transaction, TxId};
use optchain_workload::{generate, WorkloadConfig};

struct Args {
    txs: usize,
    k: u32,
    workers: usize,
    conns: usize,
    batch: usize,
    seed: u64,
    sync_interval: u64,
    smoke: bool,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            txs: 200_000,
            k: 16,
            workers: 4,
            conns: 4,
            batch: 64,
            seed: 0xB17C04,
            sync_interval: 50_000,
            smoke: false,
            out: "BENCH_service.json".to_string(),
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--txs" => args.txs = next("--txs").parse().expect("--txs N"),
            "--k" => args.k = next("--k").parse().expect("--k K"),
            "--workers" => args.workers = next("--workers").parse().expect("--workers W"),
            "--conns" => args.conns = next("--conns").parse().expect("--conns C"),
            "--batch" => args.batch = next("--batch").parse().expect("--batch B"),
            "--seed" => args.seed = next("--seed").parse().expect("--seed S"),
            "--sync-interval" => {
                args.sync_interval = next("--sync-interval").parse().expect("--sync-interval T")
            }
            "--smoke" => args.smoke = true,
            "--out" => args.out = next("--out"),
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!(
                    "usage: loadgen [--txs N] [--k K] [--workers W] [--conns C] \
                     [--seed S] [--sync-interval T] [--smoke] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.txs = args.txs.min(20_000);
    }
    assert!(args.conns > 0, "--conns must be positive");
    assert!(args.batch > 0, "--batch must be positive");
    args
}

fn fleet_builder(args: &Args) -> RouterFleetBuilder {
    RouterFleet::builder()
        .shards(args.k)
        .workers(args.workers)
        .sync_interval(args.sync_interval)
}

/// Chunk size of the reference's detached bulk submission (same as
/// the perf_baseline fleet arm: channel traffic negligible, clients
/// still interleaved).
const FLEET_CHUNK: usize = 4_096;

/// Arm 1: the in-process ceiling at matching fleet configuration —
/// one handle per worker, chunks round-robined, zero-copy detached
/// batches. Matches `perf_baseline`'s fleet arm.
fn run_fleet_reference(args: &Args, stream: &Arc<[Transaction]>) -> f64 {
    let fleet = fleet_builder(args).build();
    let handles: Vec<_> = (0..args.workers as u64).map(|c| fleet.handle(c)).collect();
    let started = Instant::now();
    for (i, start) in (0..stream.len()).step_by(FLEET_CHUNK).enumerate() {
        let end = (start + FLEET_CHUNK).min(stream.len());
        let _ = handles[i % args.workers].submit_batch_detached(stream, start..end);
    }
    let placed: usize = handles.iter().map(|h| h.drain().len()).sum();
    let seconds = started.elapsed().as_secs_f64();
    assert_eq!(placed, stream.len(), "reference lost placements");
    seconds
}

struct ConnOutcome {
    sent: u64,
    acks: u64,
    rejects: u64,
    queue_full: u64,
}

/// Drives one connection: pipelined submits (single, or batches of
/// `batch` transactions) keeping the credit window full, optionally
/// paced to `rate_per_conn` offered tx/sec.
fn drive_conn(
    addr: std::net::SocketAddr,
    items: &[(TxId, Vec<TxId>)],
    rate_per_conn: Option<f64>,
    batch: usize,
) -> ConnOutcome {
    let mut client = Client::connect(addr).expect("connect");
    let window = client.credit_window() as u64;
    let mut out = ConnOutcome {
        sent: 0,
        acks: 0,
        rejects: 0,
        queue_full: 0,
    };
    let mut outstanding = 0u64;
    let started = Instant::now();
    fn recv(client: &mut Client, out: &mut ConnOutcome) {
        match client.recv_event().expect("event") {
            Event::Ack { .. } | Event::AckBatch { .. } => out.acks += 1,
            Event::Reject { reason, .. } => {
                out.rejects += 1;
                if reason == RejectReason::QueueFull {
                    out.queue_full += 1;
                }
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    let mut offered = 0usize;
    for chunk in items.chunks(batch) {
        if let Some(rate) = rate_per_conn {
            let target = Duration::from_secs_f64(offered as f64 / rate);
            let elapsed = started.elapsed();
            if target > elapsed {
                client.flush().expect("flush");
                std::thread::sleep(target - elapsed);
            }
        }
        if outstanding >= window {
            client.flush().expect("flush");
            recv(&mut client, &mut out);
            outstanding -= 1;
        }
        if batch == 1 {
            let (txid, inputs) = &chunk[0];
            client.send_submit(1, *txid, inputs).expect("send");
        } else {
            client.send_batch(1, chunk).expect("send");
        }
        offered += chunk.len();
        out.sent += 1;
        outstanding += 1;
    }
    client.flush().expect("flush");
    while outstanding > 0 {
        recv(&mut client, &mut out);
        outstanding -= 1;
    }
    out
}

/// Partitions `items` round-robin across `conns` and drives them from
/// one thread per connection; returns wall seconds + merged outcomes.
fn drive(
    addr: std::net::SocketAddr,
    items: &[(TxId, Vec<TxId>)],
    conns: usize,
    rate_per_conn: Option<f64>,
    batch: usize,
) -> (f64, ConnOutcome) {
    let partitions: Vec<Vec<(TxId, Vec<TxId>)>> = (0..conns)
        .map(|c| {
            items
                .iter()
                .skip(c)
                .step_by(conns)
                .cloned()
                .collect::<Vec<_>>()
        })
        .collect();
    let started = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .map(|part| scope.spawn(move || drive_conn(addr, part, rate_per_conn, batch)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn thread"))
            .collect()
    });
    let seconds = started.elapsed().as_secs_f64();
    let merged = outcomes.into_iter().fold(
        ConnOutcome {
            sent: 0,
            acks: 0,
            rejects: 0,
            queue_full: 0,
        },
        |mut acc, o| {
            acc.sent += o.sent;
            acc.acks += o.acks;
            acc.rejects += o.rejects;
            acc.queue_full += o.queue_full;
            acc
        },
    );
    (seconds, merged)
}

fn main() {
    let args = parse_args();
    eprintln!(
        "loadgen: txs={} k={} workers={} conns={} batch={} seed={:#x}{}",
        args.txs,
        args.k,
        args.workers,
        args.conns,
        args.batch,
        args.seed,
        if args.smoke { " (smoke)" } else { "" }
    );

    let stream: Arc<[Transaction]> = generate(
        WorkloadConfig::bitcoin_like().with_seed(args.seed),
        args.txs,
    )
    .into();
    let items: Vec<(TxId, Vec<TxId>)> = stream
        .iter()
        .map(|tx| (tx.id(), tx.input_txids()))
        .collect();

    // Arm 1: in-process ceiling.
    let ref_seconds = run_fleet_reference(&args, &stream);
    let ref_tps = args.txs as f64 / ref_seconds;
    eprintln!("fleet_reference: {ref_tps:.0} tx/s ({ref_seconds:.3}s)");

    // Arm 2: sustained loopback service throughput. The queue must
    // hold everything the clients can have outstanding at once
    // (conns x credit window x batch transactions), so the arm's
    // no-shedding invariant is structural — clients momentarily
    // outrunning the dispatcher cannot trip QueueFull.
    let credit_window: u32 = 256;
    let sus_queue = args
        .txs
        .max(args.conns * credit_window as usize * args.batch)
        .max(1024);
    let server = PlacementServer::builder()
        .fleet(fleet_builder(&args))
        .queue_capacity(sus_queue)
        .credit_window(credit_window)
        .start()
        .expect("start server");
    let (sus_seconds, sus) = drive(server.local_addr(), &items, args.conns, None, args.batch);
    let sus_tps = args.txs as f64 / sus_seconds;
    let sus_p50 = server.metrics().latency_usec_quantile(0.5).unwrap_or(0);
    let sus_p99 = server.metrics().latency_usec_quantile(0.99).unwrap_or(0);
    let sus_admitted = server.metrics().admitted();
    let sus_acked = server.metrics().acked();
    let sus_shed = server.metrics().shed_total();
    let sus_lost = sus.sent - sus.acks - sus.rejects;
    server.shutdown();
    eprintln!(
        "sustained: {sus_tps:.0} tx/s ({sus_seconds:.3}s), p50={sus_p50}us p99={sus_p99}us, \
         acks={} rejects={} lost={sus_lost}",
        sus.acks, sus.rejects
    );

    // Arm 3: 2x overload against a rate-capped node. The p99 bound for
    // admitted work is queue_capacity / rate (full-queue residence)
    // plus one dispatch chunk; x2 for scheduling slop.
    // The queue must be smaller than the total outstanding credit
    // (conns x window), otherwise per-connection backpressure alone
    // absorbs the 2x overload and nothing is ever shed.
    let rate: u64 = if args.smoke { 10_000 } else { 20_000 };
    let over_queue: usize = 256;
    let duration_s: f64 = if args.smoke { 1.5 } else { 4.0 };
    let offered = (2.0 * rate as f64 * duration_s) as usize;
    let over_stream = generate(
        WorkloadConfig::bitcoin_like().with_seed(args.seed ^ 0x5eed),
        offered,
    );
    let over_items: Vec<(TxId, Vec<TxId>)> = over_stream
        .iter()
        .map(|tx| (tx.id(), tx.input_txids()))
        .collect();
    // Admitted-request residence is bounded by a full queue plus one
    // in-flight dispatch chunk, both served at `rate`; x2 for slop.
    let p99_bound_usec = (over_queue as u64 + 256) * 1_000_000 / rate * 2;

    let server = PlacementServer::builder()
        .fleet(fleet_builder(&args))
        .queue_capacity(over_queue)
        .credit_window(256)
        .max_placements_per_sec(rate)
        .start()
        .expect("start overload server");
    let rate_per_conn = 2.0 * rate as f64 / args.conns as f64;
    let (over_seconds, over) = drive(
        server.local_addr(),
        &over_items,
        args.conns,
        Some(rate_per_conn),
        1,
    );
    let over_p99 = server.metrics().latency_usec_quantile(0.99).unwrap_or(0);
    let over_admitted = server.metrics().admitted();
    let over_acked = server.metrics().acked();
    let over_shed_qf = server.metrics().shed(RejectReason::QueueFull);
    let over_shed = server.metrics().shed_total();
    let over_lost = over.sent - over.acks - over.rejects;
    let p99_within_bound = over_p99 <= p99_bound_usec;
    server.shutdown();
    eprintln!(
        "overload: offered {:.0} tx/s for {over_seconds:.3}s, admitted={over_admitted} \
         shed={over_shed} p99={over_p99}us (bound {p99_bound_usec}us) lost={over_lost}",
        over.sent as f64 / over_seconds
    );

    let service_ratio = sus_tps / ref_tps;
    let acks_complete = sus_lost == 0 && over_lost == 0 && sus_admitted == sus_acked;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"service_loadgen\",");
    let _ = writeln!(json, "  \"txs\": {},", args.txs);
    let _ = writeln!(json, "  \"k\": {},", args.k);
    let _ = writeln!(json, "  \"workers\": {},", args.workers);
    let _ = writeln!(json, "  \"conns\": {},", args.conns);
    let _ = writeln!(json, "  \"batch\": {},", args.batch);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"credit_window\": 256,");
    let _ = writeln!(
        json,
        "  \"fleet_reference\": {{\"seconds\": {ref_seconds:.4}, \"txs_per_sec\": {ref_tps:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"sustained\": {{\"seconds\": {sus_seconds:.4}, \"txs_per_sec\": {sus_tps:.1}, \
         \"p50_usec\": {sus_p50}, \"p99_usec\": {sus_p99}, \"admitted\": {sus_admitted}, \
         \"acked\": {sus_acked}, \"shed\": {sus_shed}, \"lost_acks\": {sus_lost}}},"
    );
    let _ = writeln!(
        json,
        "  \"overload\": {{\"rate_cap\": {rate}, \"queue_capacity\": {over_queue}, \
         \"duration_seconds\": {over_seconds:.4}, \"offered\": {offered}, \
         \"admitted\": {over_admitted}, \"acked\": {over_acked}, \
         \"shed_queue_full\": {over_shed_qf}, \"shed_total\": {over_shed}, \
         \"p99_usec\": {over_p99}, \"p99_bound_usec\": {p99_bound_usec}, \
         \"p99_within_bound\": {p99_within_bound}, \"lost_acks\": {over_lost}}},"
    );
    let _ = writeln!(json, "  \"service_ratio\": {service_ratio:.3},");
    let _ = writeln!(json, "  \"acks_complete\": {acks_complete}");
    let _ = writeln!(json, "}}");

    std::fs::write(&args.out, &json).expect("write BENCH_service.json");
    eprintln!(
        "service_ratio={service_ratio:.3} acks_complete={acks_complete} -> {}",
        args.out
    );

    assert_eq!(sus_lost, 0, "sustained arm lost acks");
    assert_eq!(over_lost, 0, "overload arm lost acks");
    assert!(over_shed > 0, "2x overload produced no shedding");
}
