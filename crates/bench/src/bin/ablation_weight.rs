//! Ablation — the temporal-fitness L2S weight (Algorithm 1 hardcodes
//! 0.01). Sweeps the weight and reports the cross-TX / balance trade-off
//! OptChain navigates, in offline replay at 16 shards.

use optchain_bench::{fmt_pct, shared_workload, Opts};
use optchain_core::replay::replay_router;
use optchain_core::Router;
use optchain_metrics::Table;

fn main() {
    let opts = Opts::parse();
    let txs = shared_workload(opts.txs, opts.seed);
    println!(
        "Ablation: L2S weight in the temporal fitness at 16 shards ({} txs)\n",
        optchain_bench::fmt_count(txs.len() as u64)
    );
    let mut table = Table::new(["weight", "cross-TXs", "size ratio"]);
    for weight in [0.0, 0.001, 0.01, 0.1, 1.0, 10.0] {
        let mut router = Router::builder().shards(16).l2s_weight(weight).build();
        let outcome = replay_router(&txs, &mut router);
        table.row([
            format!("{weight}"),
            fmt_pct(outcome.cross_fraction()),
            format!("{:.2}", outcome.size_ratio()),
        ]);
    }
    println!("{table}");
    println!("(the paper's constant is 0.01; weight 0 disables load awareness)");
}
