//! Fig 10 — cumulative distribution of confirmation latency at 6000 tps
//! / 16 shards.
//!
//! Paper shape: ~70% of OptChain's transactions confirm within 10 s,
//! vs 41.2% (Greedy), 7.9% (OmniLedger), 2.4% (Metis).

use optchain_bench::{cell_txs, run_grid, shared_workload, Opts, RunSpec};
use optchain_metrics::Table;
use optchain_sim::Strategy;

fn main() {
    let opts = Opts::parse();
    let n = cell_txs(6_000.0, &opts);
    let txs = shared_workload(n, opts.seed);
    println!("Fig 10: latency CDF at 6000 tps / 16 shards\n");
    let specs: Vec<RunSpec> = Strategy::figure_set()
        .iter()
        .map(|&s| RunSpec::new(s, 16, 6_000.0))
        .collect();
    let mut results = run_grid(&specs, &txs, opts.seed);

    let mut table = Table::new(["latency (s)", "OptChain", "OmniLedger", "Metis", "Greedy"]);
    let points: Vec<f64> = (1..=20).map(|i| i as f64 * 5.0).collect();
    for &p in &points {
        table.row(
            std::iter::once(format!("{p:.0}")).chain(
                results
                    .iter_mut()
                    .map(|m| format!("{:.3}", m.fraction_within(p))),
            ),
        );
    }
    println!("{table}");
    println!("fraction confirmed within 10 s (paper: 0.70 / 0.079 / 0.024 / 0.412):");
    for m in &mut results {
        let within = m.fraction_within(10.0);
        println!("  {:<12} {within:.3}", m.strategy);
    }
}
