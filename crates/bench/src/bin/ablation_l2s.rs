//! Ablation — the L2S latency model: Algorithm 1's literal
//! self-convolution versus the verify+commit reading this reproduction
//! defaults to (see DESIGN.md §4). Simulated at 6000 tps / 16 shards.

use optchain_bench::{fmt_pct, shared_workload, sim_config, Opts};
use optchain_core::{L2sMode, Router};
use optchain_metrics::Table;
use optchain_sim::Simulation;

fn main() {
    let opts = Opts::parse();
    let n = optchain_bench::cell_txs(6_000.0, &opts);
    let txs = shared_workload(n, opts.seed);
    let config = sim_config(16, 6_000.0, n, opts.seed);
    println!("Ablation: L2S mode at 6000 tps / 16 shards\n");
    let mut table = Table::new([
        "L2S mode",
        "cross-TXs",
        "mean latency (s)",
        "max latency (s)",
        "peak queue",
        "L2S memo hits",
    ]);
    for (label, mode) in [
        ("verify+commit (default)", L2sMode::VerifyPlusCommit),
        (
            "self-convolution (paper text)",
            L2sMode::PaperSelfConvolution,
        ),
    ] {
        let router = Router::builder().shards(16).l2s_mode(mode).build();
        let mut m =
            Simulation::run_with_router(config.clone(), &txs, router).expect("valid config");
        table.row([
            label.to_string(),
            fmt_pct(m.cross_fraction()),
            format!("{:.1}", m.mean_latency()),
            format!("{:.1}", m.max_latency()),
            optchain_bench::fmt_count(m.peak_queue),
            fmt_pct(m.l2s_memo_hit_rate()),
        ]);
    }
    println!("{table}");
    println!("(memo hits: per-client session reuse of the L2S expansion across transactions)");
}
