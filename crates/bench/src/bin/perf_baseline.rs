//! Perf baseline for the placement hot path: replays one large synthetic
//! Bitcoin-like stream through the seed-equivalent allocating OptChain
//! path and through the optimized zero-allocation path, verifies the
//! assignments are identical, and records throughput to
//! `BENCH_placement.json` (the repo's perf trajectory file).
//!
//! ```sh
//! cargo run --release -p optchain-bench --bin perf_baseline -- \
//!     [--txs N] [--k K] [--seed S] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use optchain_core::replay::{replay, ReplayOutcome};
use optchain_core::{NaiveOptChainPlacer, OptChainPlacer};
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

struct Args {
    txs: u64,
    k: u32,
    seed: u64,
    out: String,
    /// Exit nonzero below this speedup ratio. Wall-clock ratios on shared
    /// CI runners are noisy at small stream sizes — pass `--min-speedup 0`
    /// to record without gating.
    min_speedup: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        txs: 1_000_000,
        k: 16,
        seed: 0xB17C04,
        out: "BENCH_placement.json".to_string(),
        min_speedup: 2.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--txs" => args.txs = next("--txs").parse().expect("--txs: number"),
            "--k" => args.k = next("--k").parse().expect("--k: number"),
            "--seed" => args.seed = next("--seed").parse().expect("--seed: number"),
            "--out" => args.out = next("--out"),
            "--min-speedup" => {
                args.min_speedup = next("--min-speedup")
                    .parse()
                    .expect("--min-speedup: number")
            }
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!(
                    "usage: perf_baseline [--txs N] [--k K] [--seed S] [--out PATH] [--min-speedup X]"
                );
                std::process::exit(2)
            }
        }
    }
    args
}

/// Peak resident set size of this process in kilobytes (Linux `VmHWM`);
/// `None` where `/proc` is unavailable.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn timed<P: optchain_core::Placer>(
    txs: &[optchain_utxo::Transaction],
    placer: &mut P,
) -> (ReplayOutcome, f64) {
    let start = Instant::now();
    let outcome = replay(txs, placer);
    (outcome, start.elapsed().as_secs_f64())
}

fn main() {
    let args = parse_args();
    println!(
        "perf_baseline: {} txs, k = {}, seed = {:#x}",
        args.txs, args.k, args.seed
    );

    println!("generating workload...");
    let gen_start = Instant::now();
    let txs: Vec<_> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(args.seed))
        .take(args.txs as usize)
        .collect();
    println!("  generated in {:.2}s", gen_start.elapsed().as_secs_f64());

    println!("replaying through the naive (seed-equivalent allocating) path...");
    let mut naive_placer = NaiveOptChainPlacer::new(args.k);
    let (naive, naive_s) = timed(&txs, &mut naive_placer);
    let naive_tps = args.txs as f64 / naive_s;
    println!("  {naive_s:.2}s — {naive_tps:.0} txs/sec");

    println!("replaying through the optimized zero-allocation path...");
    let mut opt_placer = OptChainPlacer::new(args.k);
    let (optimized, opt_s) = timed(&txs, &mut opt_placer);
    let opt_tps = args.txs as f64 / opt_s;
    println!("  {opt_s:.2}s — {opt_tps:.0} txs/sec");

    assert_eq!(
        naive.assignments, optimized.assignments,
        "optimized and naive paths must place every transaction identically"
    );
    assert_eq!(naive.cross, optimized.cross);

    let speedup = naive_s / opt_s;
    let (memo_hits, memo_misses) = opt_placer.l2s_memo_stats();
    let hwm = vm_hwm_kb();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"placement_throughput\",");
    let _ = writeln!(json, "  \"txs\": {},", args.txs);
    let _ = writeln!(json, "  \"k\": {},", args.k);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(
        json,
        "  \"naive\": {{\"seconds\": {naive_s:.4}, \"txs_per_sec\": {naive_tps:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"optimized\": {{\"seconds\": {opt_s:.4}, \"txs_per_sec\": {opt_tps:.1}}},"
    );
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"assignments_identical\": true,");
    let _ = writeln!(json, "  \"cross_txs\": {},", optimized.cross);
    let _ = writeln!(
        json,
        "  \"l2s_memo\": {{\"hits\": {memo_hits}, \"misses\": {memo_misses}}},"
    );
    match hwm {
        Some(kb) => {
            let _ = writeln!(json, "  \"peak_rss_kb\": {kb}");
        }
        None => {
            let _ = writeln!(json, "  \"peak_rss_kb\": null");
        }
    }
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH json");

    println!();
    println!(
        "speedup: {speedup:.2}x (assignments bit-identical, {} cross-TXs)",
        optimized.cross
    );
    println!(
        "l2s memo: {memo_hits} hits / {memo_misses} misses ({:.1}% hit rate)",
        100.0 * memo_hits as f64 / (memo_hits + memo_misses).max(1) as f64
    );
    if let Some(kb) = hwm {
        println!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }
    println!("wrote {}", args.out);
    if speedup < args.min_speedup {
        eprintln!("warning: speedup below the {}x target", args.min_speedup);
        std::process::exit(1);
    }
}
