//! Perf baseline for the placement hot path: replays one large synthetic
//! Bitcoin-like stream through the seed-equivalent allocating OptChain
//! path and through the optimized zero-allocation path, verifies the
//! assignments are identical, then drives the same stream through
//! `Router::submit_batch` against a direct `place_into` loop to prove
//! the router adds no measurable overhead. Records throughput to
//! `BENCH_placement.json` (the repo's perf trajectory file).
//!
//! With `--features alloc-count` a counting global allocator
//! additionally pins the "(amortized) zero allocations per placement /
//! submit" property: the optimized and router paths must stay under
//! 0.01 heap allocations per transaction (only arena/pool growth), while
//! the naive path allocates several vectors per decision.
//!
//! ```sh
//! cargo run --release -p optchain-bench --bin perf_baseline -- \
//!     [--txs N] [--k K] [--seed S] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use std::sync::Arc;

use optchain_core::replay::{replay, ReplayOutcome};
use optchain_core::{
    DecisionBuf, NaiveOptChainPlacer, OptChainPlacer, PlacementContext, Placer, RetentionPolicy,
    Router, RouterFleet, SegmentWal, ShardId, SpvWallet, DEFAULT_TELEMETRY,
};
use optchain_tan::TanGraph;
use optchain_utxo::Transaction;
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

/// Counting global allocator: every `alloc`/`realloc`/`alloc_zeroed`
/// bumps one relaxed counter, so a timed section can report its
/// allocations-per-transaction. Compiled in only under `alloc-count`
/// (counting costs a few percent of throughput).
#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: delegates every operation to `System` unchanged; the
    // counter is a side effect with no aliasing or layout implications.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;

    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "alloc-count")]
fn allocations() -> Option<u64> {
    Some(alloc_count::allocations())
}

#[cfg(not(feature = "alloc-count"))]
fn allocations() -> Option<u64> {
    None
}

/// Ceiling for the placement-decision allocation rate (graph already
/// built): the decision path reuses every buffer, so only one-time
/// warm-up allocations remain and anything per-transaction shows up
/// orders of magnitude above this.
const MAX_DECISION_ALLOCS_PER_TX: f64 = 0.01;

/// Ceiling for end-to-end ingest+place paths: TaN arena/pool doubling
/// plus one small directory entry per multi-chunk hub cost a bounded,
/// amortized sub-0.1 allocations per transaction (the naive path sits
/// near 60/tx for contrast).
const MAX_E2E_ALLOCS_PER_TX: f64 = 0.1;

struct Args {
    txs: u64,
    k: u32,
    seed: u64,
    out: String,
    /// Exit nonzero below this speedup ratio. Wall-clock ratios on shared
    /// CI runners are noisy at small stream sizes — pass `--min-speedup 0`
    /// to record without gating.
    min_speedup: f64,
    /// Exit nonzero when router-batch throughput falls below this
    /// fraction of the direct `place_into` throughput (the "router adds
    /// no overhead" gate; `--min-router-ratio 0` disables).
    min_router_ratio: f64,
    /// Worker count for the fleet arm.
    fleet_workers: usize,
    /// TaN cross-sync cadence for the fleet arm, in transactions.
    sync_interval: u64,
    /// Exit nonzero when fleet throughput falls below this multiple of
    /// the router `submit_batch` throughput. The target is ≥ 2.0 on a
    /// ≥ 4-core machine; the default 0 records without gating because
    /// CI containers may expose a single core (the fleet then measures
    /// pure coordination overhead).
    min_fleet_ratio: f64,
    /// `RetentionPolicy::WindowTxs` size for the retention arm
    /// (default `txs / 10`; `0` skips the arm).
    retention_window: usize,
    /// Run the durability arm: the same windowed stream through a
    /// `SegmentWal`-backed router, gated on throughput, disk footprint,
    /// and crash recovery.
    wal: bool,
    /// Exit nonzero when WAL-on throughput falls below this fraction of
    /// the in-RAM windowed router's (`0` records without gating).
    min_wal_ratio: f64,
    /// Full-snapshot cadence for the WAL arm: every `full_every`-th
    /// checkpoint is a full snapshot, the rest persist only the delta
    /// since the previous one (`1` = every checkpoint full, the
    /// pre-delta behavior).
    full_every: u64,
}

/// The retention arm's memory gate: a windowed full-stream run must
/// hold its **peak** TaN arena bytes within this factor of a run over
/// just one window's worth of transactions — i.e. graph memory is
/// O(window), not O(stream).
const RETENTION_PEAK_FACTOR: f64 = 2.0;

/// Windows below this skip the memory gate: the graph's fixed
/// compaction floor (1024 rows) dominates tiny windows.
const MIN_GATED_RETENTION_WINDOW: usize = 10_000;

fn parse_args() -> Args {
    let mut args = Args {
        txs: 1_000_000,
        k: 16,
        seed: 0xB17C04,
        out: "BENCH_placement.json".to_string(),
        min_speedup: 2.0,
        min_router_ratio: 0.95,
        fleet_workers: 4,
        sync_interval: 50_000,
        min_fleet_ratio: 0.0,
        retention_window: usize::MAX, // resolved to txs / 10 below
        wal: false,
        min_wal_ratio: 0.5,
        full_every: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--txs" => args.txs = next("--txs").parse().expect("--txs: number"),
            "--k" => args.k = next("--k").parse().expect("--k: number"),
            "--seed" => args.seed = next("--seed").parse().expect("--seed: number"),
            "--out" => args.out = next("--out"),
            "--min-speedup" => {
                args.min_speedup = next("--min-speedup")
                    .parse()
                    .expect("--min-speedup: number")
            }
            "--min-router-ratio" => {
                args.min_router_ratio = next("--min-router-ratio")
                    .parse()
                    .expect("--min-router-ratio: number")
            }
            "--fleet-workers" => {
                args.fleet_workers = next("--fleet-workers")
                    .parse()
                    .expect("--fleet-workers: number")
            }
            "--sync-interval" => {
                args.sync_interval = next("--sync-interval")
                    .parse()
                    .expect("--sync-interval: number")
            }
            "--min-fleet-ratio" => {
                args.min_fleet_ratio = next("--min-fleet-ratio")
                    .parse()
                    .expect("--min-fleet-ratio: number")
            }
            "--retention-window" => {
                args.retention_window = next("--retention-window")
                    .parse()
                    .expect("--retention-window: number")
            }
            "--wal" => args.wal = true,
            "--min-wal-ratio" => {
                args.min_wal_ratio = next("--min-wal-ratio")
                    .parse()
                    .expect("--min-wal-ratio: number")
            }
            "--full-every" => {
                args.full_every = next("--full-every").parse().expect("--full-every: number");
                assert!(args.full_every > 0, "--full-every must be > 0");
            }
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!(
                    "usage: perf_baseline [--txs N] [--k K] [--seed S] [--out PATH] \
                     [--min-speedup X] [--min-router-ratio X] [--fleet-workers N] \
                     [--sync-interval N] [--min-fleet-ratio X] [--retention-window N] \
                     [--wal] [--min-wal-ratio X] [--full-every N]"
                );
                std::process::exit(2)
            }
        }
    }
    if args.retention_window == usize::MAX {
        args.retention_window = (args.txs / 10) as usize;
    }
    args
}

/// Peak resident set size of this process in kilobytes (Linux `VmHWM`);
/// `None` where `/proc` is unavailable.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Timing + allocation delta of one measured section.
struct Measured<T> {
    value: T,
    seconds: f64,
    allocs: Option<u64>,
}

fn measured<T>(f: impl FnOnce() -> T) -> Measured<T> {
    let allocs_before = allocations();
    let start = Instant::now();
    let value = f();
    let seconds = start.elapsed().as_secs_f64();
    let allocs = allocations().map(|after| after - allocs_before.unwrap_or(0));
    Measured {
        value,
        seconds,
        allocs,
    }
}

/// Below this stream length the fixed warm-up allocations dominate the
/// per-transaction averages and the gates would reject correct behavior.
const MIN_GATED_TXS: u64 = 10_000;

fn report_allocs(label: &str, allocs: Option<u64>, txs: u64, limit: Option<f64>) {
    let Some(count) = allocs else { return };
    let per_tx = count as f64 / txs as f64;
    println!("  {label}: {count} heap allocations ({per_tx:.5} per tx)");
    if txs < MIN_GATED_TXS {
        println!("  (allocation gate skipped below {MIN_GATED_TXS} txs: warm-up dominates)");
        return;
    }
    if let Some(limit) = limit {
        assert!(
            per_tx < limit,
            "{label} must stay amortized allocation-free: {per_tx:.5} allocs/tx (limit {limit})"
        );
    }
}

/// Chunk size of the fleet's detached bulk submission: big enough that
/// channel traffic is negligible, small enough to interleave clients.
const FLEET_CHUNK: usize = 4_096;

/// Drives the whole shared stream through a fleet of `workers` (one
/// client handle per worker, chunks round-robined across them), waits
/// for completion, and returns the measured section plus the
/// seq-ordered assignments.
fn run_fleet(
    stream: &Arc<[Transaction]>,
    k: u32,
    workers: usize,
    sync_interval: u64,
) -> Measured<Vec<u32>> {
    // `expected_total` pre-sizes each worker's TaN arenas (every worker
    // eventually holds the full stream: its own placements plus every
    // adoption), keeping the steady-state path free of doubling
    // reallocations; OptChain decisions ignore the value.
    let fleet = RouterFleet::builder()
        .shards(k)
        .workers(workers)
        .partitioner(|client| client as usize)
        .sync_interval(sync_interval)
        .expected_total(stream.len() as u64)
        .build();
    let handles: Vec<_> = (0..workers as u64).map(|c| fleet.handle(c)).collect();
    let run = measured(|| {
        for (i, start) in (0..stream.len()).step_by(FLEET_CHUNK).enumerate() {
            let end = (start + FLEET_CHUNK).min(stream.len());
            let _ = handles[i % workers].submit_batch_detached(stream, start..end);
        }
        fleet.flush();
    });
    let mut results: Vec<(u64, ShardId)> = handles.iter().flat_map(|h| h.drain()).collect();
    results.sort_by_key(|(seq, _)| *seq);
    assert_eq!(results.len(), stream.len(), "every submission must place");
    Measured {
        value: results.into_iter().map(|(_, s)| s.0).collect(),
        seconds: run.seconds,
        allocs: run.allocs,
    }
}

/// Everything the retention arm measures (recorded in the BENCH json).
struct RetentionReport {
    window: usize,
    seconds: f64,
    /// Peak TaN arena bytes over the windowed full-stream run.
    peak_arena_bytes: usize,
    /// Peak TaN arena bytes of the reference run over one window's
    /// worth of transactions (unbounded policy).
    reference_peak_arena_bytes: usize,
    /// Arena bytes after the checkpoint-time `Router::compact()`.
    compacted_arena_bytes: usize,
    /// Peak assignment-store bytes over the windowed full-stream run
    /// (the `AssignmentStore` ring; O(window) is the gate).
    peak_assignment_bytes: usize,
    /// Peak assignment-store bytes of the window-sized reference run.
    reference_peak_assignment_bytes: usize,
    /// Transactions proven bit-identical to the unbounded baseline
    /// (every tx before the first out-of-window parent reference).
    in_window_identical: usize,
    /// First transaction with a parent farther than the window back
    /// (`None`: the whole stream is in-window).
    first_out_of_window: Option<usize>,
    live_nodes: usize,
    evicted_nodes: u64,
    /// KeepUnspentAndHubs companion run (same stream).
    hubs_min_degree: u32,
    hubs_arena_bytes: usize,
    hubs_assignment_bytes: usize,
    hubs_live_nodes: usize,
    hubs_retained_nodes: usize,
    hubs_seconds: f64,
    /// Retention-aware SPV wallet over the same stream (WindowTxs):
    /// peak retained-state bytes vs a window-sized reference run.
    spv_peak_state_bytes: usize,
    spv_reference_peak_state_bytes: usize,
    spv_entries: usize,
    spv_seconds: f64,
}

/// Sampling stride of the peak-arena tracker, in transactions.
const RETENTION_SAMPLE: usize = 4_096;

/// One windowed run's sampled measurements.
struct WindowedRun {
    assignments: Vec<u32>,
    peak_arena: usize,
    peak_assignment: usize,
    seconds: f64,
}

/// Drives `stream` through a retention-policy router in sampled
/// chunks, tracking peak arena and assignment-store bytes.
fn run_windowed(stream: &[Transaction], router: &mut Router) -> WindowedRun {
    let mut assignments = Vec::with_capacity(stream.len());
    let mut chunk_out: Vec<ShardId> = Vec::new();
    let mut peak_arena = router.tan().arena_bytes();
    let mut peak_assignment = router.assignments().state_bytes();
    let start = Instant::now();
    for chunk in stream.chunks(RETENTION_SAMPLE) {
        router.submit_batch(chunk, &mut chunk_out);
        assignments.extend(chunk_out.iter().map(|s| s.0));
        peak_arena = peak_arena.max(router.tan().arena_bytes());
        peak_assignment = peak_assignment.max(router.assignments().state_bytes());
    }
    WindowedRun {
        assignments,
        peak_arena,
        peak_assignment,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Drives the stream's (txid, inputs) pairs through a retention-aware
/// [`SpvWallet`], returning (peak state bytes, final entries, seconds).
fn run_spv(stream: &[Transaction], k: u32, window: usize) -> (usize, usize, f64) {
    let telemetry = vec![DEFAULT_TELEMETRY; k as usize];
    let mut wallet = SpvWallet::with_retention(k, RetentionPolicy::WindowTxs(window));
    let mut inputs: Vec<optchain_utxo::TxId> = Vec::new();
    let mut peak = 0usize;
    let start = Instant::now();
    for (i, tx) in stream.iter().enumerate() {
        inputs.clear();
        inputs.extend(tx.inputs().iter().map(|op| op.txid));
        wallet.place(tx.id(), &inputs, &telemetry);
        if i % RETENTION_SAMPLE == 0 {
            peak = peak.max(wallet.state_bytes());
        }
    }
    peak = peak.max(wallet.state_bytes());
    (peak, wallet.len(), start.elapsed().as_secs_f64())
}

/// The `--retention` arm (see `main`): memory gate + in-window
/// bit-identity against the unbounded static-telemetry baseline, plus
/// the KeepUnspentAndHubs companion measurement.
fn run_retention_arm(
    stream: &Arc<[Transaction]>,
    k: u32,
    window: usize,
    unbounded_assignments: &[u32],
    unbounded_router: &Router,
) -> RetentionReport {
    println!("placing through a windowed router (WindowTxs({window}))...");
    let mut windowed = Router::builder()
        .shards(k)
        .retention(RetentionPolicy::WindowTxs(window))
        .build();
    let run = run_windowed(stream, &mut windowed);
    let (assignments, peak, seconds) = (run.assignments, run.peak_arena, run.seconds);
    println!(
        "  {seconds:.2}s — {:.0} txs/sec, peak arena {:.1} MiB, \
         peak assignment store {:.1} KiB, {} evicted",
        stream.len() as f64 / seconds,
        peak as f64 / (1024.0 * 1024.0),
        run.peak_assignment as f64 / 1024.0,
        windowed.tan().evicted_nodes(),
    );

    // Reference: one window's worth of stream, unbounded.
    let mut reference = Router::builder().shards(k).build();
    let reference_run = run_windowed(&stream[..window], &mut reference);
    let reference_peak = reference_run.peak_arena;

    // In-window identity. A parent farther than `window` back cannot
    // resolve in the windowed graph, and from the first such reference
    // on, decisions may legitimately diverge (and the divergence
    // propagates through shard sizes). Before it, every decision must
    // be bit-identical to the unbounded baseline.
    let tan = unbounded_router.tan();
    let first_far = tan
        .nodes()
        .position(|u| tan.inputs(u).iter().any(|v| u.index() - v.index() > window));
    let guaranteed = first_far.unwrap_or(stream.len());
    assert_eq!(
        &assignments[..guaranteed],
        &unbounded_assignments[..guaranteed],
        "windowed placement must match unbounded for every tx whose \
         ancestry lies inside the window"
    );
    let identical_total = assignments
        .iter()
        .zip(unbounded_assignments)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "  in-window identity: {guaranteed} txs guaranteed ({} of {} identical overall{})",
        identical_total,
        assignments.len(),
        match first_far {
            Some(i) => format!(", first out-of-window parent at tx {i}"),
            None => String::from(", whole stream in-window"),
        }
    );

    // Checkpoint-time shrink.
    windowed.compact();
    let compacted = windowed.tan().arena_bytes();

    // KeepUnspentAndHubs companion: measured, not gated (its footprint
    // is O(window + unspent set + hubs), workload-dependent).
    let hubs_min_degree = 8u32;
    println!("placing through a KeepUnspentAndHubs(min_degree {hubs_min_degree}) router...");
    let mut hubs = Router::builder()
        .shards(k)
        .retention(RetentionPolicy::KeepUnspentAndHubs {
            min_degree: hubs_min_degree,
        })
        .build();
    let hubs_run = run_windowed(stream, &mut hubs);
    let hubs_seconds = hubs_run.seconds;
    hubs.compact();
    println!(
        "  {hubs_seconds:.2}s — {:.0} txs/sec, {} live ({} retained), arena {:.1} MiB, \
         assignment store {:.1} KiB",
        stream.len() as f64 / hubs_seconds,
        hubs.tan().live_len(),
        hubs.tan().retained_nodes(),
        hubs.tan().arena_bytes() as f64 / (1024.0 * 1024.0),
        hubs.assignments().state_bytes() as f64 / 1024.0,
    );

    // Retention-aware SPV wallet: the client-side deployment of the
    // same window, proven bounded over the full stream (hard-gated
    // against a window-sized reference, like the node-side stores).
    println!("placing through a retention-aware SpvWallet (WindowTxs({window}))...");
    let (spv_peak, spv_entries, spv_seconds) = run_spv(stream, k, window);
    let (spv_reference_peak, _, _) = run_spv(&stream[..window], k, window);
    println!(
        "  {spv_seconds:.2}s — {:.0} txs/sec, {} entries, peak state {:.1} MiB \
         ({:.2}x of a window-sized run)",
        stream.len() as f64 / spv_seconds,
        spv_entries,
        spv_peak as f64 / (1024.0 * 1024.0),
        spv_peak as f64 / spv_reference_peak.max(1) as f64,
    );

    RetentionReport {
        window,
        seconds,
        peak_arena_bytes: peak,
        reference_peak_arena_bytes: reference_peak,
        compacted_arena_bytes: compacted,
        peak_assignment_bytes: run.peak_assignment,
        reference_peak_assignment_bytes: reference_run.peak_assignment,
        in_window_identical: guaranteed,
        first_out_of_window: first_far,
        live_nodes: windowed.tan().live_len(),
        evicted_nodes: windowed.tan().evicted_nodes(),
        hubs_min_degree,
        hubs_arena_bytes: hubs.tan().arena_bytes(),
        hubs_assignment_bytes: hubs.assignments().state_bytes(),
        hubs_live_nodes: hubs.tan().live_len(),
        hubs_retained_nodes: hubs.tan().retained_nodes(),
        hubs_seconds,
        spv_peak_state_bytes: spv_peak,
        spv_reference_peak_state_bytes: spv_reference_peak,
        spv_entries,
        spv_seconds,
    }
}

/// Everything the durability arm measures (recorded in the BENCH json).
struct WalReport {
    window: usize,
    checkpoint_every: u64,
    flush_every: u64,
    full_every: u64,
    /// WAL-backed windowed run over the full stream.
    seconds: f64,
    /// In-RAM windowed comparator over the same stream.
    ram_seconds: f64,
    /// Peak `bytes_on_disk` over the full-stream run (sampled per
    /// chunk, so segment GC has to keep the journal O(window)).
    peak_disk_bytes: u64,
    /// Peak `bytes_on_disk` of a 2x-window reference run (long enough
    /// to reach checkpoint-chain + GC steady state; see run_wal_arm).
    reference_peak_disk_bytes: u64,
    final_disk_bytes: u64,
    /// `Router::recover` wall time from the on-disk journal.
    recovery_seconds: f64,
    /// Checkpoint-writer breakdown over the full-stream run: how many
    /// full snapshots vs deltas were persisted, and their total bytes.
    full_checkpoints: u64,
    delta_checkpoints: u64,
    full_checkpoint_bytes: u64,
    delta_checkpoint_bytes: u64,
}

/// Ceiling for the WAL disk gate: the full-stream journal's peak disk
/// footprint within this factor of a steady-state (2x-window)
/// reference run — segment GC keeps disk O(window), not O(stream).
const WAL_DISK_PEAK_FACTOR: f64 = 3.0;

/// The `--wal` arm: the windowed stream through a `SegmentWal`-backed
/// router — bit-identity against the in-RAM windowed router, the
/// throughput tax, the segment-GC disk bound, and a full
/// close-and-recover cycle from the journal left on disk.
fn run_wal_arm(
    stream: &Arc<[Transaction]>,
    k: u32,
    window: usize,
    full_every: u64,
    scratch: &str,
) -> WalReport {
    let window = window.max(1);
    // Checkpoint four times per window: with delta checkpoints only
    // every `full_every`-th one pays the full encode+compress+write
    // cost (the rest persist just the records since the previous
    // checkpoint), so a denser cadence now buys a ~4× shorter replay
    // tail at recovery without re-inflating the durability tax. The
    // GC-able journal suffix stays O(window), inside the disk gate.
    let checkpoint_every = (window as u64 / 4).max(1_024);
    // The fsync batching policy under measurement: ack in batches of
    // 8192 records, one fdatasync per batch. Against a multi-million
    // txs/sec in-RAM path, ~1 ms of fsync per batch is the entire
    // per-record durability tax, so the batch size is what buys the
    // ≥ 50% gate.
    let flush_every = 8_192u64;
    // Segment roll size scaled to the window: GC can only drop whole
    // sealed segments, so its granularity must be finer than the
    // retention horizon or small runs keep the entire journal in one
    // never-sealed active segment and the O(window) disk gate is
    // meaningless. ~8 sealed segments per window of records (a Submit
    // record frames to ~48 B), clamped to [64 KiB, 4 MiB].
    let segment_bytes = (window as u64 * 6).clamp(64 << 10, 4 << 20);

    println!("placing through an in-RAM windowed router (WAL comparator)...");
    let mut ram = Router::builder()
        .shards(k)
        .retention(RetentionPolicy::WindowTxs(window))
        .build();
    let ram_run = run_windowed(stream, &mut ram);
    println!(
        "  {:.2}s — {:.0} txs/sec",
        ram_run.seconds,
        stream.len() as f64 / ram_run.seconds
    );
    drop(ram);

    let dir = format!("{scratch}.wal-tmp");
    let ref_dir = format!("{scratch}.wal-ref-tmp");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);

    println!(
        "placing through a SegmentWal-backed windowed router \
         (checkpoint every {checkpoint_every}, full snapshot every {full_every} checkpoints, \
         fsync every {flush_every} records)..."
    );
    let wal_router = |path: &str| {
        Router::builder()
            .shards(k)
            .retention(RetentionPolicy::WindowTxs(window))
            .checkpoint_every(checkpoint_every)
            .flush_every(flush_every)
            .full_every(full_every)
            .storage(Box::new(
                SegmentWal::open_with(path, segment_bytes).expect("open WAL dir"),
            ))
            .build()
    };
    let mut durable = wal_router(&dir);
    let mut assignments: Vec<u32> = Vec::with_capacity(stream.len());
    let mut chunk_out: Vec<ShardId> = Vec::new();
    let mut peak_disk = 0u64;
    let start = Instant::now();
    for chunk in stream.chunks(RETENTION_SAMPLE) {
        durable.submit_batch(chunk, &mut chunk_out);
        assignments.extend(chunk_out.iter().map(|s| s.0));
        peak_disk = peak_disk.max(durable.journal_bytes().unwrap_or(0));
    }
    durable.flush_journal().expect("final WAL fsync");
    let seconds = start.elapsed().as_secs_f64();
    let final_disk = durable.journal_bytes().unwrap_or(0);
    peak_disk = peak_disk.max(final_disk);
    let ckpt = durable.checkpoint_stats();
    println!(
        "  {seconds:.2}s — {:.0} txs/sec, peak journal {:.1} MiB ({:.1} MiB after GC)",
        stream.len() as f64 / seconds,
        peak_disk as f64 / (1024.0 * 1024.0),
        final_disk as f64 / (1024.0 * 1024.0),
    );
    let ckpt_count = ckpt.full_checkpoints + ckpt.delta_checkpoints;
    println!(
        "  checkpoints: {} full ({:.1} MiB) + {} delta ({:.1} MiB) — {:.0} KiB/checkpoint",
        ckpt.full_checkpoints,
        ckpt.full_bytes as f64 / (1024.0 * 1024.0),
        ckpt.delta_checkpoints,
        ckpt.delta_bytes as f64 / (1024.0 * 1024.0),
        (ckpt.full_bytes + ckpt.delta_bytes) as f64 / ckpt_count.max(1) as f64 / 1024.0,
    );
    assert_eq!(
        assignments, ram_run.assignments,
        "WAL-backed placement must be bit-identical to the in-RAM router"
    );

    // Reference run for the disk gate: 2x window txs, not one window.
    // A run of exactly `window` records never reaches steady state —
    // its base snapshot lands a quarter-window in (tiny state) and GC
    // never completes a cycle, so it systematically underestimates the
    // steady-state disk floor. Two windows is still O(window) and lets
    // the reference finish a full checkpoint chain + GC cycle; the
    // gate in main() only fires when txs >= 2 * window anyway.
    let ref_len = (2 * window).min(stream.len());
    let reference_peak_disk = if stream.len() > window {
        let mut reference = wal_router(&ref_dir);
        let mut peak = 0u64;
        for chunk in stream[..ref_len].chunks(RETENTION_SAMPLE) {
            reference.submit_batch(chunk, &mut chunk_out);
            peak = peak.max(reference.journal_bytes().unwrap_or(0));
        }
        reference.flush_journal().expect("reference WAL fsync");
        peak.max(reference.journal_bytes().unwrap_or(0))
    } else {
        peak_disk
    };

    // Crash-and-recover: drop the router (the OS files survive), reopen
    // the directory, rebuild. Recovery itself cross-checks every
    // replayed record against a recomputed decision.
    drop(durable);
    let recover_start = Instant::now();
    let recovered = Router::recover(Box::new(
        SegmentWal::open_with(&dir, segment_bytes).expect("reopen WAL dir"),
    ))
    .expect("recover from the on-disk journal");
    let recovery_seconds = recover_start.elapsed().as_secs_f64();
    assert_eq!(
        recovered.assignments().len(),
        stream.len(),
        "recovered router must cover the whole submitted stream"
    );
    let view = recovered.assignments();
    for (id, &expected) in assignments
        .iter()
        .enumerate()
        .take(view.len())
        .skip(view.horizon())
    {
        assert_eq!(
            view.get_index(id),
            Some(expected),
            "recovered live assignment differs at tx {id}"
        );
    }
    println!(
        "  recovered {} txs in {recovery_seconds:.2}s (live assignments verified)",
        stream.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);

    WalReport {
        window,
        checkpoint_every,
        flush_every,
        full_every,
        seconds,
        ram_seconds: ram_run.seconds,
        peak_disk_bytes: peak_disk,
        reference_peak_disk_bytes: reference_peak_disk,
        final_disk_bytes: final_disk,
        recovery_seconds,
        full_checkpoints: ckpt.full_checkpoints,
        delta_checkpoints: ckpt.delta_checkpoints,
        full_checkpoint_bytes: ckpt.full_bytes,
        delta_checkpoint_bytes: ckpt.delta_bytes,
    }
}

fn main() {
    let args = parse_args();
    println!(
        "perf_baseline: {} txs, k = {}, seed = {:#x}{}",
        args.txs,
        args.k,
        args.seed,
        if allocations().is_some() {
            " [alloc-count]"
        } else {
            ""
        }
    );

    println!("generating workload...");
    let gen_start = Instant::now();
    let txs: Vec<_> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(args.seed))
        .take(args.txs as usize)
        .collect();
    println!("  generated in {:.2}s", gen_start.elapsed().as_secs_f64());

    println!("replaying through the naive (seed-equivalent allocating) path...");
    let mut naive_placer = NaiveOptChainPlacer::new(args.k);
    let naive_run: Measured<ReplayOutcome> = measured(|| replay(&txs, &mut naive_placer));
    let naive_tps = args.txs as f64 / naive_run.seconds;
    println!("  {:.2}s — {naive_tps:.0} txs/sec", naive_run.seconds);
    report_allocs("naive path", naive_run.allocs, args.txs, None);

    println!("replaying through the optimized zero-allocation path...");
    let mut opt_placer = OptChainPlacer::new(args.k);
    let opt_run: Measured<ReplayOutcome> = measured(|| replay(&txs, &mut opt_placer));
    let opt_tps = args.txs as f64 / opt_run.seconds;
    println!("  {:.2}s — {opt_tps:.0} txs/sec", opt_run.seconds);
    report_allocs(
        "optimized path",
        opt_run.allocs,
        args.txs,
        Some(MAX_E2E_ALLOCS_PER_TX),
    );

    assert_eq!(
        naive_run.value.assignments, opt_run.value.assignments,
        "optimized and naive paths must place every transaction identically"
    );
    assert_eq!(naive_run.value.cross, opt_run.value.cross);

    // Router parity: the owned submit_batch path against a hand-driven
    // place_into loop under the same (static) telemetry.
    println!("placing through a direct place_into loop (static telemetry)...");
    let telemetry = vec![DEFAULT_TELEMETRY; args.k as usize];
    let direct_run = measured(|| {
        let mut tan = TanGraph::new();
        let mut placer = OptChainPlacer::new(args.k);
        let mut buf = DecisionBuf::new();
        for tx in &txs {
            let node = tan.insert_tx(tx);
            let ctx = PlacementContext::with_epoch(&tan, &telemetry, 0);
            placer.place_into(&ctx, node, &mut buf);
        }
        placer
    });
    let direct_tps = args.txs as f64 / direct_run.seconds;
    println!("  {:.2}s — {direct_tps:.0} txs/sec", direct_run.seconds);
    report_allocs(
        "direct place_into",
        direct_run.allocs,
        args.txs,
        Some(MAX_E2E_ALLOCS_PER_TX),
    );

    // The decision path in isolation: the TaN graph is prebuilt outside
    // the measured section, so the loop is pure register/score/place —
    // this is the "zero allocations per placement" property, pinned
    // strictly. (`register` over a prebuilt graph takes the historical
    // `in_degree_at` route, exercising the hub chunk-directory search.)
    println!("placing over a prebuilt TaN graph (decision path only)...");
    let prebuilt = TanGraph::from_transactions(txs.iter());
    let decision_run = measured(|| {
        let mut placer = OptChainPlacer::new(args.k);
        let mut buf = DecisionBuf::new();
        for node in prebuilt.nodes() {
            let ctx = PlacementContext::with_epoch(&prebuilt, &telemetry, 0);
            placer.place_into(&ctx, node, &mut buf);
        }
        placer
    });
    let decision_tps = args.txs as f64 / decision_run.seconds;
    println!("  {:.2}s — {decision_tps:.0} txs/sec", decision_run.seconds);
    report_allocs(
        "decision path",
        decision_run.allocs,
        args.txs,
        Some(MAX_DECISION_ALLOCS_PER_TX),
    );
    assert_eq!(
        decision_run.value.assignments(),
        direct_run.value.assignments(),
        "prebuilt-graph placement must match online placement"
    );
    drop(prebuilt);

    println!("placing through Router::submit_batch...");
    // The router's initial board is DEFAULT_TELEMETRY — the same values
    // the direct loop pins — so decisions must agree bit for bit.
    let mut router = Router::builder().shards(args.k).build();
    let mut batch_out: Vec<ShardId> = Vec::new();
    let batch_run = measured(|| router.submit_batch(&txs, &mut batch_out));
    let router_tps = args.txs as f64 / batch_run.seconds;
    println!("  {:.2}s — {router_tps:.0} txs/sec", batch_run.seconds);
    report_allocs(
        "router submit_batch",
        batch_run.allocs,
        args.txs,
        Some(MAX_E2E_ALLOCS_PER_TX),
    );

    let direct_assignments: Vec<u32> = direct_run
        .value
        .assignments()
        .to_vec()
        .expect("an unbounded placer retains the full stream");
    let batch_assignments: Vec<u32> = batch_out.iter().map(|s| s.0).collect();
    assert_eq!(
        direct_assignments, batch_assignments,
        "router batch path must place identically to the direct place_into loop"
    );
    assert_eq!(
        router.assignments().to_vec().as_deref(),
        Some(direct_assignments.as_slice())
    );

    // Fleet arm: the sharded front-end over the same stream, driven
    // through the zero-copy detached bulk path. First prove a 1-worker
    // fleet is bit-identical to the router, then measure (and
    // determinism-check) the N-worker configuration.
    println!("placing through a 1-worker RouterFleet (equivalence check)...");
    // `txs` has no further readers: move it into the Arc instead of
    // deep-cloning a second copy of the whole stream.
    let stream: Arc<[Transaction]> = txs.into();
    let single = run_fleet(&stream, args.k, 1, args.sync_interval);
    assert_eq!(
        single.value, batch_assignments,
        "a 1-worker fleet must place identically to Router::submit_batch"
    );
    println!(
        "  {:.2}s — {:.0} txs/sec (assignments bit-identical to the router)",
        single.seconds,
        args.txs as f64 / single.seconds
    );

    println!(
        "placing through a {}-worker RouterFleet (sync every {} txs)...",
        args.fleet_workers, args.sync_interval
    );
    let fleet_run = run_fleet(&stream, args.k, args.fleet_workers, args.sync_interval);
    let fleet_tps = args.txs as f64 / fleet_run.seconds;
    println!("  {:.2}s — {fleet_tps:.0} txs/sec", fleet_run.seconds);
    // Every worker ingests the whole stream (its own placements plus
    // every other worker's, adopted at sync points), so the steady-state
    // allocation budget is per worker-ingested transaction: the same
    // < 0.1 amortized bound as the single-router end-to-end path, paid
    // once per graph replica. Channel buffers are excluded by
    // construction — the bulk path ships `Arc` ranges, not clones.
    report_allocs(
        "fleet steady state (per worker-ingested tx)",
        fleet_run.allocs,
        args.txs * args.fleet_workers as u64,
        Some(MAX_E2E_ALLOCS_PER_TX),
    );
    let fleet_repeat = run_fleet(&stream, args.k, args.fleet_workers, args.sync_interval);
    assert_eq!(
        fleet_run.value, fleet_repeat.value,
        "fleet placement must be deterministic for a fixed partitioner and sync schedule"
    );

    // Retention arm: the bounded-memory lifecycle. A windowed router
    // over the whole stream must (a) hold its peak TaN arena bytes
    // within RETENTION_PEAK_FACTOR of a run over one window's worth of
    // transactions — O(window), not O(stream) — and (b) place every
    // transaction whose parents all sit inside the window exactly like
    // the unbounded router (static-telemetry baseline: the router
    // submit_batch arm above).
    let retention = (args.retention_window > 0 && (args.txs as usize) > args.retention_window)
        .then(|| {
            run_retention_arm(
                &stream,
                args.k,
                args.retention_window,
                &batch_assignments,
                &router,
            )
        });

    // Durability arm: the WAL-backed windowed router (see run_wal_arm).
    let wal = args.wal.then(|| {
        let window = if args.retention_window > 0 {
            args.retention_window
        } else {
            (args.txs as usize / 10).max(1)
        };
        run_wal_arm(&stream, args.k, window, args.full_every, &args.out)
    });
    drop(stream);

    let speedup = naive_run.seconds / opt_run.seconds;
    let router_ratio = router_tps / direct_tps;
    let fleet_ratio = fleet_tps / router_tps;
    let (memo_hits, memo_misses) = opt_placer.l2s_memo_stats();
    let (router_hits, router_misses) = router.l2s_memo_stats();
    let hwm = vm_hwm_kb();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"placement_throughput\",");
    let _ = writeln!(json, "  \"txs\": {},", args.txs);
    let _ = writeln!(json, "  \"k\": {},", args.k);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(
        json,
        "  \"naive\": {{\"seconds\": {:.4}, \"txs_per_sec\": {naive_tps:.1}}},",
        naive_run.seconds
    );
    let _ = writeln!(
        json,
        "  \"optimized\": {{\"seconds\": {:.4}, \"txs_per_sec\": {opt_tps:.1}}},",
        opt_run.seconds
    );
    let _ = writeln!(
        json,
        "  \"direct_place_into\": {{\"seconds\": {:.4}, \"txs_per_sec\": {direct_tps:.1}}},",
        direct_run.seconds
    );
    let _ = writeln!(
        json,
        "  \"decision_only\": {{\"seconds\": {:.4}, \"txs_per_sec\": {decision_tps:.1}}},",
        decision_run.seconds
    );
    let _ = writeln!(
        json,
        "  \"router_batch\": {{\"seconds\": {:.4}, \"txs_per_sec\": {router_tps:.1}}},",
        batch_run.seconds
    );
    let _ = writeln!(
        json,
        "  \"fleet\": {{\"workers\": {}, \"sync_interval\": {}, \"seconds\": {:.4}, \
         \"txs_per_sec\": {fleet_tps:.1}, \"one_worker_identical\": true, \
         \"deterministic\": true}},",
        args.fleet_workers, args.sync_interval, fleet_run.seconds
    );
    match &retention {
        Some(r) => {
            let _ = writeln!(
                json,
                "  \"retention\": {{\"window\": {}, \"seconds\": {:.4}, \
                 \"txs_per_sec\": {:.1}, \"peak_arena_bytes\": {}, \
                 \"reference_peak_arena_bytes\": {}, \"compacted_arena_bytes\": {}, \
                 \"peak_factor\": {:.3}, \"bytes_per_live_tx\": {:.1}, \
                 \"peak_assignment_bytes\": {}, \"reference_peak_assignment_bytes\": {}, \
                 \"assignment_factor\": {:.3}, \
                 \"in_window_identical_txs\": {}, \"first_out_of_window_tx\": {}, \
                 \"live_nodes\": {}, \"evicted_nodes\": {}}},",
                r.window,
                r.seconds,
                args.txs as f64 / r.seconds,
                r.peak_arena_bytes,
                r.reference_peak_arena_bytes,
                r.compacted_arena_bytes,
                r.peak_arena_bytes as f64 / r.reference_peak_arena_bytes.max(1) as f64,
                r.peak_arena_bytes as f64 / r.window.max(1) as f64,
                r.peak_assignment_bytes,
                r.reference_peak_assignment_bytes,
                r.peak_assignment_bytes as f64 / r.reference_peak_assignment_bytes.max(1) as f64,
                r.in_window_identical,
                match r.first_out_of_window {
                    Some(i) => i.to_string(),
                    None => "null".to_string(),
                },
                r.live_nodes,
                r.evicted_nodes,
            );
            let _ = writeln!(
                json,
                "  \"retention_hubs\": {{\"min_degree\": {}, \"seconds\": {:.4}, \
                 \"arena_bytes\": {}, \"assignment_bytes\": {}, \"live_nodes\": {}, \
                 \"retained_nodes\": {}}},",
                r.hubs_min_degree,
                r.hubs_seconds,
                r.hubs_arena_bytes,
                r.hubs_assignment_bytes,
                r.hubs_live_nodes,
                r.hubs_retained_nodes,
            );
            let _ = writeln!(
                json,
                "  \"retention_spv\": {{\"window\": {}, \"seconds\": {:.4}, \
                 \"peak_state_bytes\": {}, \"reference_peak_state_bytes\": {}, \
                 \"spv_factor\": {:.3}, \"entries\": {}}},",
                r.window,
                r.spv_seconds,
                r.spv_peak_state_bytes,
                r.spv_reference_peak_state_bytes,
                r.spv_peak_state_bytes as f64 / r.spv_reference_peak_state_bytes.max(1) as f64,
                r.spv_entries,
            );
        }
        None => {
            let _ = writeln!(json, "  \"retention\": null,");
        }
    }
    match &wal {
        Some(w) => {
            let _ = writeln!(
                json,
                "  \"wal\": {{\"window\": {}, \"checkpoint_every\": {}, \
                 \"flush_every\": {}, \"full_every\": {}, \
                 \"seconds\": {:.4}, \"txs_per_sec\": {:.1}, \
                 \"ram_seconds\": {:.4}, \"wal_ratio\": {:.3}, \
                 \"peak_disk_bytes\": {}, \"reference_peak_disk_bytes\": {}, \
                 \"disk_factor\": {:.3}, \"final_disk_bytes\": {}, \
                 \"recovery_seconds\": {:.4}, \
                 \"full_checkpoints\": {}, \"delta_checkpoints\": {}, \
                 \"full_checkpoint_bytes\": {}, \"delta_checkpoint_bytes\": {}, \
                 \"bytes_per_checkpoint\": {:.1}, \
                 \"recovered_identical\": true}},",
                w.window,
                w.checkpoint_every,
                w.flush_every,
                w.full_every,
                w.seconds,
                args.txs as f64 / w.seconds,
                w.ram_seconds,
                w.ram_seconds / w.seconds,
                w.peak_disk_bytes,
                w.reference_peak_disk_bytes,
                w.peak_disk_bytes as f64 / w.reference_peak_disk_bytes.max(1) as f64,
                w.final_disk_bytes,
                w.recovery_seconds,
                w.full_checkpoints,
                w.delta_checkpoints,
                w.full_checkpoint_bytes,
                w.delta_checkpoint_bytes,
                (w.full_checkpoint_bytes + w.delta_checkpoint_bytes) as f64
                    / (w.full_checkpoints + w.delta_checkpoints).max(1) as f64,
            );
        }
        None => {
            let _ = writeln!(json, "  \"wal\": null,");
        }
    }
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"router_ratio\": {router_ratio:.3},");
    let _ = writeln!(json, "  \"fleet_ratio\": {fleet_ratio:.3},");
    let _ = writeln!(json, "  \"assignments_identical\": true,");
    let _ = writeln!(json, "  \"cross_txs\": {},", opt_run.value.cross);
    let _ = writeln!(
        json,
        "  \"l2s_memo\": {{\"hits\": {memo_hits}, \"misses\": {memo_misses}}},"
    );
    let _ = writeln!(
        json,
        "  \"router_l2s_memo\": {{\"hits\": {router_hits}, \"misses\": {router_misses}}},"
    );
    match (opt_run.allocs, batch_run.allocs, decision_run.allocs) {
        (Some(opt_allocs), Some(router_allocs), Some(decision_allocs)) => {
            let _ = writeln!(
                json,
                "  \"allocs\": {{\"optimized\": {opt_allocs}, \"router_batch\": {router_allocs}, \
                 \"decision_only\": {decision_allocs}, \"naive\": {}}},",
                naive_run.allocs.unwrap_or(0)
            );
        }
        _ => {
            let _ = writeln!(json, "  \"allocs\": null,");
        }
    }
    match hwm {
        Some(kb) => {
            let _ = writeln!(json, "  \"peak_rss_kb\": {kb}");
        }
        None => {
            let _ = writeln!(json, "  \"peak_rss_kb\": null");
        }
    }
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH json");

    println!();
    println!(
        "speedup: {speedup:.2}x (assignments bit-identical, {} cross-TXs)",
        opt_run.value.cross
    );
    println!(
        "router batch: {:.1}% of direct place_into throughput",
        100.0 * router_ratio
    );
    println!(
        "fleet ({} workers): {:.2}x router submit_batch throughput \
         (1-worker bit-identical, N-worker deterministic)",
        args.fleet_workers, fleet_ratio
    );
    println!(
        "l2s memo: {memo_hits} hits / {memo_misses} misses ({:.1}% hit rate)",
        100.0 * memo_hits as f64 / (memo_hits + memo_misses).max(1) as f64
    );
    if let Some(r) = &retention {
        println!(
            "retention WindowTxs({}): peak arena {:.2}x, peak assignment store {:.2}x, \
             SPV wallet {:.2}x of a window-sized run \
             ({} of {} txs bit-identical to unbounded)",
            r.window,
            r.peak_arena_bytes as f64 / r.reference_peak_arena_bytes.max(1) as f64,
            r.peak_assignment_bytes as f64 / r.reference_peak_assignment_bytes.max(1) as f64,
            r.spv_peak_state_bytes as f64 / r.spv_reference_peak_state_bytes.max(1) as f64,
            r.in_window_identical,
            args.txs,
        );
    }
    if let Some(w) = &wal {
        println!(
            "wal (window {}): {:.1}% of in-RAM windowed throughput, \
             peak journal {:.2}x of a 2x-window reference run, recovery {:.2}s, \
             {} full + {} delta checkpoints ({:.0} KiB avg)",
            w.window,
            100.0 * w.ram_seconds / w.seconds,
            w.peak_disk_bytes as f64 / w.reference_peak_disk_bytes.max(1) as f64,
            w.recovery_seconds,
            w.full_checkpoints,
            w.delta_checkpoints,
            (w.full_checkpoint_bytes + w.delta_checkpoint_bytes) as f64
                / (w.full_checkpoints + w.delta_checkpoints).max(1) as f64
                / 1024.0,
        );
    }
    if let Some(kb) = hwm {
        println!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }
    println!("wrote {}", args.out);
    let mut failed = false;
    if let Some(w) = &wal {
        let ratio = w.ram_seconds / w.seconds;
        if args.txs < MIN_GATED_TXS {
            println!("(WAL gates skipped below {MIN_GATED_TXS} txs: warm-up dominates)");
        } else {
            if ratio < args.min_wal_ratio {
                eprintln!(
                    "error: WAL-on throughput {:.1}% of the in-RAM windowed router \
                     (limit {:.0}%)",
                    100.0 * ratio,
                    100.0 * args.min_wal_ratio
                );
                failed = true;
            }
            let disk_factor = w.peak_disk_bytes as f64 / w.reference_peak_disk_bytes.max(1) as f64;
            if w.window >= MIN_GATED_RETENTION_WINDOW
                && args.txs as usize >= 2 * w.window
                && disk_factor > WAL_DISK_PEAK_FACTOR
            {
                eprintln!(
                    "error: WAL peak disk bytes {disk_factor:.2}x of a 2x-window reference run \
                     (limit {WAL_DISK_PEAK_FACTOR}x) — segment GC is not holding disk O(window)"
                );
                failed = true;
            }
        }
    }
    if let Some(r) = &retention {
        // The memory gates: graph, assignment-store, and SPV-wallet
        // bytes must all be O(window), not O(stream). Gated only when
        // the window is big enough that the compaction floor is noise
        // and the stream is long enough to prove growth would have
        // happened.
        if r.window >= MIN_GATED_RETENTION_WINDOW && args.txs as usize >= 2 * r.window {
            let factor = r.peak_arena_bytes as f64 / r.reference_peak_arena_bytes.max(1) as f64;
            if factor > RETENTION_PEAK_FACTOR {
                eprintln!(
                    "error: windowed peak arena bytes {:.2}x of a window-sized run \
                     (limit {RETENTION_PEAK_FACTOR}x) — graph memory is not O(window)",
                    factor
                );
                failed = true;
            }
            let assignment_factor =
                r.peak_assignment_bytes as f64 / r.reference_peak_assignment_bytes.max(1) as f64;
            if assignment_factor > RETENTION_PEAK_FACTOR {
                eprintln!(
                    "error: windowed peak assignment-store bytes {:.2}x of a window-sized \
                     run (limit {RETENTION_PEAK_FACTOR}x) — assignment memory is not O(window)",
                    assignment_factor
                );
                failed = true;
            }
            let spv_factor =
                r.spv_peak_state_bytes as f64 / r.spv_reference_peak_state_bytes.max(1) as f64;
            if spv_factor > RETENTION_PEAK_FACTOR {
                eprintln!(
                    "error: SPV wallet peak state bytes {:.2}x of a window-sized run \
                     (limit {RETENTION_PEAK_FACTOR}x) — wallet memory is not O(window)",
                    spv_factor
                );
                failed = true;
            }
        } else {
            println!(
                "(retention memory gates skipped: window {} below {MIN_GATED_RETENTION_WINDOW} \
                 or stream shorter than 2 windows)",
                r.window
            );
        }
    }
    if speedup < args.min_speedup {
        eprintln!("warning: speedup below the {}x target", args.min_speedup);
        failed = true;
    }
    if router_ratio < args.min_router_ratio {
        eprintln!(
            "warning: router batch path below {:.0}% of direct place_into throughput",
            100.0 * args.min_router_ratio
        );
        failed = true;
    }
    if fleet_ratio < args.min_fleet_ratio {
        eprintln!(
            "warning: fleet throughput below {:.1}x of router submit_batch",
            args.min_fleet_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
