//! Fig 11 — OptChain scalability: the highest transaction rate whose
//! throughput still tracks the offered rate, per shard count.
//!
//! Paper shape: near-linear in the number of shards, exceeding
//! 20,000 tps at 62 shards, with confirmation delay never above 11 s in
//! sustained configurations.

use optchain_bench::{fmt_count, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy};

/// Binary-searches the highest sustainable rate for `k` shards.
fn max_sustainable_rate(k: u32, opts: &Opts) -> (f64, f64) {
    let mut lo = 500.0f64;
    let mut hi = 40_000.0f64;
    let mut best_latency = 0.0;
    for _ in 0..7 {
        let rate = (lo + hi) / 2.0;
        // Probe streams scale with the probed rate (capped for memory).
        let n = ((rate * opts.horizon_s.min(40.0)) as u64).clamp(20_000, 1_200_000);
        let txs = shared_workload(n, opts.seed);
        let config = sim_config(k, rate, n, opts.seed);
        let block_txs = config.block_txs;
        let m = Simulation::run_on(config, Strategy::OptChain, &txs).expect("valid config");
        let sustained = m.steady_throughput() >= rate * 0.93 && m.backlog <= (k * block_txs) as u64;
        if sustained {
            best_latency = m.mean_latency();
            lo = rate;
        } else {
            hi = rate;
        }
    }
    (lo, best_latency)
}

fn main() {
    let opts = Opts::parse();
    println!(
        "Fig 11: OptChain max sustainable rate vs #shards ({:.0}s probes)\n",
        opts.horizon_s.min(40.0),
    );
    let mut table = Table::new(["shards", "max rate (tps)", "mean latency (s)", "tps/shard"]);
    let mut rows = Vec::new();
    for k in [4u32, 8, 16, 24, 32, 48, 62] {
        let (rate, latency) = max_sustainable_rate(k, &opts);
        rows.push((k, rate, latency));
        table.row([
            k.to_string(),
            format!("{rate:.0}"),
            format!("{latency:.1}"),
            format!("{:.0}", rate / k as f64),
        ]);
    }
    println!("{table}");
    let (k62, rate62, _) = rows[rows.len() - 1];
    println!(
        "at {k62} shards OptChain sustains {} tps (paper: >20,000 at 62 shards; \
         absolute capacity depends on the consensus substrate — the shape to check \
         is near-linear scaling)",
        fmt_count(rate62 as u64)
    );
}
