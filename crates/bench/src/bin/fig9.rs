//! Fig 9 — maximum transaction latency.
//!
//! Paper shape at 6000 tps / 16 shards: OptChain ≤ ~101 s while
//! OmniLedger/Metis/Greedy reach 1309/1346/629 s; across the best
//! configurations OptChain never exceeds ~103 s.

use optchain_bench::{cell_txs, parallel_runs, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let rates = [2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0];

    println!(
        "Fig 9a: maximum confirmation latency (s) at 16 shards ({:.0}s of injected load per cell)\n",
        opts.horizon_s,
    );
    let mut table = Table::new(["rate", "OptChain", "OmniLedger", "Metis", "Greedy"]);
    for &rate in &rates {
        let n = cell_txs(rate, &opts);
        let txs = shared_workload(n, opts.seed);
        let mut results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
            let config = sim_config(16, rate, n, opts.seed);
            Simulation::run_on(config, *strategy, &txs).expect("valid config")
        });
        table.row(
            std::iter::once(format!("{rate:.0}")).chain(
                results
                    .iter_mut()
                    .map(|m| format!("{:.1}", m.max_latency())),
            ),
        );
    }
    println!("{table}");

    println!("Fig 9b: maximum latency at the paper's (rate, #shards) pairs");
    let pairs = [
        (2_000.0, 6u32),
        (3_000.0, 8),
        (4_000.0, 10),
        (5_000.0, 14),
        (6_000.0, 16),
    ];
    let mut best = Table::new([
        "rate",
        "shards",
        "OptChain",
        "OmniLedger",
        "Metis",
        "Greedy",
    ]);
    for &(rate, k) in &pairs {
        let n = cell_txs(rate, &opts);
        let txs = shared_workload(n, opts.seed);
        let mut results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
            let config = sim_config(k, rate, n, opts.seed);
            Simulation::run_on(config, *strategy, &txs).expect("valid config")
        });
        best.row(
            [format!("{rate:.0}"), k.to_string()].into_iter().chain(
                results
                    .iter_mut()
                    .map(|m| format!("{:.1}", m.max_latency())),
            ),
        );
    }
    println!("{best}");
}
