//! Fig 5 — number of committed transactions per time window at 6000 tps
//! and 16 shards.
//!
//! Paper shape: OptChain, OmniLedger and Greedy commit a near-constant
//! number per 50 s window; Metis is inefficient early and oscillates
//! (shard congestion); every line drops at the end when the stream runs
//! out.

use optchain_bench::{cell_txs, parallel_runs, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let n = cell_txs(6_000.0, &opts);
    let txs = shared_workload(n, opts.seed);
    let config = sim_config(16, 6_000.0, n, opts.seed);
    println!(
        "Fig 5: committed txs per {:.0}-second window at 6000 tps / 16 shards\n",
        config.commit_window_s,
    );
    let results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
        Simulation::run_on(config.clone(), *strategy, &txs).expect("valid config")
    });
    let windows = results
        .iter()
        .map(|m| m.commits_per_window.counts().len())
        .max()
        .unwrap_or(0);
    let mut table = Table::new([
        "window start (s)",
        "OptChain",
        "OmniLedger",
        "Metis",
        "Greedy",
    ]);
    for w in 0..windows {
        table.row(
            std::iter::once(format!("{:.0}", w as f64 * config.commit_window_s)).chain(
                results.iter().map(|m| {
                    m.commits_per_window
                        .counts()
                        .get(w)
                        .copied()
                        .unwrap_or(0)
                        .to_string()
                }),
            ),
        );
    }
    println!("{table}");
    for m in &results {
        println!(
            "{:<12} committed {} of {} (makespan {:.0}s)",
            m.strategy,
            optchain_bench::fmt_count(m.committed),
            optchain_bench::fmt_count(m.injected),
            m.makespan_s
        );
    }
}
