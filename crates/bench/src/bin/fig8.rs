//! Fig 8 — average transaction (confirmation) latency.
//!
//! (a) all strategies at 16 shards vs rate; (b) the per-rate best
//! configurations.
//!
//! Paper shape: OptChain stays below ~10.5 s everywhere (8.7 s at
//! 4000 tps); OmniLedger reaches 346 s at 6000 tps / 16 shards (a 93%
//! reduction for OptChain); Metis is always high despite its minimal
//! cross-TX count.

use optchain_bench::{cell_txs, parallel_runs, shared_workload, sim_config, Opts};
use optchain_metrics::Table;
use optchain_sim::{Simulation, Strategy};

fn main() {
    let opts = Opts::parse();
    let rates = [2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0];

    println!(
        "Fig 8a: mean confirmation latency (s) at 16 shards ({:.0}s of injected load per cell)\n",
        opts.horizon_s,
    );
    let mut table = Table::new(["rate", "OptChain", "OmniLedger", "Metis", "Greedy"]);
    for &rate in &rates {
        let n = cell_txs(rate, &opts);
        let txs = shared_workload(n, opts.seed);
        let results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
            let config = sim_config(16, rate, n, opts.seed);
            Simulation::run_on(config, *strategy, &txs).expect("valid config")
        });
        table.row(
            std::iter::once(format!("{rate:.0}"))
                .chain(results.iter().map(|m| format!("{:.1}", m.mean_latency()))),
        );
    }
    println!("{table}");

    println!("Fig 8b: mean latency at the paper's (rate, #shards) pairs");
    let pairs = [
        (2_000.0, 6u32),
        (3_000.0, 8),
        (4_000.0, 10),
        (5_000.0, 14),
        (6_000.0, 16),
    ];
    let mut best = Table::new([
        "rate",
        "shards",
        "OptChain",
        "OmniLedger",
        "Metis",
        "Greedy",
    ]);
    for &(rate, k) in &pairs {
        let n = cell_txs(rate, &opts);
        let txs = shared_workload(n, opts.seed);
        let results = parallel_runs(Strategy::figure_set().to_vec(), |strategy| {
            let config = sim_config(k, rate, n, opts.seed);
            Simulation::run_on(config, *strategy, &txs).expect("valid config")
        });
        best.row(
            [format!("{rate:.0}"), k.to_string()]
                .into_iter()
                .chain(results.iter().map(|m| format!("{:.1}", m.mean_latency()))),
        );
    }
    println!("{best}");
}
