//! Micro-benchmarks of TaN graph construction: bulk build from a
//! Bitcoin-like stream (CSR pool + chunk arena + SplitMix64 index) and
//! the hub-heavy worst case where one node accumulates thousands of
//! spender chunks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use optchain_tan::{NodeId, TanGraph};
use optchain_utxo::TxId;
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

fn tan_insert(c: &mut Criterion) {
    let n = 50_000usize;
    let txs: Vec<_> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(3))
        .take(n)
        .collect();
    let mut group = c.benchmark_group("tan_insert");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_function("bitcoin_like_50k", |b| {
        b.iter(|| TanGraph::from_transactions(txs.iter()))
    });
    group.bench_function("bitcoin_like_50k_prealloc", |b| {
        b.iter(|| {
            let mut g = TanGraph::with_capacity(n);
            for tx in &txs {
                g.insert_tx(tx);
            }
            g
        })
    });
    group.bench_function("hub_fanout_50k", |b| {
        b.iter(|| {
            let mut g = TanGraph::new();
            g.insert(TxId(0), &[]);
            for i in 1..n as u64 {
                g.insert(TxId(i), &[TxId(0)]);
            }
            g.in_degree(NodeId(0))
        })
    });
    group.bench_function("node_lookup_50k", |b| {
        let g = TanGraph::from_transactions(txs.iter());
        b.iter(|| {
            let mut found = 0usize;
            for i in 0..n as u64 {
                if g.node(TxId(i)).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    group.finish();
}

criterion_group!(benches, tan_insert);
criterion_main!(benches);
