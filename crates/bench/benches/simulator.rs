//! Criterion benchmarks for the discrete-event simulator: wall-clock cost
//! per simulated transaction under each protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use optchain_sim::{CrossShardProtocol, SimConfig, Simulation, Strategy};

fn simulator(c: &mut Criterion) {
    let mut config = SimConfig::paper();
    config.total_txs = 20_000;
    config.tx_rate = 4_000.0;
    config.n_shards = 8;
    let txs = Simulation::workload(&config);

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(config.total_txs));
    for strategy in [Strategy::OptChain, Strategy::OmniLedger] {
        group.bench_with_input(
            BenchmarkId::new("omniledger_lock", strategy.label()),
            &strategy,
            |b, &strategy| b.iter(|| Simulation::run_on(config.clone(), strategy, &txs).unwrap()),
        );
    }
    let mut yank_config = config.clone();
    yank_config.protocol = CrossShardProtocol::RapidChainYank;
    group.bench_function("rapidchain_yank/OptChain", |b| {
        b.iter(|| Simulation::run_on(yank_config.clone(), Strategy::OptChain, &txs).unwrap())
    });
    group.finish();
}

criterion_group!(benches, simulator);
criterion_main!(benches);
