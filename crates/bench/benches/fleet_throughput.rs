//! Micro-benchmark for the sharded placement front-end: the same
//! stream is placed through `Router::submit_batch` (one thread) and
//! through `RouterFleet`s of 1/2/4 workers driving the zero-copy
//! detached bulk path, at several sync cadences. On a multi-core
//! machine the N-worker fleet should scale past the single router
//! (`perf_baseline --fleet-workers` gates the 1M-tx comparison); on a
//! single core it measures pure coordination overhead.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use optchain_core::{Router, RouterFleet, ShardId};
use optchain_utxo::Transaction;
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

const CHUNK: usize = 2_048;

fn run_fleet(stream: &Arc<[Transaction]>, k: u32, workers: usize, sync_interval: u64) {
    let fleet = RouterFleet::builder()
        .shards(k)
        .workers(workers)
        .partitioner(|client| client as usize)
        .sync_interval(sync_interval)
        .expected_total(stream.len() as u64)
        .build();
    let handles: Vec<_> = (0..workers as u64).map(|c| fleet.handle(c)).collect();
    for (i, start) in (0..stream.len()).step_by(CHUNK).enumerate() {
        let end = (start + CHUNK).min(stream.len());
        let _ = handles[i % workers].submit_batch_detached(stream, start..end);
    }
    fleet.flush();
}

fn fleet_throughput(c: &mut Criterion) {
    let n = 20_000usize;
    let txs: Vec<Transaction> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(1))
        .take(n)
        .collect();
    let stream: Arc<[Transaction]> = txs.clone().into();
    let k = 16u32;

    let mut group = c.benchmark_group("fleet_throughput");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    group.bench_function("router_submit_batch", |b| {
        let mut out: Vec<ShardId> = Vec::new();
        b.iter(|| {
            let mut router = Router::builder().shards(k).build();
            router.submit_batch(&txs, &mut out);
        })
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("fleet_detached", workers),
            &workers,
            |b, &workers| b.iter(|| run_fleet(&stream, k, workers, 5_000)),
        );
    }
    for sync_interval in [500u64, 5_000, 0] {
        group.bench_with_input(
            BenchmarkId::new("fleet_4w_sync", sync_interval),
            &sync_interval,
            |b, &sync_interval| b.iter(|| run_fleet(&stream, k, 4, sync_interval)),
        );
    }
    group.finish();
}

criterion_group!(benches, fleet_throughput);
criterion_main!(benches);
