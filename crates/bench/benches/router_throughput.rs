//! Micro-benchmark proving the owned `Router` API adds no measurable
//! overhead over the borrow-style hot path: the same stream is placed
//! through a hand-driven `place_into` loop (caller owns graph + buffers,
//! static telemetry), through `Router::submit_batch`, through one-at-a-
//! time `Router::submit_tx`, and through a `PlacementSession`. The
//! `perf_baseline` binary runs the batch comparison at 1M-tx scale and
//! gates on it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use optchain_core::{
    DecisionBuf, OptChainPlacer, PlacementContext, Router, ShardId, DEFAULT_TELEMETRY,
};
use optchain_tan::TanGraph;
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

fn router_throughput(c: &mut Criterion) {
    let n = 20_000usize;
    let txs: Vec<_> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(1))
        .take(n)
        .collect();
    let mut group = c.benchmark_group("router_throughput");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::new("direct_place_into", k), &k, |b, &k| {
            let telemetry = vec![DEFAULT_TELEMETRY; k as usize];
            b.iter(|| {
                let mut tan = TanGraph::new();
                let mut placer = OptChainPlacer::new(k);
                let mut buf = DecisionBuf::new();
                for tx in &txs {
                    let node = tan.insert_tx(tx);
                    let ctx = PlacementContext::with_epoch(&tan, &telemetry, 0);
                    placer.place_into(&ctx, node, &mut buf);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("router_submit_batch", k), &k, |b, &k| {
            let mut out: Vec<ShardId> = Vec::new();
            b.iter(|| {
                let mut router = Router::builder().shards(k).build();
                router.submit_batch(&txs, &mut out);
            })
        });
        group.bench_with_input(BenchmarkId::new("router_submit_tx", k), &k, |b, &k| {
            b.iter(|| {
                let mut router = Router::builder().shards(k).build();
                for tx in &txs {
                    router.submit_tx(tx);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("router_session", k), &k, |b, &k| {
            b.iter(|| {
                let mut router = Router::builder().shards(k).build();
                let mut session = router.session();
                for tx in &txs {
                    router.submit_tx_in(&mut session, tx);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, router_throughput);
criterion_main!(benches);
