//! Criterion micro-benchmarks for the placement strategies: cost per
//! placed transaction. The paper's practicality claim is that OptChain is
//! "lightweight ... executed at the users side" with `O(k)` expected cost
//! per transaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use optchain_core::replay::replay;
use optchain_core::{GreedyPlacer, OptChainPlacer, RandomPlacer, T2sPlacer};
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

fn placement(c: &mut Criterion) {
    let n = 20_000usize;
    let txs: Vec<_> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(1))
        .take(n)
        .collect();
    let mut group = c.benchmark_group("placement");
    group.throughput(Throughput::Elements(n as u64));
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::new("optchain", k), &k, |b, &k| {
            b.iter(|| replay(&txs, &mut OptChainPlacer::new(k)))
        });
        group.bench_with_input(BenchmarkId::new("t2s", k), &k, |b, &k| {
            b.iter(|| replay(&txs, &mut T2sPlacer::new(k)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", k), &k, |b, &k| {
            b.iter(|| replay(&txs, &mut GreedyPlacer::new(k)))
        });
        group.bench_with_input(BenchmarkId::new("random", k), &k, |b, &k| {
            b.iter(|| replay(&txs, &mut RandomPlacer::new(k)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = placement
}
criterion_main!(benches);
