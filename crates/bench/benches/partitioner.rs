//! Criterion benchmarks for the Metis-like multilevel partitioner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use optchain_partition::{coarsen, partition_kway, CsrGraph};
use optchain_tan::TanGraph;
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

fn graph(n: usize) -> CsrGraph {
    let txs: Vec<_> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(5))
        .take(n)
        .collect();
    CsrGraph::from_tan(&TanGraph::from_transactions(txs.iter()))
}

fn partitioner(c: &mut Criterion) {
    let g = graph(30_000);
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    group.bench_function("coarsen_30k", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            coarsen(&g, &mut rng)
        })
    });
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::new("kway_30k", k), &k, |b, &k| {
            b.iter(|| partition_kway(&g, k, 0.1, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, partitioner);
criterion_main!(benches);
