//! Criterion benchmarks for the workload generator and TaN construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use optchain_tan::TanGraph;
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

fn workload(c: &mut Criterion) {
    let n = 50_000usize;
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_function("generate_50k", |b| {
        b.iter(|| {
            WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(3))
                .take(n)
                .count()
        })
    });
    let txs: Vec<_> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(3))
        .take(n)
        .collect();
    group.bench_function("tan_build_50k", |b| {
        b.iter(|| TanGraph::from_transactions(txs.iter()))
    });
    group.bench_function("trace_roundtrip_50k", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            optchain_workload::write_trace(&mut buf, &txs).unwrap();
            optchain_workload::read_trace(buf.as_slice()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, workload);
criterion_main!(benches);
