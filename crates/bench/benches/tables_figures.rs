//! Scaled-down versions of every table/figure experiment, so
//! `cargo bench` exercises the full harness end to end. The dedicated
//! binaries (`cargo run --release -p optchain-bench --bin table1` etc.)
//! regenerate the actual numbers at realistic scale.

use criterion::{criterion_group, criterion_main, Criterion};

use optchain_core::replay::replay;
use optchain_core::{OptChainPlacer, OraclePlacer, RandomPlacer};
use optchain_partition::{partition_kway, CsrGraph};
use optchain_sim::{SimConfig, Simulation, Strategy};
use optchain_tan::stats::TanStats;
use optchain_tan::TanGraph;
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

fn stream(n: usize) -> Vec<optchain_utxo::Transaction> {
    WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(0xB17C04))
        .take(n)
        .collect()
}

fn sim_cell(strategy: Strategy, txs: &[optchain_utxo::Transaction]) -> f64 {
    let mut config = SimConfig::paper();
    config.n_shards = 8;
    config.tx_rate = 3_000.0;
    config.total_txs = txs.len() as u64;
    config.commit_window_s = 2.0;
    Simulation::run_on(config, strategy, txs)
        .expect("valid config")
        .mean_latency()
}

fn tables_figures(c: &mut Criterion) {
    let txs = stream(15_000);
    let mut group = c.benchmark_group("tables_figures");
    group.sample_size(10);

    group.bench_function("table1_cell_k16", |b| {
        b.iter(|| {
            let opt = replay(&txs, &mut OptChainPlacer::new(16));
            let rand = replay(&txs, &mut RandomPlacer::new(16));
            (opt.cross, rand.cross)
        })
    });

    group.bench_function("table1_metis_oracle_k16", |b| {
        let tan = TanGraph::from_transactions(txs.iter());
        let csr = CsrGraph::from_tan(&tan);
        b.iter(|| {
            let part = partition_kway(&csr, 16, 0.1, 7);
            replay(&txs, &mut OraclePlacer::new(16, part)).cross
        })
    });

    group.bench_function("fig2_tan_stats", |b| {
        let tan = TanGraph::from_transactions(txs.iter());
        b.iter(|| TanStats::compute(&tan).average_degree)
    });

    group.bench_function("fig3_cell_optchain", |b| {
        b.iter(|| sim_cell(Strategy::OptChain, &txs))
    });

    group.bench_function("fig3_cell_omniledger", |b| {
        b.iter(|| sim_cell(Strategy::OmniLedger, &txs))
    });

    group.finish();
}

criterion_group!(benches, tables_figures);
criterion_main!(benches);
