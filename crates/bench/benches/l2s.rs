//! Criterion micro-benchmarks for the L2S estimator: closed-form
//! inclusion–exclusion vs numeric integration, across involved-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use optchain_core::{L2sEstimator, ShardTelemetry};

fn l2s(c: &mut Criterion) {
    let telemetry: Vec<ShardTelemetry> = (0..16)
        .map(|i| ShardTelemetry::new(0.05 + 0.01 * i as f64, 0.5 + 0.1 * i as f64))
        .collect();
    let mut group = c.benchmark_group("l2s");
    for m in [1usize, 2, 4, 8] {
        let shards: Vec<u32> = (0..m as u32).collect();
        group.bench_with_input(BenchmarkId::new("closed_form", m), &shards, |b, shards| {
            b.iter(|| L2sEstimator::expected_max(&telemetry, shards))
        });
        group.bench_with_input(BenchmarkId::new("numeric", m), &shards, |b, shards| {
            b.iter(|| L2sEstimator::expected_max_numeric(&telemetry, shards))
        });
    }
    // The full Algorithm-1 step: score all k candidate shards.
    group.bench_function("score_all_16_shards", |b| {
        let est = L2sEstimator::new();
        b.iter(|| {
            (0..16u32)
                .map(|j| est.score(&telemetry, &[0, 3], j))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, l2s);
criterion_main!(benches);
