//! Head-to-head micro-benchmark of the placement hot path: the
//! seed-equivalent allocating OptChain implementation vs the optimized
//! zero-allocation `place_into` path, across shard counts. The
//! `perf_baseline` binary runs the same comparison at 1M-tx scale and
//! records it to `BENCH_placement.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use optchain_core::replay::replay;
use optchain_core::{NaiveOptChainPlacer, OptChainPlacer};
use optchain_workload::{WorkloadConfig, WorkloadGenerator};

fn placement_throughput(c: &mut Criterion) {
    let n = 20_000usize;
    let txs: Vec<_> = WorkloadGenerator::new(WorkloadConfig::bitcoin_like().with_seed(1))
        .take(n)
        .collect();
    let mut group = c.benchmark_group("placement_throughput");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::new("optimized", k), &k, |b, &k| {
            b.iter(|| replay(&txs, &mut OptChainPlacer::new(k)))
        });
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, &k| {
            b.iter(|| replay(&txs, &mut NaiveOptChainPlacer::new(k)))
        });
    }
    group.finish();
}

criterion_group!(benches, placement_throughput);
criterion_main!(benches);
