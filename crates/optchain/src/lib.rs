//! **OptChain** — optimal transaction placement for scalable blockchain
//! sharding, reproduced in Rust.
//!
//! This facade crate re-exports the public API of the whole workspace:
//!
//! * [`core`] — the placement algorithm (T2S, L2S, temporal fitness)
//!   and the comparison strategies;
//! * [`utxo`] — the UTXO transaction model;
//! * [`tan`] — the Transactions-as-Nodes online DAG;
//! * [`workload`] — synthetic Bitcoin-like streams;
//! * [`partition`] — offline Metis-like k-way partitioning;
//! * [`sim`] — the sharded-blockchain discrete-event simulator;
//! * [`metrics`] — histograms, CDFs, time series;
//! * [`server`] / [`client`] — the network-facing placement service
//!   (length-prefixed TCP protocol, fee-ordered admission, typed
//!   overload shedding) and its blocking client.
//!
//! # Quickstart
//!
//! A [`core::Router`] owns the placement state — the TaN graph, the
//! strategy, the telemetry board — behind one submission interface:
//!
//! ```
//! use optchain::prelude::*;
//!
//! let mut router = Router::builder().shards(8).strategy(Strategy::OptChain).build();
//!
//! // Stream transactions in, get shard assignments out.
//! let txs = optchain::workload::generate(WorkloadConfig::small().with_seed(7), 2_000);
//! let mut shards = Vec::new();
//! router.submit_batch(&txs, &mut shards);
//! assert_eq!(shards.len(), txs.len());
//!
//! // Strategies swap at runtime; `replay_router` replays a stream with
//! // the paper's offline telemetry proxy and tallies cross-shard txs.
//! let mut random = Router::builder().shards(8).strategy(Strategy::OmniLedger).build();
//! let optchain = replay_router(&txs, &mut Router::builder().shards(8).build());
//! let omniledger = replay_router(&txs, &mut random);
//! assert!(optchain.cross_fraction() < omniledger.cross_fraction());
//! ```
//!
//! Multiple clients of one router hold [`core::PlacementSession`]
//! handles, which keep per-client L2S memos warm; the borrow-style
//! [`core::Placer`] trait and [`core::replay`](core::replay::replay)
//! remain for callers that own their own graph.
//!
//! # Single `Router` vs `RouterFleet` — when to use which
//!
//! The [`core::RouterFleet`] shards the ingress across N worker
//! routers (one thread each, partitioned by client key, with periodic
//! TaN cross-sync). Pick by deployment:
//!
//! * **`Router`** — one decision stream, bit-exact experiment replays,
//!   figure/table reproduction, embedding placement inside another
//!   single-threaded system (the simulator's client-side mode). One
//!   core is enough for ~10⁶ placements/sec; every golden test is
//!   stated against it.
//! * **`RouterFleet`** — a placement *service* in front of many
//!   concurrent clients, when one core caps ingestion. Same builder
//!   knobs plus `workers(n)`, `sync_interval(txs)` and
//!   `partitioner(fn)`; per-client [`core::FleetHandle`]s submit
//!   synchronously (`submit`/`submit_batch`) or fire-and-forget
//!   (`submit_detached` + `drain`). A 1-worker fleet is bit-identical
//!   to a `Router`; with N workers each worker sees a partial,
//!   periodically-synced TaN graph, so decisions trade a bounded
//!   staleness (≤ `sync_interval` submissions) for near-linear ingest
//!   scaling.
//!
//! ```
//! use optchain::prelude::*;
//!
//! let fleet = RouterFleet::builder().shards(8).workers(2).sync_interval(1_000).build();
//! let alice = fleet.handle(1);
//! let s0 = alice.submit(TxId(0), &[]);
//! let s1 = alice.submit(TxId(1), &[TxId(0)]);
//! assert_eq!(s0, s1);
//! ```
//!
//! # Streaming deployments: pick a `RetentionPolicy`
//!
//! By default every router keeps the whole TaN graph and score matrix
//! — right for experiments, wrong for a service that ingests forever.
//! A [`core::RetentionPolicy`] bounds the lifecycle (on `Router` and
//! `RouterFleet` alike — each fleet worker holds a graph replica, so
//! the policy multiplies by the worker count):
//!
//! * `Unbounded` — replays, tables, figures; bit-exact history.
//! * `WindowTxs(n)` — keep the last `n` transactions; memory is
//!   O(window) no matter how long the stream runs. Spends of evicted
//!   outputs degrade like pre-history spends; every transaction whose
//!   parents sit inside the window places bit-identically to
//!   `Unbounded`. Pick `n` well above the workload's typical
//!   spend-distance (the recorded baseline uses 100k).
//! * `KeepUnspentAndHubs { min_degree }` — window plus retained
//!   survivors: aged unspent outputs and high-fanout hubs stay
//!   resolvable (and keep their T2S pull) indefinitely. In a fleet
//!   this also prunes cross-sync deltas to the retained set.
//!
//! The policy bounds *everything* per-node: the TaN graph, the T2S
//! score matrix, and the assignment history (a windowed
//! [`core::AssignmentStore`] — `router.assignments().get(node)` reads
//! `None` for evicted entries while `len()` keeps counting the whole
//! stream). The client-side [`core::SpvWallet`] accepts the same
//! policies through [`core::SpvWallet::with_retention`].
//!
//! ```
//! use optchain::prelude::*;
//!
//! let mut router = Router::builder()
//!     .shards(8)
//!     .retention(RetentionPolicy::WindowTxs(100_000))
//!     .build();
//! let txs = optchain::workload::generate(WorkloadConfig::small().with_seed(7), 2_000);
//! let mut shards = Vec::new();
//! router.submit_batch(&txs, &mut shards);
//! router.compact(); // checkpoint-time shrink
//! assert_eq!(router.assignments().len(), txs.len());
//! ```
//!
//! `Router::snapshot` under a policy records the v3 windowed
//! checkpoint (horizon, stable-id remap, engine state, and the
//! O(window) assignment store), so `warm_start` of a windowed router
//! is bit-exact — and the checkpoint itself stops scaling with the
//! stream. Legacy v2 snapshots (full assignment history) stay
//! readable.
//!
//! # Turn on the Rebalancer: dynamic re-sharding
//!
//! Static placement commits to a shard at first sight; when the
//! workload later concentrates on a few hub outputs, the shard that
//! received the hub eats the skew forever. `.rebalancer(policy)` adds
//! a rebalancer that watches per-shard load, scores
//! candidate [`core::Move`]s with a cost model (migration bytes vs
//! saved future cross-shard traffic), and commits move batches at
//! epoch boundaries through a two-phase protocol — in-flight
//! placements resolve against the pre-epoch assignment, the commit
//! atomically re-homes the moved nodes. Placement stays deterministic
//! (same stream + same policy = same assignments, moves, and
//! counters), and a rebalancer that never triggers is bit-identical
//! to no rebalancer at all:
//!
//! ```
//! use optchain::prelude::*;
//!
//! let mut router = Router::builder()
//!     .shards(4)
//!     .rebalancer(
//!         RebalancePolicy::default()
//!             .with_epoch_interval(250)
//!             .with_min_in_degree(2),
//!     )
//!     .build();
//!
//! // A hot-spot stream: 2 hub outputs draw 70 % of spends from tx 300 on.
//! let config = WorkloadConfig::small()
//!     .with_seed(13)
//!     .with_hotspot(HotSpotConfig { hubs: 2, p_hot: 0.7, start: 300 });
//! let txs = optchain::workload::generate(config, 3_000);
//! let mut shards = Vec::new();
//! router.submit_batch(&txs, &mut shards);
//!
//! // Epochs committed, hubs re-homed — and every move is observable.
//! let stats = router.rebalance_stats();
//! assert!(stats.epochs_committed > 0 && stats.nodes_moved > 0);
//! let mut moves: Vec<Move> = Vec::new();
//! router.drain_rebalance_moves(&mut moves);
//! assert_eq!(moves.len() as u64, stats.nodes_moved);
//! assert!(moves.iter().all(|m| m.from != m.to && m.bytes > 0));
//! ```
//!
//! [`core::RebalancePolicy`] bounds the blast radius: an epoch every
//! `epoch_interval` submissions, at most `max_moves_per_epoch` moves
//! and `byte_budget_per_epoch` migrated bytes per epoch, and nothing
//! moves at all until some shard exceeds `utilization_trigger`
//! (default 1.15× the mean) — so a balanced workload never pays for
//! the machinery. `RouterFleet::builder().rebalancer(...)` gives the
//! dispatcher the same knob, and the TCP server surfaces the
//! counters (`optchain_rebalance_*`, per-shard acks, the cross-shard
//! ratio) on its `/metrics` endpoint. PERF.md §9 has the measured
//! budget-vs-benefit curve; `rebalance_curve` (in `optchain-bench`)
//! records it and CI gates it against `BENCH_rebalance.json`.
//!
//! # Recover after a crash: the durable node
//!
//! `.storage(backend)` turns a router (or every fleet worker, via
//! `RouterFleetBuilder::storage`) into a **durable placement node**:
//! each acknowledged submission and telemetry change is journaled to a
//! write-ahead log before the ack, checkpoints land periodically as a
//! **chain** — a full zero-run-length-compressed snapshot every
//! `full_every`-th time, cheap *delta* checkpoints (just the records
//! since the previous one) in between — and [`core::Router::recover`]
//! rebuilds a **bit-identical** router from whatever survived: base
//! snapshot plus delta chain plus WAL tail, torn tail frames
//! truncated, shards re-derived deterministically during replay.
//! Backends implement the [`core::Storage`] trait:
//! [`core::SegmentWal`] (on-disk segments with CRC-framed records,
//! fsync-batched acks, and retention-driven segment GC) for real
//! deployments, [`core::MemStorage`] for tests, and
//! [`core::FailpointStorage`] for deterministic crash injection.
//!
//! ```
//! use optchain::prelude::*;
//!
//! let dir = std::env::temp_dir().join("optchain-facade-recover-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut router = Router::builder()
//!     .shards(8)
//!     .retention(RetentionPolicy::WindowTxs(100_000))
//!     .checkpoint_every(512) // checkpoint cadence, in journaled records
//!     .full_every(8) // every 8th checkpoint is a full snapshot; the rest are deltas
//!     .storage(Box::new(SegmentWal::open(&dir).unwrap()))
//!     .build();
//! let txs = optchain::workload::generate(WorkloadConfig::small().with_seed(7), 2_000);
//! let mut shards = Vec::new();
//! router.submit_batch(&txs, &mut shards);
//! // Acks are fsync-batched; a graceful shutdown flushes the tail.
//! router.flush_journal().unwrap();
//! // The checkpoint writer's split is observable: mostly deltas.
//! let stats: CheckpointStats = router.checkpoint_stats();
//! assert!(stats.delta_checkpoints > stats.full_checkpoints);
//! drop(router); // a kill -9 from here on loses nothing acked
//!
//! // The restarted process reopens the same directory…
//! let mut recovered = Router::recover(Box::new(SegmentWal::open(&dir).unwrap())).unwrap();
//! assert_eq!(recovered.assignments().len(), txs.len());
//! // …and keeps deciding exactly where the crashed one left off.
//! let shard = recovered.submit(TxId(1_000_000), &[]);
//! assert!(shard.0 < 8);
//! let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! The durability contract is batch-level: an ack means *journaled*,
//! and the record is durable once its batch is fsynced
//! (`flush_every`, default 512 records) — so a crash forgets at most
//! the unflushed tail, never a random subset. Whatever survives is a
//! prefix of the ack order, and deterministic placement turns that
//! prefix back into the exact pre-crash state
//! (`crates/core/tests/wal_golden.rs` proves it under randomized
//! kill -9 injection; `docs/DURABILITY.md` is the authoritative
//! on-disk specification — record framing, checkpoint envelope
//! versions and their read-compat matrix, the recovery state machine,
//! the GC invariants — and PERF.md §7 has the measured durability
//! tax).
//!
//! One composition limit, by design: `.storage(...)` and
//! `.rebalancer(...)` cannot be combined yet — rebalance epoch state
//! and committed moves are not in the checkpoint/record format, so a
//! recovered router could not replay them deterministically and the
//! builder rejects the pair outright rather than risk a wrong
//! recovery. Lifting this (a `Move` record type plus epoch counters
//! in the checkpoint) is the follow-up tracked under ROADMAP
//! direction 3.
//!
//! # Run a placement node over TCP
//!
//! Everything above runs in-process. [`server::PlacementServer`] puts
//! a [`core::RouterFleet`] behind a TCP listener with a small
//! length-prefixed binary protocol, and [`client::Client`] speaks it:
//!
//! ```
//! use optchain::prelude::*;
//!
//! let server = PlacementServer::builder()
//!     .fleet(RouterFleet::builder().shards(8).workers(2))
//!     .bind("127.0.0.1:0") // OS-assigned port
//!     .start()
//!     .unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let shard = client.submit(100, TxId(1), &[]).unwrap();
//! assert!(shard < 8);
//! let shards = client
//!     .submit_batch(50, &[(TxId(2), vec![TxId(1)]), (TxId(3), vec![])])
//!     .unwrap();
//! assert_eq!(shards.len(), 2);
//! assert_eq!(client.query(TxId(1)).unwrap(), Some(shard));
//! drop(client);
//! server.shutdown(); // drains admitted work, flushes WAL tails
//! ```
//!
//! The service half makes three promises the in-process API cannot:
//!
//! * **Admission control** — requests land in a bounded, fee-ordered
//!   queue (`queue_capacity` transactions); when it is full the server
//!   sheds with a typed [`client::RejectReason`] (`QueueFull`, `TooLarge`,
//!   `Shutdown`, `Malformed`, `Duplicate`) instead of queueing
//!   unboundedly or silently dropping, so admitted-request latency
//!   stays bounded by queue size over drain rate.
//! * **Backpressure, not disconnects** — each connection gets a credit
//!   window (`credit_window` outstanding requests); past it the server
//!   simply stops reading that socket, which surfaces to the client as
//!   TCP backpressure. A slow or bursty client is never disconnected.
//! * **No lost acks** — every request is answered exactly once
//!   (ack, typed reject, or query result), including everything
//!   admitted before a graceful [`server::PlacementServer::shutdown`],
//!   which drains the queue through the fleet and flushes WAL tails
//!   (attach storage via `RouterFleetBuilder::storage` exactly as
//!   in-process). A `/metrics`-style text endpoint
//!   ([`client::Client::metrics_text`]) exposes queue depth,
//!   admitted/shed/acked counters, and admission-to-ack latency
//!   quantiles.
//!
//! `loadgen` (in `optchain-bench`) drives the full loop over loopback
//! — a sustained arm and a deliberate 2× overload arm — and records
//! `BENCH_service.json`; PERF.md §8 has the measured numbers.
//!
//! # Contributing
//!
//! CI runs six parallel jobs — `lint` (fmt + clippy + docs), `test`
//! (release build + full test suite), `perf-gates` (the 50k perf
//! smoke with allocation, O(window) memory, and WAL durability gates,
//! diffed against the committed `BENCH_placement.json` by
//! `scripts/bench_compare.py`), `service-gates` (the loopback loadgen
//! smoke — zero lost acks, typed shedding under overload, p99 within
//! the queue-derived bound — diffed against `BENCH_service.json`),
//! `rebalance-gates` (the hot-spot smoke — the rebalanced arm must
//! beat static on both cross-tx ratio and max-shard utilization
//! within its migration budget — diffed against
//! `BENCH_rebalance.json`), and `wal-soak` (the crash-injection
//! matrix, a 100k-tx three-kill recovery soak, and a delta-checkpoint
//! smoke gated by `bench_compare.py --mode wal`) — plus a nightly
//! `retention-soak` (500k txs through a 10k window, WAL arm
//! included). Before pushing, run `scripts/ci_check.sh` — the local
//! mirror of the `lint`, `test`, `wal-soak`, `service-gates`, and
//! `rebalance-gates` jobs (`perf-gates` is covered separately by
//! `scripts/bench.sh`):
//!
//! ```sh
//! scripts/ci_check.sh
//! ```
//!
//! After touching a hot path, re-record the baseline with
//! `scripts/bench.sh` and check `scripts/bench_compare.py` against
//! the committed JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use optchain_client as client;
pub use optchain_core as core;
pub use optchain_metrics as metrics;
pub use optchain_partition as partition;
pub use optchain_server as server;
pub use optchain_sim as sim;
pub use optchain_tan as tan;
pub use optchain_utxo as utxo;
pub use optchain_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use optchain_client::{Client, ClientError, RejectReason};
    pub use optchain_core::replay::{replay, replay_into, replay_router, ReplayOutcome};
    pub use optchain_core::{
        CheckpointStats, DynPlacer, FailpointStorage, FennelPlacer, FleetHandle, FleetSnapshot,
        FleetStats, GreedyPlacer, L2sEstimator, L2sMode, LdgPlacer, MemStorage, Move,
        OptChainPlacer, OraclePlacer, PlacementContext, PlacementSession, Placer, RandomPlacer,
        RebalancePolicy, RebalanceStats, RetentionPolicy, Router, RouterBuilder, RouterFleet,
        RouterFleetBuilder, RouterSnapshot, SegmentWal, ShardId, ShardTelemetry, SharedStorage,
        SpvWallet, Storage, Strategy, T2sEngine, T2sPlacer, TailDamage, TemporalFitness,
    };
    pub use optchain_partition::{partition_kway, CsrGraph};
    pub use optchain_server::{PlacementServer, PlacementServerBuilder, ServerMetrics};
    pub use optchain_sim::{SimConfig, SimMetrics, Simulation};
    pub use optchain_tan::{stats::TanStats, NodeId, TanGraph};
    pub use optchain_utxo::{Ledger, OutPoint, Transaction, TxId, TxOutput, UtxoSet, WalletId};
    pub use optchain_workload::{
        FlashCrowdEpisode, HotSpotConfig, WorkloadConfig, WorkloadGenerator,
    };
}
