//! **OptChain** — optimal transaction placement for scalable blockchain
//! sharding, reproduced in Rust.
//!
//! This facade crate re-exports the public API of the whole workspace:
//!
//! * [`core`] — the placement algorithm (T2S, L2S, temporal fitness)
//!   and the comparison strategies;
//! * [`utxo`] — the UTXO transaction model;
//! * [`tan`] — the Transactions-as-Nodes online DAG;
//! * [`workload`] — synthetic Bitcoin-like streams;
//! * [`partition`] — offline Metis-like k-way partitioning;
//! * [`sim`] — the sharded-blockchain discrete-event simulator;
//! * [`metrics`] — histograms, CDFs, time series.
//!
//! # Quickstart
//!
//! ```
//! use optchain::prelude::*;
//!
//! // Generate a Bitcoin-like stream and place it with OptChain.
//! let txs = optchain::workload::generate(WorkloadConfig::small().with_seed(7), 2_000);
//! let outcome = replay(&txs, &mut OptChainPlacer::new(8));
//! let random = replay(&txs, &mut RandomPlacer::new(8));
//! assert!(outcome.cross_fraction() < random.cross_fraction());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use optchain_core as core;
pub use optchain_metrics as metrics;
pub use optchain_partition as partition;
pub use optchain_sim as sim;
pub use optchain_tan as tan;
pub use optchain_utxo as utxo;
pub use optchain_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use optchain_core::replay::{replay, replay_into, ReplayOutcome};
    pub use optchain_core::{
        FennelPlacer, GreedyPlacer, L2sEstimator, L2sMode, LdgPlacer, OptChainPlacer, OraclePlacer,
        PlacementContext, Placer, RandomPlacer, ShardId, ShardTelemetry, SpvWallet, T2sEngine,
        T2sPlacer, TemporalFitness,
    };
    pub use optchain_partition::{partition_kway, CsrGraph};
    pub use optchain_sim::{SimConfig, SimMetrics, Simulation, Strategy};
    pub use optchain_tan::{stats::TanStats, NodeId, TanGraph};
    pub use optchain_utxo::{Ledger, OutPoint, Transaction, TxId, TxOutput, UtxoSet, WalletId};
    pub use optchain_workload::{WorkloadConfig, WorkloadGenerator};
}
