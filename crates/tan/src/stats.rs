//! TaN network statistics — everything Fig 2 of the paper plots.
//!
//! Fig 2a is the in/out degree distribution in log-log scale, Fig 2b the
//! cumulative degree distribution, and Fig 2c the average degree of the
//! network over (stream) time. Section IV.A additionally reports node
//! classes: coinbase transactions (no outgoing edges), transactions whose
//! UTXOs have not been spent (no incoming edges), and fully isolated
//! transactions.

use optchain_metrics::Histogram;

use crate::{NodeId, TanGraph};

/// A full statistical snapshot of a TaN graph.
///
/// # Example
///
/// ```
/// use optchain_tan::{stats::TanStats, TanGraph};
/// use optchain_utxo::TxId;
///
/// let mut g = TanGraph::new();
/// g.insert(TxId(0), &[]);
/// g.insert(TxId(1), &[TxId(0)]);
/// let stats = TanStats::compute(&g);
/// assert_eq!(stats.coinbase_count, 1);
/// assert_eq!(stats.unspent_count, 1);
/// assert!((stats.average_degree - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TanStats {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of (collapsed) edges.
    pub edge_count: u64,
    /// Distribution of in-degrees (`|Nout(v)|` — spender counts).
    pub in_degree: Histogram,
    /// Distribution of out-degrees (`|Nin(u)|` — input counts).
    pub out_degree: Histogram,
    /// Nodes with no outgoing edges — coinbase transactions.
    pub coinbase_count: usize,
    /// Nodes with no incoming edges — transactions with unspent outputs.
    pub unspent_count: usize,
    /// Nodes with neither incoming nor outgoing edges.
    pub isolated_count: usize,
    /// Average degree `|E| / |V|` (equal for in and out).
    pub average_degree: f64,
}

impl TanStats {
    /// Computes statistics over the graph's **live** nodes (for graphs
    /// that never evicted — the experiment default — that is the whole
    /// stream, and every value matches the pre-retention reading).
    /// [`TanStats::edge_count`] stays cumulative over the stream; the
    /// degree histograms and [`TanStats::average_degree`] describe the
    /// live view.
    pub fn compute(graph: &TanGraph) -> Self {
        let mut in_degree = Histogram::new();
        let mut out_degree = Histogram::new();
        let mut coinbase = 0usize;
        let mut unspent = 0usize;
        let mut isolated = 0usize;
        let mut live_edges = 0u64;
        for node in graph.live_nodes() {
            let din = graph.in_degree(node);
            let dout = graph.out_degree(node);
            live_edges += dout as u64;
            in_degree.record(din as u64);
            out_degree.record(dout as u64);
            if dout == 0 {
                coinbase += 1;
            }
            if din == 0 {
                unspent += 1;
            }
            if din == 0 && dout == 0 {
                isolated += 1;
            }
        }
        let node_count = graph.live_len();
        TanStats {
            node_count,
            edge_count: graph.edge_count(),
            in_degree,
            out_degree,
            coinbase_count: coinbase,
            unspent_count: unspent,
            isolated_count: isolated,
            // Out-edges held by live nodes over live nodes — for an
            // un-evicted graph this is exactly |E| / |V|.
            average_degree: if node_count == 0 {
                0.0
            } else {
                live_edges as f64 / node_count as f64
            },
        }
    }

    /// Fraction of nodes with in-degree strictly below `bound` — the paper
    /// reports "93.1% ... have the in-degree lower than 3" (Fig 2b).
    pub fn in_degree_fraction_below(&self, bound: u64) -> f64 {
        self.in_degree.cumulative_fraction_below(bound)
    }

    /// Fraction of nodes with out-degree strictly below `bound` — the
    /// paper reports 97.6% below 10 and 86.3% below 3.
    pub fn out_degree_fraction_below(&self, bound: u64) -> f64 {
        self.out_degree.cumulative_fraction_below(bound)
    }
}

/// The average degree of the TaN network as the stream grows — Fig 2c.
///
/// Point `i` is the average degree of the prefix graph after
/// `(i + 1) · stride` nodes: `edges_so_far / nodes_so_far`.
///
/// # Example
///
/// ```
/// use optchain_tan::{stats::average_degree_over_time, TanGraph};
/// use optchain_utxo::TxId;
///
/// let mut g = TanGraph::new();
/// g.insert(TxId(0), &[]);
/// g.insert(TxId(1), &[TxId(0)]);
/// g.insert(TxId(2), &[TxId(0), TxId(1)]);
/// let series = average_degree_over_time(&g, 1);
/// assert_eq!(series, vec![(1, 0.0), (2, 0.5), (3, 1.0)]);
/// ```
pub fn average_degree_over_time(graph: &TanGraph, stride: usize) -> Vec<(usize, f64)> {
    assert!(stride > 0, "stride must be positive");
    let mut series = Vec::new();
    let mut edges: u64 = 0;
    for (i, node) in graph.nodes().enumerate() {
        edges += graph.out_degree(node) as u64;
        let n = i + 1;
        if n % stride == 0 || n == graph.len() {
            series.push((n, edges as f64 / n as f64));
        }
    }
    series
}

/// Average degree within non-overlapping windows of `window` nodes — the
/// localized view that makes the Fig 2c spam-attack bump visible even late
/// in a long stream.
pub fn windowed_average_degree(graph: &TanGraph, window: usize) -> Vec<(usize, f64)> {
    assert!(window > 0, "window must be positive");
    let mut series = Vec::new();
    let mut edges: u64 = 0;
    let mut count = 0usize;
    for (i, node) in graph.nodes().enumerate() {
        edges += graph.out_degree(node) as u64;
        count += 1;
        if count == window || i + 1 == graph.len() {
            series.push((i + 1, edges as f64 / count as f64));
            edges = 0;
            count = 0;
        }
    }
    series
}

/// Counts how many of the `assignments`-placed transactions are cross-shard.
///
/// A transaction `u` is cross-shard iff the set of shards holding its input
/// transactions is not exactly `{S(u)}` (Section IV.A: "`u` is a cross-TX
/// iff `Sin(u) ≠ {S(u)}`"). Coinbase transactions have no inputs and are
/// never cross-shard.
///
/// `assignments[node.index()]` is the shard of each node; nodes beyond the
/// assignment slice are skipped (useful when only a suffix was placed).
pub fn cross_tx_count(graph: &TanGraph, assignments: &[u32]) -> u64 {
    let mut cross = 0u64;
    for node in graph.nodes() {
        if node.index() >= assignments.len() {
            break;
        }
        if is_cross_tx(graph, assignments, node) {
            cross += 1;
        }
    }
    cross
}

/// `true` iff `node` is cross-shard under `assignments` (see
/// [`cross_tx_count`]).
pub fn is_cross_tx(graph: &TanGraph, assignments: &[u32], node: NodeId) -> bool {
    let own = assignments[node.index()];
    graph
        .inputs(node)
        .iter()
        .any(|v| assignments.get(v.index()).copied().unwrap_or(own) != own)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optchain_utxo::TxId;

    fn diamond() -> TanGraph {
        // 0 <- 1, 0 <- 2, {1,2} <- 3
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        g.insert(TxId(2), &[TxId(0)]);
        g.insert(TxId(3), &[TxId(1), TxId(2)]);
        g
    }

    #[test]
    fn node_classes() {
        let g = diamond();
        let s = TanStats::compute(&g);
        assert_eq!(s.node_count, 4);
        assert_eq!(s.edge_count, 4);
        assert_eq!(s.coinbase_count, 1); // node 0
        assert_eq!(s.unspent_count, 1); // node 3
        assert_eq!(s.isolated_count, 0);
        assert_eq!(s.average_degree, 1.0);
    }

    #[test]
    fn isolated_node_counted_in_both_classes() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        let s = TanStats::compute(&g);
        assert_eq!(s.coinbase_count, 1);
        assert_eq!(s.unspent_count, 1);
        assert_eq!(s.isolated_count, 1);
    }

    #[test]
    fn degree_distributions() {
        let g = diamond();
        let s = TanStats::compute(&g);
        // out-degrees: 0,1,1,2 ; in-degrees: 2,1,1,0
        assert_eq!(s.out_degree.count_of(0), 1);
        assert_eq!(s.out_degree.count_of(1), 2);
        assert_eq!(s.out_degree.count_of(2), 1);
        assert_eq!(s.in_degree.count_of(2), 1);
        assert!((s.in_degree_fraction_below(2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn average_degree_series_is_cumulative() {
        let g = diamond();
        let series = average_degree_over_time(&g, 2);
        assert_eq!(series, vec![(2, 0.5), (4, 1.0)]);
    }

    #[test]
    fn windowed_average_degree_isolates_bumps() {
        let mut g = TanGraph::new();
        for i in 0..4u64 {
            g.insert(TxId(i), &[]);
        }
        // A "spam" node spending all four.
        g.insert(TxId(4), &[TxId(0), TxId(1), TxId(2), TxId(3)]);
        let series = windowed_average_degree(&g, 4);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1, 0.0);
        assert_eq!(series[1].1, 4.0);
    }

    #[test]
    fn cross_tx_counting() {
        let g = diamond();
        // All in shard 0: no cross.
        assert_eq!(cross_tx_count(&g, &[0, 0, 0, 0]), 0);
        // Node 3's inputs (1, 2) split across shards: node 3 is cross;
        // nodes 1 and 2 spend node 0 in shard 0.
        assert_eq!(cross_tx_count(&g, &[0, 0, 1, 0]), 2);
        // Coinbase can never be cross.
        assert!(!is_cross_tx(&g, &[9, 0, 0, 0], NodeId(0)));
    }

    #[test]
    fn cross_tx_respects_assignment_prefix() {
        let g = diamond();
        // Only the first two nodes were placed.
        assert_eq!(cross_tx_count(&g, &[0, 1]), 1);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        average_degree_over_time(&TanGraph::new(), 0);
    }
}
