//! The online TaN DAG.

use std::collections::HashMap;
use std::fmt;

use optchain_utxo::{Transaction, TxId};

/// Dense index of a node (transaction) inside a [`TanGraph`].
///
/// Node ids are assigned sequentially at insertion; because edges only ever
/// point to already-inserted nodes, `NodeId` order is a topological order
/// of the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The Transactions-as-Nodes network (Definition 1 of the paper).
///
/// The graph is *online*: nodes are appended with [`TanGraph::insert`] and
/// edges are created from the new node to the (already present) nodes whose
/// outputs it spends. Parallel edges are collapsed — `Nin(u)` and `Nout(v)`
/// are **sets** of transactions, matching the paper's wording — so a
/// transaction spending two outputs of the same parent contributes one
/// edge.
///
/// Orientation reminder (matches Fig 2's reading of the Bitcoin data):
///
/// * a node with **no outgoing edges** spends nothing — a coinbase;
/// * a node with **no incoming edges** has not been spent — the frontier.
#[derive(Debug, Clone, Default)]
pub struct TanGraph {
    ids: Vec<TxId>,
    index: HashMap<TxId, NodeId>,
    /// `inputs[u]` — nodes that `u` spends from (deduplicated, insertion
    /// order). Immutable once the node is inserted.
    inputs: Vec<Box<[NodeId]>>,
    /// `spenders[v]` — nodes that spend from `v`; grows as children arrive.
    spenders: Vec<Vec<NodeId>>,
    edge_count: u64,
    /// Inputs referencing transactions unknown to this graph (e.g. spends
    /// of outputs created before a warm-start window). They create no edge.
    missing_parent_refs: u64,
}

impl TanGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph pre-sized for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        TanGraph {
            ids: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            inputs: Vec::with_capacity(capacity),
            spenders: Vec::with_capacity(capacity),
            edge_count: 0,
            missing_parent_refs: 0,
        }
    }

    /// Builds a graph from transactions in arrival order.
    pub fn from_transactions<'a, I>(txs: I) -> Self
    where
        I: IntoIterator<Item = &'a Transaction>,
    {
        let mut g = TanGraph::new();
        for tx in txs {
            g.insert_tx(tx);
        }
        g
    }

    /// Inserts a node for `txid` spending from the transactions in
    /// `parents`, returning its [`NodeId`].
    ///
    /// Duplicate entries in `parents` are collapsed. Parents not present in
    /// the graph are counted in [`TanGraph::missing_parent_refs`] and
    /// otherwise ignored — this supports warm-start experiments where the
    /// stream spends outputs created before the observation window.
    ///
    /// # Panics
    ///
    /// Panics if `txid` was already inserted (the ledger guarantees unique
    /// ids; a duplicate here is a logic error worth failing fast on).
    pub fn insert(&mut self, txid: TxId, parents: &[TxId]) -> NodeId {
        let node = NodeId(self.ids.len() as u32);
        let prev = self.index.insert(txid, node);
        assert!(prev.is_none(), "transaction {txid} inserted twice into TaN graph");
        self.ids.push(txid);

        let mut dedup: Vec<NodeId> = Vec::with_capacity(parents.len());
        for parent in parents {
            match self.index.get(parent) {
                Some(&p) if p != node => {
                    if !dedup.contains(&p) {
                        dedup.push(p);
                    }
                }
                Some(_) => {} // self-reference cannot happen; ids are unique
                None => self.missing_parent_refs += 1,
            }
        }
        for &p in &dedup {
            self.spenders[p.index()].push(node);
        }
        self.edge_count += dedup.len() as u64;
        self.inputs.push(dedup.into_boxed_slice());
        self.spenders.push(Vec::new());
        node
    }

    /// Inserts a node for a full [`Transaction`] (edges to its distinct
    /// input transactions).
    pub fn insert_tx(&mut self, tx: &Transaction) -> NodeId {
        self.insert(tx.id(), &tx.input_txids())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of (collapsed) directed edges.
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Count of input references whose parent transaction was unknown.
    pub fn missing_parent_refs(&self) -> u64 {
        self.missing_parent_refs
    }

    /// The transaction id of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn txid(&self, node: NodeId) -> TxId {
        self.ids[node.index()]
    }

    /// The node for `txid`, if present.
    pub fn node(&self, txid: TxId) -> Option<NodeId> {
        self.index.get(&txid).copied()
    }

    /// The distinct transactions `u` spends from — the paper's `Nin(u)`.
    pub fn inputs(&self, u: NodeId) -> &[NodeId] {
        &self.inputs[u.index()]
    }

    /// The transactions spending `v`'s outputs so far — the paper's
    /// `Nout(v)` at the current point of the stream.
    pub fn spenders(&self, v: NodeId) -> &[NodeId] {
        &self.spenders[v.index()]
    }

    /// Out-degree of `u` in the paper's orientation (`|Nin(u)|`): how many
    /// distinct transactions it spends from. Zero for coinbase.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.inputs[u.index()].len()
    }

    /// In-degree of `v` (`|Nout(v)|`): how many transactions spend from it
    /// so far. Zero while unspent.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.spenders[v.index()].len()
    }

    /// In-degree of `v` as it was when `observer` arrived: the number of
    /// spenders with node id `<= observer`. Spender lists grow in id
    /// order, so this is a binary search.
    ///
    /// This is the `|Nout(v)|` an *online* algorithm saw at `observer`'s
    /// arrival — the quantity the T2S streaming update divides by — and it
    /// lets warm-started replays reproduce live-streamed state exactly.
    pub fn in_degree_at(&self, v: NodeId, observer: NodeId) -> usize {
        self.spenders[v.index()].partition_point(|&s| s <= observer)
    }

    /// Iterates over all node ids in insertion (topological) order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.ids.len() as u32).map(NodeId)
    }

    /// Iterates over all directed edges `(u, v)` meaning "`u` spends `v`".
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.inputs[u.index()].iter().map(move |&v| (u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_builds_both_directions() {
        let mut g = TanGraph::new();
        let a = g.insert(TxId(0), &[]);
        let b = g.insert(TxId(1), &[]);
        let c = g.insert(TxId(2), &[TxId(0), TxId(1)]);
        assert_eq!(g.inputs(c), &[a, b]);
        assert_eq!(g.spenders(a), &[c]);
        assert_eq!(g.spenders(b), &[c]);
        assert_eq!(g.out_degree(c), 2);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        let b = g.insert(TxId(1), &[TxId(0), TxId(0), TxId(0)]);
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn missing_parents_are_counted_not_linked() {
        let mut g = TanGraph::new();
        let a = g.insert(TxId(10), &[TxId(3), TxId(4)]);
        assert_eq!(g.out_degree(a), 0);
        assert_eq!(g.missing_parent_refs(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_txid_panics() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(0), &[]);
    }

    #[test]
    fn edges_iterator_lists_all() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        g.insert(TxId(2), &[TxId(0), TxId(1)]);
        let edges: Vec<_> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(edges, vec![(1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn node_lookup_roundtrip() {
        let mut g = TanGraph::new();
        let n = g.insert(TxId(99), &[]);
        assert_eq!(g.node(TxId(99)), Some(n));
        assert_eq!(g.txid(n), TxId(99));
        assert_eq!(g.node(TxId(1)), None);
    }

    #[test]
    fn from_transactions_links_inputs() {
        use optchain_utxo::{Transaction, TxOutput, WalletId};
        let cb = Transaction::coinbase(TxId(0), 10, WalletId(0));
        let spend = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(10, WalletId(1)))
            .build();
        let g = TanGraph::from_transactions([&cb, &spend]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(NodeId(1)), 1);
    }

    #[test]
    fn edges_point_backwards_in_insertion_order() {
        // The DAG/topological-order invariant.
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        g.insert(TxId(2), &[TxId(1), TxId(0)]);
        for (u, v) in g.edges() {
            assert!(v < u, "edge ({u}, {v}) must point to an earlier node");
        }
    }
}
