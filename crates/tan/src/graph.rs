//! The online TaN DAG, stored in flattened arenas.
//!
//! Layout (rebuilt for throughput — see PERF.md):
//!
//! * **inputs** are CSR-flattened: one contiguous [`NodeId`] pool plus a
//!   per-node offset array. A node's input set is immutable once
//!   inserted, so the pool is append-only and `inputs(u)` is a single
//!   contiguous slice — no per-node heap allocation, no pointer chase.
//! * **spenders** grow over time (children arrive after the parent), so
//!   they live in an append-friendly chunk arena: fixed-size chunks
//!   linked per node, allocated from one `Vec`. Nodes that are never
//!   spent (the frontier — the common case at any instant) allocate
//!   nothing.
//! * the `TxId → NodeId` index uses the SplitMix64-based
//!   [`TxIdBuildHasher`](crate::hash::TxIdBuildHasher) instead of
//!   SipHash.
//!
//! [`TanGraph::insert`] is amortized allocation-free: the dedup scratch
//! buffers are owned by the graph and reused across insertions.

use std::collections::HashMap;
use std::fmt;

use optchain_utxo::{Transaction, TxId};

use crate::hash::TxIdBuildHasher;

/// Dense index of a node (transaction) inside a [`TanGraph`].
///
/// Node ids are assigned sequentially at insertion; because edges only ever
/// point to already-inserted nodes, `NodeId` order is a topological order
/// of the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Sentinel for "no chunk".
const NONE: u32 = u32::MAX;

/// Spender-list chunk capacity. The TaN average degree is ≈ 2.3 (Fig 2),
/// so one chunk covers the overwhelming majority of spent nodes; heavy
/// fan-out nodes chain additional chunks.
const CHUNK: usize = 6;

/// One chunk of a node's spender list.
#[derive(Debug, Clone)]
struct SpenderChunk {
    /// Next chunk of the same node, or [`NONE`].
    next: u32,
    /// Occupied slots in this chunk.
    len: u32,
    slots: [NodeId; CHUNK],
}

impl SpenderChunk {
    fn new() -> Self {
        SpenderChunk {
            next: NONE,
            len: 0,
            slots: [NodeId(0); CHUNK],
        }
    }

    fn entries(&self) -> &[NodeId] {
        &self.slots[..self.len as usize]
    }
}

/// The Transactions-as-Nodes network (Definition 1 of the paper).
///
/// The graph is *online*: nodes are appended with [`TanGraph::insert`] and
/// edges are created from the new node to the (already present) nodes whose
/// outputs it spends. Parallel edges are collapsed — `Nin(u)` and `Nout(v)`
/// are **sets** of transactions, matching the paper's wording — so a
/// transaction spending two outputs of the same parent contributes one
/// edge.
///
/// Orientation reminder (matches Fig 2's reading of the Bitcoin data):
///
/// * a node with **no outgoing edges** spends nothing — a coinbase;
/// * a node with **no incoming edges** has not been spent — the frontier.
#[derive(Debug, Clone)]
pub struct TanGraph {
    ids: Vec<TxId>,
    index: HashMap<TxId, NodeId, TxIdBuildHasher>,
    /// CSR offsets into [`TanGraph::in_pool`]; `in_offsets[u]..in_offsets[u+1]`
    /// is `Nin(u)`. Length `len() + 1`.
    in_offsets: Vec<u32>,
    /// Flattened input adjacency (deduplicated, insertion order).
    in_pool: Vec<NodeId>,
    /// First spender chunk per node, or [`NONE`].
    sp_head: Vec<u32>,
    /// Last spender chunk per node, or [`NONE`] (append fast path).
    sp_tail: Vec<u32>,
    /// `|Nout(v)|` so far, per node (O(1) in-degree).
    in_counts: Vec<u32>,
    /// The chunk arena backing every spender list.
    chunks: Vec<SpenderChunk>,
    /// Chunk directory for nodes whose spender list spans **multiple**
    /// chunks (high-fanout hubs only — single-chunk nodes, the common
    /// case, never appear here): the node's chunk ids in list order.
    /// Because a new chunk is only opened when the tail is full, every
    /// chunk but the last holds exactly [`CHUNK`] spenders, and spender
    /// ids grow monotonically — so [`TanGraph::in_degree_at`] can binary
    /// search the directory by each chunk's first id instead of walking
    /// the chunk list.
    chunk_dir: HashMap<u32, Vec<u32>>,
    edge_count: u64,
    /// Inputs referencing transactions unknown to this graph (e.g. spends
    /// of outputs created before a warm-start window). They create no edge.
    missing_parent_refs: u64,
    /// Reusable dedup buffer for parent [`NodeId`]s (kept empty between
    /// insertions).
    node_scratch: Vec<NodeId>,
    /// Reusable dedup buffer for parent [`TxId`]s (kept empty between
    /// insertions).
    txid_scratch: Vec<TxId>,
}

impl Default for TanGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl TanGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TanGraph {
            ids: Vec::new(),
            index: HashMap::with_hasher(TxIdBuildHasher),
            in_offsets: vec![0],
            in_pool: Vec::new(),
            sp_head: Vec::new(),
            sp_tail: Vec::new(),
            in_counts: Vec::new(),
            chunks: Vec::new(),
            chunk_dir: HashMap::new(),
            edge_count: 0,
            missing_parent_refs: 0,
            node_scratch: Vec::new(),
            txid_scratch: Vec::new(),
        }
    }

    /// Creates an empty graph pre-sized for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut in_offsets = Vec::with_capacity(capacity + 1);
        in_offsets.push(0);
        TanGraph {
            ids: Vec::with_capacity(capacity),
            index: HashMap::with_capacity_and_hasher(capacity, TxIdBuildHasher),
            in_offsets,
            // Average TaN degree ≈ 2.3 ⇒ ~2.5 pool slots per node.
            in_pool: Vec::with_capacity(capacity.saturating_mul(5) / 2),
            sp_head: Vec::with_capacity(capacity),
            sp_tail: Vec::with_capacity(capacity),
            in_counts: Vec::with_capacity(capacity),
            chunks: Vec::with_capacity(capacity / 2),
            chunk_dir: HashMap::new(),
            edge_count: 0,
            missing_parent_refs: 0,
            node_scratch: Vec::new(),
            txid_scratch: Vec::new(),
        }
    }

    /// Builds a graph from transactions in arrival order.
    pub fn from_transactions<'a, I>(txs: I) -> Self
    where
        I: IntoIterator<Item = &'a Transaction>,
    {
        let mut g = TanGraph::new();
        for tx in txs {
            g.insert_tx(tx);
        }
        g
    }

    /// Inserts a node for `txid` spending from the transactions in
    /// `parents`, returning its [`NodeId`].
    ///
    /// Duplicate entries in `parents` are collapsed. Parents not present in
    /// the graph are counted in [`TanGraph::missing_parent_refs`] and
    /// otherwise ignored — this supports warm-start experiments where the
    /// stream spends outputs created before the observation window.
    ///
    /// # Panics
    ///
    /// Panics if `txid` was already inserted (the ledger guarantees unique
    /// ids; a duplicate here is a logic error worth failing fast on).
    pub fn insert(&mut self, txid: TxId, parents: &[TxId]) -> NodeId {
        let node = NodeId(self.ids.len() as u32);
        let prev = self.index.insert(txid, node);
        assert!(
            prev.is_none(),
            "transaction {txid} inserted twice into TaN graph"
        );
        self.ids.push(txid);

        let mut dedup = std::mem::take(&mut self.node_scratch);
        dedup.clear();
        for parent in parents {
            match self.index.get(parent) {
                Some(&p) if p != node => {
                    if !dedup.contains(&p) {
                        dedup.push(p);
                    }
                }
                Some(_) => {} // self-reference cannot happen; ids are unique
                None => self.missing_parent_refs += 1,
            }
        }
        for &p in &dedup {
            self.push_spender(p, node);
        }
        self.edge_count += dedup.len() as u64;
        self.in_pool.extend_from_slice(&dedup);
        self.in_offsets.push(self.in_pool.len() as u32);
        self.sp_head.push(NONE);
        self.sp_tail.push(NONE);
        self.in_counts.push(0);
        dedup.clear();
        self.node_scratch = dedup;
        node
    }

    /// Appends `spender` to `parent`'s chunked spender list.
    fn push_spender(&mut self, parent: NodeId, spender: NodeId) {
        let p = parent.index();
        self.in_counts[p] += 1;
        let tail = self.sp_tail[p];
        if tail != NONE {
            let chunk = &mut self.chunks[tail as usize];
            if (chunk.len as usize) < CHUNK {
                chunk.slots[chunk.len as usize] = spender;
                chunk.len += 1;
                return;
            }
        }
        // Need a fresh chunk.
        let idx = self.chunks.len() as u32;
        let mut chunk = SpenderChunk::new();
        chunk.slots[0] = spender;
        chunk.len = 1;
        self.chunks.push(chunk);
        if tail == NONE {
            self.sp_head[p] = idx;
        } else {
            self.chunks[tail as usize].next = idx;
            // The node now spans multiple chunks: index them for the
            // historical binary search (amortized — once per CHUNK
            // spenders on hubs, never for single-chunk nodes).
            let head = self.sp_head[p];
            self.chunk_dir
                .entry(p as u32)
                .or_insert_with(|| {
                    let mut dir = Vec::with_capacity(4);
                    dir.push(head);
                    dir
                })
                .push(idx);
        }
        self.sp_tail[p] = idx;
    }

    /// Inserts a node for a full [`Transaction`] (edges to its distinct
    /// input transactions) without any intermediate allocation.
    pub fn insert_tx(&mut self, tx: &Transaction) -> NodeId {
        // Dedup at the TxId level first so an unknown parent spent through
        // several outputs still counts one missing reference (the same
        // semantics as `insert(tx.id(), &tx.input_txids())`).
        let mut tids = std::mem::take(&mut self.txid_scratch);
        tids.clear();
        for op in tx.inputs() {
            if !tids.contains(&op.txid) {
                tids.push(op.txid);
            }
        }
        let node = self.insert(tx.id(), &tids);
        tids.clear();
        self.txid_scratch = tids;
        node
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of (collapsed) directed edges.
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Count of input references whose parent transaction was unknown.
    pub fn missing_parent_refs(&self) -> u64 {
        self.missing_parent_refs
    }

    /// The transaction id of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn txid(&self, node: NodeId) -> TxId {
        self.ids[node.index()]
    }

    /// The node for `txid`, if present.
    pub fn node(&self, txid: TxId) -> Option<NodeId> {
        self.index.get(&txid).copied()
    }

    /// The distinct transactions `u` spends from — the paper's `Nin(u)` —
    /// as one contiguous slice of the CSR pool.
    pub fn inputs(&self, u: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[u.index()] as usize;
        let hi = self.in_offsets[u.index() + 1] as usize;
        &self.in_pool[lo..hi]
    }

    /// The transactions spending `v`'s outputs so far — the paper's
    /// `Nout(v)` at the current point of the stream — in arrival order.
    pub fn spenders(&self, v: NodeId) -> Spenders<'_> {
        Spenders {
            graph: self,
            chunk: self.sp_head[v.index()],
            slot: 0,
        }
    }

    /// Out-degree of `u` in the paper's orientation (`|Nin(u)|`): how many
    /// distinct transactions it spends from. Zero for coinbase.
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.in_offsets[u.index() + 1] - self.in_offsets[u.index()]) as usize
    }

    /// In-degree of `v` (`|Nout(v)|`): how many transactions spend from it
    /// so far. Zero while unspent. O(1).
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_counts[v.index()] as usize
    }

    /// In-degree of `v` as it was when `observer` arrived: the number of
    /// spenders with node id `<= observer`.
    ///
    /// This is the `|Nout(v)|` an *online* algorithm saw at `observer`'s
    /// arrival — the quantity the T2S streaming update divides by — and it
    /// lets warm-started replays reproduce live-streamed state exactly.
    ///
    /// The streaming case (`observer` is the newest node, so every spender
    /// qualifies) is O(1); historical observers binary search the node's
    /// chunk directory by first spender id, then binary search inside the
    /// straddling chunk — `O(log d)` on a hub of in-degree `d` instead of
    /// the former `O(d/CHUNK)` chunk walk.
    pub fn in_degree_at(&self, v: NodeId, observer: NodeId) -> usize {
        let p = v.index();
        let count = self.in_counts[p] as usize;
        if count == 0 {
            return 0;
        }
        // Fast path: spender lists grow in id order, so if the most
        // recently appended spender is within view, all of them are.
        let tail = &self.chunks[self.sp_tail[p] as usize];
        if tail.slots[tail.len as usize - 1] <= observer {
            return count;
        }
        let straddling = |chunk: &SpenderChunk, before: usize| {
            before + chunk.entries().partition_point(|&s| s <= observer)
        };
        // Single-chunk node — the common case (average TaN degree ≈ 2.3):
        // the count alone proves there is no directory entry to look up.
        if count <= CHUNK {
            return straddling(&self.chunks[self.sp_head[p] as usize], 0);
        }
        let dir = self
            .chunk_dir
            .get(&(p as u32))
            .expect("multi-chunk nodes are always indexed");
        // Every chunk but the last is full (a new chunk is only opened
        // when the tail fills), so the chunk at directory position `i`
        // covers spenders `i * CHUNK ..`. Find the last chunk whose first
        // spender is within view; everything before it is fully visible.
        let pos = dir.partition_point(|&c| self.chunks[c as usize].slots[0] <= observer);
        if pos == 0 {
            return 0;
        }
        straddling(&self.chunks[dir[pos - 1] as usize], (pos - 1) * CHUNK)
    }

    /// Iterates over all node ids in insertion (topological) order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.ids.len() as u32).map(NodeId)
    }

    /// Iterates over all directed edges `(u, v)` meaning "`u` spends `v`".
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.inputs(u).iter().map(move |&v| (u, v)))
    }

    /// Bytes of heap owned by the adjacency arenas (diagnostics for the
    /// perf baseline; excludes the `TxId` index and the hub chunk
    /// directory).
    pub fn arena_bytes(&self) -> usize {
        self.in_pool.capacity() * std::mem::size_of::<NodeId>()
            + self.in_offsets.capacity() * std::mem::size_of::<u32>()
            + self.chunks.capacity() * std::mem::size_of::<SpenderChunk>()
            + (self.sp_head.capacity() + self.sp_tail.capacity() + self.in_counts.capacity())
                * std::mem::size_of::<u32>()
    }
}

/// Iterator over a node's spenders (see [`TanGraph::spenders`]).
#[derive(Debug, Clone)]
pub struct Spenders<'a> {
    graph: &'a TanGraph,
    chunk: u32,
    slot: u32,
}

impl Iterator for Spenders<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.chunk != NONE {
            let chunk = &self.graph.chunks[self.chunk as usize];
            if self.slot < chunk.len {
                let item = chunk.slots[self.slot as usize];
                self.slot += 1;
                return Some(item);
            }
            self.chunk = chunk.next;
            self.slot = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spenders_vec(g: &TanGraph, v: NodeId) -> Vec<NodeId> {
        g.spenders(v).collect()
    }

    #[test]
    fn insert_builds_both_directions() {
        let mut g = TanGraph::new();
        let a = g.insert(TxId(0), &[]);
        let b = g.insert(TxId(1), &[]);
        let c = g.insert(TxId(2), &[TxId(0), TxId(1)]);
        assert_eq!(g.inputs(c), &[a, b]);
        assert_eq!(spenders_vec(&g, a), &[c]);
        assert_eq!(spenders_vec(&g, b), &[c]);
        assert_eq!(g.out_degree(c), 2);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        let b = g.insert(TxId(1), &[TxId(0), TxId(0), TxId(0)]);
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn missing_parents_are_counted_not_linked() {
        let mut g = TanGraph::new();
        let a = g.insert(TxId(10), &[TxId(3), TxId(4)]);
        assert_eq!(g.out_degree(a), 0);
        assert_eq!(g.missing_parent_refs(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_txid_panics() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(0), &[]);
    }

    #[test]
    fn edges_iterator_lists_all() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        g.insert(TxId(2), &[TxId(0), TxId(1)]);
        let edges: Vec<_> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(edges, vec![(1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn node_lookup_roundtrip() {
        let mut g = TanGraph::new();
        let n = g.insert(TxId(99), &[]);
        assert_eq!(g.node(TxId(99)), Some(n));
        assert_eq!(g.txid(n), TxId(99));
        assert_eq!(g.node(TxId(1)), None);
    }

    #[test]
    fn from_transactions_links_inputs() {
        use optchain_utxo::{Transaction, TxOutput, WalletId};
        let cb = Transaction::coinbase(TxId(0), 10, WalletId(0));
        let spend = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(10, WalletId(1)))
            .build();
        let g = TanGraph::from_transactions([&cb, &spend]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(NodeId(1)), 1);
    }

    #[test]
    fn edges_point_backwards_in_insertion_order() {
        // The DAG/topological-order invariant.
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        g.insert(TxId(2), &[TxId(1), TxId(0)]);
        for (u, v) in g.edges() {
            assert!(v < u, "edge ({u}, {v}) must point to an earlier node");
        }
    }

    #[test]
    fn spender_chunks_chain_past_one_chunk() {
        // A hub spent by far more children than one chunk holds.
        let mut g = TanGraph::new();
        let hub = g.insert(TxId(0), &[]);
        let n = (CHUNK * 3 + 2) as u64;
        for i in 1..=n {
            g.insert(TxId(i), &[TxId(0)]);
        }
        assert_eq!(g.in_degree(hub), n as usize);
        let spenders = spenders_vec(&g, hub);
        assert_eq!(spenders.len(), n as usize);
        // Arrival order, strictly increasing.
        for w in spenders.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Historical views at every cut point.
        for obs in 0..=n {
            assert_eq!(
                g.in_degree_at(hub, NodeId(obs as u32)),
                obs as usize,
                "observer {obs}"
            );
        }
    }

    #[test]
    fn in_degree_at_binary_search_on_interleaved_hubs() {
        // Two hubs spent alternately, so their chunk ids interleave in the
        // arena (the directory must not assume contiguity), plus enough
        // spenders per hub to span many chunks.
        let mut g = TanGraph::new();
        let h0 = g.insert(TxId(0), &[]);
        let h1 = g.insert(TxId(1), &[]);
        let rounds = (CHUNK * 40) as u64;
        let mut spenders0 = Vec::new();
        let mut spenders1 = Vec::new();
        for i in 0..rounds {
            let hub = if i % 2 == 0 { 0 } else { 1 };
            let n = g.insert(TxId(2 + i), &[TxId(hub)]);
            if hub == 0 {
                spenders0.push(n);
            } else {
                spenders1.push(n);
            }
        }
        for (hub, spenders) in [(h0, &spenders0), (h1, &spenders1)] {
            // Every cut point, including before the first spender and the
            // streaming fast path at the end.
            for obs in 0..g.len() as u32 {
                let expected = spenders.iter().filter(|s| s.0 <= obs).count();
                assert_eq!(
                    g.in_degree_at(hub, NodeId(obs)),
                    expected,
                    "hub {hub} observer {obs}"
                );
            }
        }
    }

    #[test]
    fn in_degree_at_streaming_fast_path() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        let latest = g.insert(TxId(2), &[TxId(0)]);
        // The newest node sees every spender inserted so far.
        assert_eq!(g.in_degree_at(NodeId(0), latest), 2);
        assert_eq!(g.in_degree_at(NodeId(0), NodeId(1)), 1);
        assert_eq!(g.in_degree_at(NodeId(0), NodeId(0)), 0);
    }
}
