//! The online TaN DAG, stored in flattened, **evictable** arenas.
//!
//! Layout (rebuilt for throughput — see PERF.md):
//!
//! * **inputs** are CSR-flattened: one contiguous [`NodeId`] pool plus a
//!   per-row offset array. A node's input set is immutable once
//!   inserted, so the pool is append-only and `inputs(u)` is a single
//!   contiguous slice — no per-node heap allocation, no pointer chase.
//! * **spenders** grow over time (children arrive after the parent), so
//!   they live in an append-friendly chunk arena: fixed-size chunks
//!   linked per node, allocated from one `Vec`. Nodes that are never
//!   spent (the frontier — the common case at any instant) allocate
//!   nothing.
//! * the `TxId → NodeId` index uses the SplitMix64-based
//!   [`TxIdBuildHasher`](crate::hash::TxIdBuildHasher) instead of
//!   SipHash.
//!
//! # Retention and eviction
//!
//! The graph is *streaming*: with a [`RetentionPolicy`] configured,
//! [`TanGraph::evict_before`] advances an eviction **horizon** — every
//! node below it is either dropped (its `TxId` leaves the index, so
//! later spends count as [`TanGraph::missing_parent_refs`], exactly like
//! pre-history spends) or, under
//! [`RetentionPolicy::KeepUnspentAndHubs`], **retained** (unspent
//! frontier nodes and high-fanout hubs stay resolvable). Node ids are
//! **stable across eviction**: `NodeId(i)` names the `i`-th transaction
//! of the stream forever, callers keep indexing external per-node state
//! (assignments, score rings) by raw id, and spender lists / historical
//! [`TanGraph::in_degree_at`] views stay correct. Internally, rows live
//! in a compactable arena addressed through an id → row translation
//! (dense offset for the live window, binary search over the sorted
//! retained-survivor list below it — the stable-id remap). Dead rows are
//! reclaimed by an amortized compaction ([`TanGraph::compact`] forces an
//! exact one), so graph memory is `O(live window + retained survivors)`,
//! not `O(stream)`.
//!
//! [`TanGraph::insert`] is amortized allocation-free: the dedup scratch
//! buffers are owned by the graph and reused across insertions.

use std::collections::HashMap;
use std::fmt;

use optchain_storage::{ByteReader, ByteWriter, CodecError};
use optchain_utxo::{Transaction, TxId};

use crate::hash::TxIdBuildHasher;

/// Dense index of a node (transaction) inside a [`TanGraph`].
///
/// Node ids are assigned sequentially at insertion; because edges only ever
/// point to already-inserted nodes, `NodeId` order is a topological order
/// of the DAG. Ids are **stable across eviction and compaction**: evicting
/// old nodes never renumbers the survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// How a streaming graph (and the state built on it) bounds its memory.
///
/// Configured once on `RouterBuilder`/`RouterFleetBuilder` and threaded
/// down through the T2S engine into the [`TanGraph`]; the graph itself
/// only consumes the policy through [`TanGraph::evict_before`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Keep everything — state grows with the stream (the offline
    /// replay/experiment default).
    #[default]
    Unbounded,
    /// Keep the most recent `n` transactions; everything older is
    /// evicted as the stream advances. Spends of evicted outputs count
    /// as missing parent references, the same degradation as pre-history
    /// spends. Memory is `O(n)`.
    WindowTxs(usize),
    /// Window the stream at [`RetentionPolicy::HUB_WINDOW`] transactions
    /// but retain, indefinitely, every aged node that is still
    /// **unspent** (in-degree 0 — its outputs may yet be spent) or is a
    /// **hub** (in-degree `>= min_degree`). Retained nodes stay
    /// resolvable — spends of them link edges and pull spenders toward
    /// their shard — while ordinary spent nodes are reclaimed. Memory is
    /// `O(window + unspent set + hubs)`.
    KeepUnspentAndHubs {
        /// In-degree (spender count) at or above which an aged node is
        /// retained as a hub.
        min_degree: u32,
    },
}

impl RetentionPolicy {
    /// The sliding window [`RetentionPolicy::KeepUnspentAndHubs`] ages
    /// nodes out of before the unspent/hub filter applies (also the T2S
    /// score-ring size that policy uses).
    pub const HUB_WINDOW: usize = 8_192;

    /// The number of most-recent transactions unconditionally kept live,
    /// or `None` when the policy never evicts. This is both the graph
    /// eviction lag and the T2S score-ring size, so edge resolution and
    /// score retention stay in lockstep.
    pub fn graph_window(&self) -> Option<usize> {
        match self {
            RetentionPolicy::Unbounded => None,
            RetentionPolicy::WindowTxs(n) => Some(*n),
            RetentionPolicy::KeepUnspentAndHubs { .. } => Some(Self::HUB_WINDOW),
        }
    }

    /// Serializes the policy (tag + parameters) into `w` — the shared
    /// wire form used by WAL headers and checkpoint blobs.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            RetentionPolicy::Unbounded => w.put_u8(0),
            RetentionPolicy::WindowTxs(n) => {
                w.put_u8(1);
                w.put_u64(*n as u64);
            }
            RetentionPolicy::KeepUnspentAndHubs { min_degree } => {
                w.put_u8(2);
                w.put_u32(*min_degree);
            }
        }
    }

    /// Decodes a policy written by [`RetentionPolicy::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => RetentionPolicy::Unbounded,
            1 => RetentionPolicy::WindowTxs(r.get_u64()? as usize),
            2 => RetentionPolicy::KeepUnspentAndHubs {
                min_degree: r.get_u32()?,
            },
            _ => return Err(CodecError("unknown retention policy tag")),
        })
    }
}

/// Sentinel for "no chunk".
const NONE: u32 = u32::MAX;

/// Spender-list chunk capacity. The TaN average degree is ≈ 2.3 (Fig 2),
/// so one chunk covers the overwhelming majority of spent nodes; heavy
/// fan-out nodes chain additional chunks.
const CHUNK: usize = 6;

/// Dead rows tolerated before an automatic compaction: compaction is
/// `O(live)`, so triggering at `max(MIN_COMPACT, live / 2)` dead rows
/// amortizes to `O(1)` per eviction while bounding the arena at ~1.5×
/// the live set.
const MIN_COMPACT: u32 = 1_024;

/// One chunk of a node's spender list.
#[derive(Debug, Clone)]
struct SpenderChunk {
    /// Next chunk of the same node, or [`NONE`].
    next: u32,
    /// Occupied slots in this chunk.
    len: u32,
    slots: [NodeId; CHUNK],
}

impl SpenderChunk {
    fn new() -> Self {
        SpenderChunk {
            next: NONE,
            len: 0,
            slots: [NodeId(0); CHUNK],
        }
    }

    fn entries(&self) -> &[NodeId] {
        &self.slots[..self.len as usize]
    }
}

/// The Transactions-as-Nodes network (Definition 1 of the paper).
///
/// The graph is *online*: nodes are appended with [`TanGraph::insert`] and
/// edges are created from the new node to the (already present) nodes whose
/// outputs it spends. Parallel edges are collapsed — `Nin(u)` and `Nout(v)`
/// are **sets** of transactions, matching the paper's wording — so a
/// transaction spending two outputs of the same parent contributes one
/// edge.
///
/// Orientation reminder (matches Fig 2's reading of the Bitcoin data):
///
/// * a node with **no outgoing edges** spends nothing — a coinbase;
/// * a node with **no incoming edges** has not been spent — the frontier.
///
/// With a [`RetentionPolicy`] configured the graph is additionally
/// *streaming*: [`TanGraph::evict_before`] drives the eviction
/// lifecycle. Accessors on evicted nodes degrade gracefully — `inputs`/`spenders`
/// empty, degrees zero, [`TanGraph::node`] misses — and
/// [`TanGraph::len`]/[`TanGraph::nodes`] keep counting the whole stream
/// (ids are stable), with [`TanGraph::live_len`] for the resident count.
#[derive(Debug, Clone)]
pub struct TanGraph {
    retention: RetentionPolicy,
    /// Total nodes ever inserted — the next stable id; [`TanGraph::len`].
    total: u32,
    /// First stable id in the dense row region: `id >= base` lives at
    /// row `retained.len() + (id - base)`.
    base: u32,
    /// Eviction frontier: every id `< horizon` has had its retention
    /// decision made (`base <= horizon <= total`).
    horizon: u32,
    /// Sorted stable ids `< base` retained by the policy; their rows sit
    /// at positions `0..retained.len()` in id order.
    retained: Vec<u32>,
    /// Sorted stable ids in `[base, horizon)` retained since the last
    /// compaction (still at their dense row; folded into `retained` at
    /// the next compaction).
    kept_above_base: Vec<u32>,
    /// Rows evicted but not yet reclaimed by compaction.
    dead_rows: u32,
    /// Per-row transaction id.
    ids: Vec<TxId>,
    index: HashMap<TxId, NodeId, TxIdBuildHasher>,
    /// CSR offsets into [`TanGraph::in_pool`] per row; length `rows + 1`.
    in_offsets: Vec<u32>,
    /// Flattened input adjacency (deduplicated, insertion order).
    in_pool: Vec<NodeId>,
    /// First spender chunk per row, or [`NONE`].
    sp_head: Vec<u32>,
    /// Last spender chunk per row, or [`NONE`] (append fast path).
    sp_tail: Vec<u32>,
    /// `|Nout(v)|` so far, per row (O(1) in-degree).
    in_counts: Vec<u32>,
    /// The chunk arena backing every spender list.
    chunks: Vec<SpenderChunk>,
    /// Chunk directory for nodes whose spender list spans **multiple**
    /// chunks (high-fanout hubs only — single-chunk nodes, the common
    /// case, never appear here), keyed by **stable id**: the node's
    /// chunk ids in list order. Because a new chunk is only opened when
    /// the tail is full, every chunk but the last holds exactly
    /// [`CHUNK`] spenders, and spender ids grow monotonically — so
    /// [`TanGraph::in_degree_at`] can binary search the directory by
    /// each chunk's first id instead of walking the chunk list.
    chunk_dir: HashMap<u32, Vec<u32>>,
    /// Directed edges ever inserted (cumulative over the stream —
    /// eviction does not subtract).
    edge_count: u64,
    /// Inputs referencing transactions unknown to this graph (spends of
    /// outputs created before a warm-start window, **or of evicted
    /// nodes**). They create no edge.
    missing_parent_refs: u64,
    /// Reusable dedup buffer for parent [`NodeId`]s (kept empty between
    /// insertions).
    node_scratch: Vec<NodeId>,
    /// Reusable dedup buffer for parent [`TxId`]s (kept empty between
    /// insertions).
    txid_scratch: Vec<TxId>,
}

impl Default for TanGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl TanGraph {
    /// Creates an empty graph (unbounded retention).
    pub fn new() -> Self {
        TanGraph {
            retention: RetentionPolicy::Unbounded,
            total: 0,
            base: 0,
            horizon: 0,
            retained: Vec::new(),
            kept_above_base: Vec::new(),
            dead_rows: 0,
            ids: Vec::new(),
            index: HashMap::with_hasher(TxIdBuildHasher),
            in_offsets: vec![0],
            in_pool: Vec::new(),
            sp_head: Vec::new(),
            sp_tail: Vec::new(),
            in_counts: Vec::new(),
            chunks: Vec::new(),
            chunk_dir: HashMap::new(),
            edge_count: 0,
            missing_parent_refs: 0,
            node_scratch: Vec::new(),
            txid_scratch: Vec::new(),
        }
    }

    /// Creates an empty graph pre-sized for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut g = TanGraph::new();
        g.reserve_rows(capacity);
        g
    }

    /// Creates an empty graph with a [`RetentionPolicy`] (the filter
    /// [`TanGraph::evict_before`] applies).
    pub fn with_retention(retention: RetentionPolicy) -> Self {
        let mut g = TanGraph::new();
        g.retention = retention;
        g
    }

    /// The configured retention policy.
    pub fn retention(&self) -> RetentionPolicy {
        self.retention
    }

    /// Installs a retention policy. Allowed until the first eviction
    /// (the policy is consulted only when a node crosses the horizon,
    /// so swapping it on a never-evicted graph — e.g. one restored from
    /// a replay-format snapshot — is well-defined).
    ///
    /// # Panics
    ///
    /// Panics if the horizon has already advanced.
    pub fn set_retention(&mut self, retention: RetentionPolicy) {
        assert!(
            self.horizon == 0,
            "retention must be configured before the first eviction"
        );
        self.retention = retention;
    }

    /// Pre-sizes the row arenas for `extra` additional nodes.
    fn reserve_rows(&mut self, extra: usize) {
        self.ids.reserve(extra);
        self.index.reserve(extra);
        self.in_offsets.reserve(extra);
        // Average TaN degree ≈ 2.3 ⇒ ~2.5 pool slots per node.
        self.in_pool.reserve(extra.saturating_mul(5) / 2);
        self.sp_head.reserve(extra);
        self.sp_tail.reserve(extra);
        self.in_counts.reserve(extra);
        self.chunks.reserve(extra / 2);
    }

    /// Builds a graph from transactions in arrival order.
    pub fn from_transactions<'a, I>(txs: I) -> Self
    where
        I: IntoIterator<Item = &'a Transaction>,
    {
        let mut g = TanGraph::new();
        for tx in txs {
            g.insert_tx(tx);
        }
        g
    }

    /// Row of a **live** stable id, or `None` when the id was evicted
    /// (or never inserted). The stable-id remap: dense offset for the
    /// live region, binary search over the retained survivors below it.
    #[inline]
    fn row_of(&self, id: u32) -> Option<usize> {
        if id >= self.base {
            if id >= self.total {
                return None;
            }
            let row = self.retained.len() + (id - self.base) as usize;
            if id >= self.horizon || self.kept_above_base.binary_search(&id).is_ok() {
                Some(row)
            } else {
                None
            }
        } else {
            self.retained.binary_search(&id).ok()
        }
    }

    /// `true` iff `node` was inserted and has not been evicted.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.row_of(node.0).is_some()
    }

    /// Inserts a node for `txid` spending from the transactions in
    /// `parents`, returning its [`NodeId`].
    ///
    /// Duplicate entries in `parents` are collapsed. Parents not present
    /// in the graph — never inserted, or **evicted** by the retention
    /// policy — are counted in [`TanGraph::missing_parent_refs`] and
    /// otherwise ignored; this supports warm-start experiments and
    /// windowed streams alike.
    ///
    /// # Panics
    ///
    /// Panics if `txid` is already live in the graph (the ledger
    /// guarantees unique ids; a duplicate here is a logic error worth
    /// failing fast on).
    pub fn insert(&mut self, txid: TxId, parents: &[TxId]) -> NodeId {
        let node = NodeId(self.total);
        let prev = self.index.insert(txid, node);
        assert!(
            prev.is_none(),
            "transaction {txid} inserted twice into TaN graph"
        );
        self.total += 1;
        self.ids.push(txid);

        let mut dedup = std::mem::take(&mut self.node_scratch);
        dedup.clear();
        for parent in parents {
            match self.index.get(parent) {
                Some(&p) if p != node => {
                    if !dedup.contains(&p) {
                        dedup.push(p);
                    }
                }
                Some(_) => {} // self-reference cannot happen; ids are unique
                None => self.missing_parent_refs += 1,
            }
        }
        for &p in &dedup {
            self.push_spender(p, node);
        }
        self.edge_count += dedup.len() as u64;
        self.in_pool.extend_from_slice(&dedup);
        self.in_offsets.push(self.in_pool.len() as u32);
        self.sp_head.push(NONE);
        self.sp_tail.push(NONE);
        self.in_counts.push(0);
        dedup.clear();
        self.node_scratch = dedup;
        node
    }

    /// Appends `spender` to `parent`'s chunked spender list.
    fn push_spender(&mut self, parent: NodeId, spender: NodeId) {
        let p = self
            .row_of(parent.0)
            .expect("spender edges only target live parents");
        self.in_counts[p] += 1;
        let tail = self.sp_tail[p];
        if tail != NONE {
            let chunk = &mut self.chunks[tail as usize];
            if (chunk.len as usize) < CHUNK {
                chunk.slots[chunk.len as usize] = spender;
                chunk.len += 1;
                return;
            }
        }
        // Need a fresh chunk.
        let idx = self.chunks.len() as u32;
        let mut chunk = SpenderChunk::new();
        chunk.slots[0] = spender;
        chunk.len = 1;
        self.chunks.push(chunk);
        if tail == NONE {
            self.sp_head[p] = idx;
        } else {
            self.chunks[tail as usize].next = idx;
            // The node now spans multiple chunks: index them for the
            // historical binary search (amortized — once per CHUNK
            // spenders on hubs, never for single-chunk nodes).
            let head = self.sp_head[p];
            self.chunk_dir
                .entry(parent.0)
                .or_insert_with(|| {
                    let mut dir = Vec::with_capacity(4);
                    dir.push(head);
                    dir
                })
                .push(idx);
        }
        self.sp_tail[p] = idx;
    }

    /// Inserts a node for a full [`Transaction`] (edges to its distinct
    /// input transactions) without any intermediate allocation.
    pub fn insert_tx(&mut self, tx: &Transaction) -> NodeId {
        // Dedup at the TxId level first so an unknown parent spent through
        // several outputs still counts one missing reference (the same
        // semantics as `insert(tx.id(), &tx.input_txids())`).
        let mut tids = std::mem::take(&mut self.txid_scratch);
        tids.clear();
        for op in tx.inputs() {
            if !tids.contains(&op.txid) {
                tids.push(op.txid);
            }
        }
        let node = self.insert(tx.id(), &tids);
        tids.clear();
        self.txid_scratch = tids;
        node
    }

    /// Advances the eviction horizon: every node with id `< horizon`
    /// that has not yet been decided is either **retained** (under
    /// [`RetentionPolicy::KeepUnspentAndHubs`], when it is unspent or a
    /// hub at this point of the stream) or **evicted** — its `TxId`
    /// leaves the index immediately, so later spends of it count as
    /// missing parent references. The retention decision is made exactly
    /// once per node, at the moment it crosses the horizon.
    ///
    /// Physical reclamation is amortized: dead rows accumulate until an
    /// automatic compaction (`O(live)` work, triggered once per ~half
    /// window) copies the survivors into fresh arenas. Call
    /// [`TanGraph::compact`] for an exact, shrink-to-fit compaction at
    /// checkpoint time.
    ///
    /// The horizon only moves forward; calls with a smaller value are
    /// no-ops. Ids stay stable throughout.
    pub fn evict_before(&mut self, horizon: u32) {
        let target = horizon.min(self.total);
        if target <= self.horizon {
            return;
        }
        while self.horizon < target {
            let id = self.horizon;
            let row = self.retained.len() + (id - self.base) as usize;
            let keep = match self.retention {
                RetentionPolicy::KeepUnspentAndHubs { min_degree } => {
                    let d = self.in_counts[row];
                    d == 0 || d >= min_degree
                }
                _ => false,
            };
            if keep {
                self.kept_above_base.push(id);
            } else {
                self.index.remove(&self.ids[row]);
                self.dead_rows += 1;
            }
            self.horizon += 1;
        }
        let live = self.ids.len() as u32 - self.dead_rows;
        if self.dead_rows >= MIN_COMPACT.max(live / 2) {
            self.compact_rows(false);
        }
    }

    /// Forces an exact compaction: reclaims every dead row and releases
    /// excess arena capacity (checkpoint-time shrink). A no-op on graphs
    /// that never evicted.
    pub fn compact(&mut self) {
        if self.dead_rows > 0 || self.ids.len() < self.ids.capacity() {
            self.compact_rows(true);
        }
    }

    /// Copies every live row into fresh arenas, dropping dead rows and
    /// folding `kept_above_base` into the retained list. `shrink` sizes
    /// the new arenas exactly; otherwise they carry ~50% headroom so the
    /// next half-window of insertions costs no doubling reallocation.
    fn compact_rows(&mut self, shrink: bool) {
        let rows = self.ids.len();
        let old_r = self.retained.len();
        let live = rows - self.dead_rows as usize;
        // Pre-pass: exact pool/chunk sizes of the surviving rows.
        let mut pool_len = 0usize;
        let mut chunk_len = 0usize;
        self.for_each_live_row(|g, row, _id| {
            pool_len += (g.in_offsets[row + 1] - g.in_offsets[row]) as usize;
            let mut c = g.sp_head[row];
            while c != NONE {
                chunk_len += 1;
                c = g.chunks[c as usize].next;
            }
        });
        // Headroom covers the growth until the next automatic compaction
        // (`max(MIN_COMPACT, live/2)` inserted rows), scaled by each
        // array's per-row density, so steady state never pays a doubling
        // reallocation and peak capacity stays at ~1.5× the live set
        // (MIN_COMPACT-floored).
        let headroom_rows = (live / 2).max(MIN_COMPACT as usize);
        let cap = move |n: usize| {
            if shrink {
                n
            } else {
                n + headroom_rows * n.div_ceil(live.max(1)) + 16
            }
        };

        let mut ids = Vec::with_capacity(cap(live));
        let mut in_offsets = Vec::with_capacity(cap(live) + 1);
        in_offsets.push(0u32);
        let mut in_pool: Vec<NodeId> = Vec::with_capacity(cap(pool_len));
        let mut sp_head = Vec::with_capacity(cap(live));
        let mut sp_tail = Vec::with_capacity(cap(live));
        let mut in_counts = Vec::with_capacity(cap(live));
        let mut chunks: Vec<SpenderChunk> = Vec::with_capacity(cap(chunk_len));
        let mut chunk_dir: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut retained = Vec::with_capacity(old_r + self.kept_above_base.len());

        self.for_each_live_row(|g, row, id| {
            if id < g.horizon {
                retained.push(id);
            }
            ids.push(g.ids[row]);
            in_counts.push(g.in_counts[row]);
            let lo = g.in_offsets[row] as usize;
            let hi = g.in_offsets[row + 1] as usize;
            in_pool.extend_from_slice(&g.in_pool[lo..hi]);
            in_offsets.push(in_pool.len() as u32);
            let mut c = g.sp_head[row];
            if c == NONE {
                sp_head.push(NONE);
                sp_tail.push(NONE);
            } else {
                let head = chunks.len() as u32;
                let mut dir: Vec<u32> = Vec::new();
                while c != NONE {
                    let mut chunk = g.chunks[c as usize].clone();
                    c = chunk.next;
                    chunk.next = NONE;
                    let idx = chunks.len() as u32;
                    if idx > head {
                        chunks[idx as usize - 1].next = idx;
                    }
                    dir.push(idx);
                    chunks.push(chunk);
                }
                sp_head.push(head);
                sp_tail.push(chunks.len() as u32 - 1);
                if dir.len() > 1 {
                    chunk_dir.insert(id, dir);
                }
            }
        });

        self.ids = ids;
        self.in_offsets = in_offsets;
        self.in_pool = in_pool;
        self.sp_head = sp_head;
        self.sp_tail = sp_tail;
        self.in_counts = in_counts;
        self.chunks = chunks;
        self.chunk_dir = chunk_dir;
        self.retained = retained;
        self.kept_above_base.clear();
        self.base = self.horizon;
        self.dead_rows = 0;
        if shrink {
            self.index.shrink_to_fit();
        }
    }

    /// Visits `(graph, row, stable_id)` for every live row in row order.
    fn for_each_live_row(&self, mut visit: impl FnMut(&Self, usize, u32)) {
        let old_r = self.retained.len();
        for row in 0..self.ids.len() {
            let id = if row < old_r {
                self.retained[row]
            } else {
                self.base + (row - old_r) as u32
            };
            let live = row < old_r
                || id >= self.horizon
                || self.kept_above_base.binary_search(&id).is_ok();
            if live {
                visit(self, row, id);
            }
        }
    }

    /// Number of nodes ever inserted (ids are stable, so this keeps
    /// counting the whole stream even after eviction — see
    /// [`TanGraph::live_len`]).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Number of nodes currently resident (live window + retained
    /// survivors).
    pub fn live_len(&self) -> usize {
        self.ids.len() - self.dead_rows as usize
    }

    /// Number of nodes evicted by the retention policy so far.
    pub fn evicted_nodes(&self) -> u64 {
        self.total as u64 - self.live_len() as u64
    }

    /// Number of aged nodes the retention policy kept past the horizon
    /// (unspent frontier / hubs under
    /// [`RetentionPolicy::KeepUnspentAndHubs`]).
    pub fn retained_nodes(&self) -> usize {
        self.retained.len() + self.kept_above_base.len()
    }

    /// The eviction horizon: every node with a smaller id has had its
    /// retention decision made (0 on graphs that never evicted).
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// `true` iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of (collapsed) directed edges ever inserted (cumulative —
    /// eviction does not subtract).
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Count of input references whose parent transaction was unknown
    /// (never inserted, or evicted by the retention policy).
    pub fn missing_parent_refs(&self) -> u64 {
        self.missing_parent_refs
    }

    /// The transaction id of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or evicted.
    pub fn txid(&self, node: NodeId) -> TxId {
        let row = self
            .row_of(node.0)
            .unwrap_or_else(|| panic!("node {node} is out of range or evicted"));
        self.ids[row]
    }

    /// The node for `txid`, if present and live.
    pub fn node(&self, txid: TxId) -> Option<NodeId> {
        self.index.get(&txid).copied()
    }

    /// The distinct transactions `u` spends from — the paper's `Nin(u)` —
    /// as one contiguous slice of the CSR pool. Empty for evicted nodes.
    pub fn inputs(&self, u: NodeId) -> &[NodeId] {
        match self.row_of(u.0) {
            Some(row) => {
                let lo = self.in_offsets[row] as usize;
                let hi = self.in_offsets[row + 1] as usize;
                &self.in_pool[lo..hi]
            }
            None => &[],
        }
    }

    /// The transactions spending `v`'s outputs so far — the paper's
    /// `Nout(v)` at the current point of the stream — in arrival order.
    /// Empty for evicted nodes.
    pub fn spenders(&self, v: NodeId) -> Spenders<'_> {
        Spenders {
            graph: self,
            chunk: self.row_of(v.0).map_or(NONE, |row| self.sp_head[row]),
            slot: 0,
        }
    }

    /// Out-degree of `u` in the paper's orientation (`|Nin(u)|`): how many
    /// distinct transactions it spends from. Zero for coinbase (and for
    /// evicted nodes).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.inputs(u).len()
    }

    /// In-degree of `v` (`|Nout(v)|`): how many transactions spend from it
    /// so far. Zero while unspent (and for evicted nodes). O(1).
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.row_of(v.0)
            .map_or(0, |row| self.in_counts[row] as usize)
    }

    /// In-degree of `v` as it was when `observer` arrived: the number of
    /// spenders with node id `<= observer`.
    ///
    /// This is the `|Nout(v)|` an *online* algorithm saw at `observer`'s
    /// arrival — the quantity the T2S streaming update divides by — and it
    /// lets warm-started replays reproduce live-streamed state exactly.
    ///
    /// The streaming case (`observer` is the newest node, so every spender
    /// qualifies) is O(1); historical observers binary search the node's
    /// chunk directory by first spender id, then binary search inside the
    /// straddling chunk — `O(log d)` on a hub of in-degree `d` instead of
    /// the former `O(d/CHUNK)` chunk walk. Zero for evicted nodes.
    pub fn in_degree_at(&self, v: NodeId, observer: NodeId) -> usize {
        let Some(row) = self.row_of(v.0) else {
            return 0;
        };
        let count = self.in_counts[row] as usize;
        if count == 0 {
            return 0;
        }
        // Fast path: spender lists grow in id order, so if the most
        // recently appended spender is within view, all of them are.
        let tail = &self.chunks[self.sp_tail[row] as usize];
        if tail.slots[tail.len as usize - 1] <= observer {
            return count;
        }
        let straddling = |chunk: &SpenderChunk, before: usize| {
            before + chunk.entries().partition_point(|&s| s <= observer)
        };
        // Single-chunk node — the common case (average TaN degree ≈ 2.3):
        // the count alone proves there is no directory entry to look up.
        if count <= CHUNK {
            return straddling(&self.chunks[self.sp_head[row] as usize], 0);
        }
        let dir = self
            .chunk_dir
            .get(&v.0)
            .expect("multi-chunk nodes are always indexed");
        // Every chunk but the last is full (a new chunk is only opened
        // when the tail fills), so the chunk at directory position `i`
        // covers spenders `i * CHUNK ..`. Find the last chunk whose first
        // spender is within view; everything before it is fully visible.
        let pos = dir.partition_point(|&c| self.chunks[c as usize].slots[0] <= observer);
        if pos == 0 {
            return 0;
        }
        straddling(&self.chunks[dir[pos - 1] as usize], (pos - 1) * CHUNK)
    }

    /// Iterates over all node ids ever inserted, in insertion
    /// (topological) order — including evicted ids, whose accessors
    /// return empty/zero (see [`TanGraph::live_nodes`]).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.total).map(NodeId)
    }

    /// Iterates over the live node ids (window + retained survivors) in
    /// insertion order.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.retained
            .iter()
            .copied()
            .chain(
                self.kept_above_base
                    .iter()
                    .copied()
                    .chain(self.horizon..self.total),
            )
            .map(NodeId)
    }

    /// Iterates over all directed edges `(u, v)` meaning "`u` spends `v`"
    /// among live nodes.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.inputs(u).iter().map(move |&v| (u, v)))
    }

    /// Bytes of heap owned by the adjacency arenas (diagnostics for the
    /// perf baseline's memory gate; excludes the `TxId` index and the
    /// hub chunk directory).
    pub fn arena_bytes(&self) -> usize {
        self.in_pool.capacity() * std::mem::size_of::<NodeId>()
            + self.in_offsets.capacity() * std::mem::size_of::<u32>()
            + self.ids.capacity() * std::mem::size_of::<TxId>()
            + self.chunks.capacity() * std::mem::size_of::<SpenderChunk>()
            + (self.sp_head.capacity()
                + self.sp_tail.capacity()
                + self.in_counts.capacity()
                + self.retained.capacity()
                + self.kept_above_base.capacity())
                * std::mem::size_of::<u32>()
    }

    /// Estimated bytes of graph state attributable to one live node: a
    /// fixed per-row share of the arenas (id, txid, offsets, spender
    /// head/tail/count) plus its input edges and spender-list entries.
    /// Zero for evicted nodes. This is the migration-cost input of the
    /// rebalancer's cost model — what moving the node's placement state
    /// between shards would ship — so it only needs to be a stable,
    /// deterministic estimate, not an exact heap measurement.
    pub fn node_state_bytes(&self, u: NodeId) -> usize {
        if !self.is_live(u) {
            return 0;
        }
        // Per-row fixed share: ids (TxId) + in_offsets + sp_head +
        // sp_tail + in_counts + the TxId-index entry (~2 u64 slots).
        const NODE_BASE: usize = 8 + 4 + 4 + 4 + 4 + 16;
        NODE_BASE
            + self.out_degree(u) * std::mem::size_of::<NodeId>()
            + self.in_degree(u) * std::mem::size_of::<u32>()
    }

    /// Serializes the live graph into `w` in its canonical compacted
    /// form: retention, stream counters, and one entry per live row in
    /// stable-id order (id, txid, input set, spender list). Dead rows
    /// never hit the wire, so the encoding is O(live window + retained
    /// survivors) — the checkpoint-friendly shape.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u8(TAN_CODEC_VERSION);
        self.retention.encode_into(w);
        w.put_u32(self.total);
        w.put_u32(self.horizon);
        w.put_u64(self.edge_count);
        w.put_u64(self.missing_parent_refs);
        w.put_u64(self.live_len() as u64);
        self.for_each_live_row(|g, row, id| {
            w.put_u32(id);
            w.put_u64(g.ids[row].0);
            let lo = g.in_offsets[row] as usize;
            let hi = g.in_offsets[row + 1] as usize;
            w.put_u32((hi - lo) as u32);
            for p in &g.in_pool[lo..hi] {
                w.put_u32(p.0);
            }
            w.put_u32(g.in_counts[row]);
            let mut c = g.sp_head[row];
            while c != NONE {
                let chunk = &g.chunks[c as usize];
                for s in chunk.entries() {
                    w.put_u32(s.0);
                }
                c = chunk.next;
            }
        });
    }

    /// Decodes a graph written by [`TanGraph::encode_into`] back into
    /// its canonical compacted form (base at the horizon, survivors
    /// folded into the retained list, spender chunks re-packed so that
    /// every chunk but a node's last is full — the invariant
    /// [`TanGraph::in_degree_at`]'s fast path relies on).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        if r.get_u8()? != TAN_CODEC_VERSION {
            return Err(CodecError("unsupported TaN codec version"));
        }
        let retention = RetentionPolicy::decode_from(r)?;
        let total = r.get_u32()?;
        let horizon = r.get_u32()?;
        if horizon > total {
            return Err(CodecError("TaN horizon past the stream length"));
        }
        let edge_count = r.get_u64()?;
        let missing_parent_refs = r.get_u64()?;
        // Minimum encoded row: id + txid + two empty-list counts.
        let rows = r.get_count(20)?;
        if rows < (total - horizon) as usize {
            return Err(CodecError("TaN live window not fully present"));
        }

        let mut g = TanGraph::with_capacity(rows);
        g.retention = retention;
        g.total = total;
        g.base = horizon;
        g.horizon = horizon;
        g.edge_count = edge_count;
        g.missing_parent_refs = missing_parent_refs;

        let mut prev_id: Option<u32> = None;
        let mut expected_dense = horizon;
        for _ in 0..rows {
            let id = r.get_u32()?;
            if id >= total || prev_id.is_some_and(|p| id <= p) {
                return Err(CodecError("TaN row ids must be strictly increasing"));
            }
            prev_id = Some(id);
            if id < horizon {
                if expected_dense != horizon {
                    return Err(CodecError("retained TaN row after the live window"));
                }
                g.retained.push(id);
            } else {
                if id != expected_dense {
                    return Err(CodecError("gap in the live TaN window"));
                }
                expected_dense += 1;
            }
            let txid = TxId(r.get_u64()?);
            let row = g.ids.len();
            if g.index.insert(txid, NodeId(id)).is_some() {
                return Err(CodecError("duplicate txid in TaN rows"));
            }
            g.ids.push(txid);
            let n_in = r.get_u32()? as usize;
            for _ in 0..n_in {
                g.in_pool.push(NodeId(r.get_u32()?));
            }
            g.in_offsets.push(g.in_pool.len() as u32);
            let n_sp = r.get_u32()? as usize;
            g.in_counts.push(n_sp as u32);
            g.sp_head.push(NONE);
            g.sp_tail.push(NONE);
            if n_sp > 0 {
                // Re-pack the spender list into full chunks; index the
                // directory only for multi-chunk nodes.
                let head = g.chunks.len() as u32;
                let mut dir: Vec<u32> = Vec::new();
                for i in 0..n_sp {
                    let spender = NodeId(r.get_u32()?);
                    if i % CHUNK == 0 {
                        let idx = g.chunks.len() as u32;
                        if idx > head {
                            g.chunks[idx as usize - 1].next = idx;
                        }
                        dir.push(idx);
                        g.chunks.push(SpenderChunk::new());
                    }
                    let chunk = g.chunks.last_mut().expect("chunk just pushed");
                    chunk.slots[chunk.len as usize] = spender;
                    chunk.len += 1;
                }
                g.sp_head[row] = head;
                g.sp_tail[row] = g.chunks.len() as u32 - 1;
                if dir.len() > 1 {
                    g.chunk_dir.insert(id, dir);
                }
            }
        }
        if expected_dense != total {
            return Err(CodecError("TaN live window not fully present"));
        }
        Ok(g)
    }
}

/// Wire-format version of [`TanGraph::encode_into`].
const TAN_CODEC_VERSION: u8 = 1;

/// Iterator over a node's spenders (see [`TanGraph::spenders`]).
#[derive(Debug, Clone)]
pub struct Spenders<'a> {
    graph: &'a TanGraph,
    chunk: u32,
    slot: u32,
}

impl Iterator for Spenders<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.chunk != NONE {
            let chunk = &self.graph.chunks[self.chunk as usize];
            if self.slot < chunk.len {
                let item = chunk.slots[self.slot as usize];
                self.slot += 1;
                return Some(item);
            }
            self.chunk = chunk.next;
            self.slot = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spenders_vec(g: &TanGraph, v: NodeId) -> Vec<NodeId> {
        g.spenders(v).collect()
    }

    #[test]
    fn node_state_bytes_tracks_degrees() {
        let mut g = TanGraph::new();
        let a = g.insert(TxId(0), &[]);
        let b = g.insert(TxId(1), &[TxId(0)]);
        let c = g.insert(TxId(2), &[TxId(0), TxId(1)]);
        let base = g.node_state_bytes(c) - 2 * std::mem::size_of::<NodeId>();
        assert_eq!(g.node_state_bytes(a), base + 2 * 4); // two spenders
        assert_eq!(
            g.node_state_bytes(b),
            base + std::mem::size_of::<NodeId>() + 4
        );
        // Eviction zeroes the estimate along with the state it measures.
        let mut windowed = TanGraph::with_retention(RetentionPolicy::WindowTxs(1));
        let first = windowed.insert(TxId(10), &[]);
        windowed.insert(TxId(11), &[]);
        windowed.evict_before(1);
        assert_eq!(windowed.node_state_bytes(first), 0);
    }

    #[test]
    fn insert_builds_both_directions() {
        let mut g = TanGraph::new();
        let a = g.insert(TxId(0), &[]);
        let b = g.insert(TxId(1), &[]);
        let c = g.insert(TxId(2), &[TxId(0), TxId(1)]);
        assert_eq!(g.inputs(c), &[a, b]);
        assert_eq!(spenders_vec(&g, a), &[c]);
        assert_eq!(spenders_vec(&g, b), &[c]);
        assert_eq!(g.out_degree(c), 2);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        let b = g.insert(TxId(1), &[TxId(0), TxId(0), TxId(0)]);
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn missing_parents_are_counted_not_linked() {
        let mut g = TanGraph::new();
        let a = g.insert(TxId(10), &[TxId(3), TxId(4)]);
        assert_eq!(g.out_degree(a), 0);
        assert_eq!(g.missing_parent_refs(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_txid_panics() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(0), &[]);
    }

    #[test]
    fn edges_iterator_lists_all() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        g.insert(TxId(2), &[TxId(0), TxId(1)]);
        let edges: Vec<_> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(edges, vec![(1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn node_lookup_roundtrip() {
        let mut g = TanGraph::new();
        let n = g.insert(TxId(99), &[]);
        assert_eq!(g.node(TxId(99)), Some(n));
        assert_eq!(g.txid(n), TxId(99));
        assert_eq!(g.node(TxId(1)), None);
    }

    #[test]
    fn from_transactions_links_inputs() {
        use optchain_utxo::{Transaction, TxOutput, WalletId};
        let cb = Transaction::coinbase(TxId(0), 10, WalletId(0));
        let spend = Transaction::builder(TxId(1))
            .input(TxId(0).outpoint(0))
            .output(TxOutput::new(10, WalletId(1)))
            .build();
        let g = TanGraph::from_transactions([&cb, &spend]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(NodeId(1)), 1);
    }

    #[test]
    fn edges_point_backwards_in_insertion_order() {
        // The DAG/topological-order invariant.
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        g.insert(TxId(2), &[TxId(1), TxId(0)]);
        for (u, v) in g.edges() {
            assert!(v < u, "edge ({u}, {v}) must point to an earlier node");
        }
    }

    #[test]
    fn spender_chunks_chain_past_one_chunk() {
        // A hub spent by far more children than one chunk holds.
        let mut g = TanGraph::new();
        let hub = g.insert(TxId(0), &[]);
        let n = (CHUNK * 3 + 2) as u64;
        for i in 1..=n {
            g.insert(TxId(i), &[TxId(0)]);
        }
        assert_eq!(g.in_degree(hub), n as usize);
        let spenders = spenders_vec(&g, hub);
        assert_eq!(spenders.len(), n as usize);
        // Arrival order, strictly increasing.
        for w in spenders.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Historical views at every cut point.
        for obs in 0..=n {
            assert_eq!(
                g.in_degree_at(hub, NodeId(obs as u32)),
                obs as usize,
                "observer {obs}"
            );
        }
    }

    #[test]
    fn in_degree_at_binary_search_on_interleaved_hubs() {
        // Two hubs spent alternately, so their chunk ids interleave in the
        // arena (the directory must not assume contiguity), plus enough
        // spenders per hub to span many chunks.
        let mut g = TanGraph::new();
        let h0 = g.insert(TxId(0), &[]);
        let h1 = g.insert(TxId(1), &[]);
        let rounds = (CHUNK * 40) as u64;
        let mut spenders0 = Vec::new();
        let mut spenders1 = Vec::new();
        for i in 0..rounds {
            let hub = if i % 2 == 0 { 0 } else { 1 };
            let n = g.insert(TxId(2 + i), &[TxId(hub)]);
            if hub == 0 {
                spenders0.push(n);
            } else {
                spenders1.push(n);
            }
        }
        for (hub, spenders) in [(h0, &spenders0), (h1, &spenders1)] {
            // Every cut point, including before the first spender and the
            // streaming fast path at the end.
            for obs in 0..g.len() as u32 {
                let expected = spenders.iter().filter(|s| s.0 <= obs).count();
                assert_eq!(
                    g.in_degree_at(hub, NodeId(obs)),
                    expected,
                    "hub {hub} observer {obs}"
                );
            }
        }
    }

    #[test]
    fn in_degree_at_streaming_fast_path() {
        let mut g = TanGraph::new();
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[TxId(0)]);
        let latest = g.insert(TxId(2), &[TxId(0)]);
        // The newest node sees every spender inserted so far.
        assert_eq!(g.in_degree_at(NodeId(0), latest), 2);
        assert_eq!(g.in_degree_at(NodeId(0), NodeId(1)), 1);
        assert_eq!(g.in_degree_at(NodeId(0), NodeId(0)), 0);
    }

    // -----------------------------------------------------------------
    // Retention / eviction
    // -----------------------------------------------------------------

    /// Inserts a simple chain of `n` nodes: `i` spends `i - 1`.
    fn chain(g: &mut TanGraph, n: u64) {
        for i in 0..n {
            if i == 0 {
                g.insert(TxId(0), &[]);
            } else {
                g.insert(TxId(i), &[TxId(i - 1)]);
            }
        }
    }

    #[test]
    fn window_eviction_unlinks_old_parents() {
        let mut g = TanGraph::with_retention(RetentionPolicy::WindowTxs(4));
        chain(&mut g, 10);
        g.evict_before(6);
        assert_eq!(g.len(), 10);
        assert_eq!(g.live_len(), 4);
        assert_eq!(g.evicted_nodes(), 6);
        assert_eq!(g.horizon(), 6);
        // Evicted ids degrade gracefully.
        for i in 0..6u32 {
            let n = NodeId(i);
            assert!(!g.is_live(n));
            assert!(g.node(TxId(i as u64)).is_none(), "id {i}");
            assert!(g.inputs(n).is_empty());
            assert_eq!(g.in_degree(n), 0);
            assert_eq!(g.in_degree_at(n, NodeId(9)), 0);
            assert_eq!(g.spenders(n).count(), 0);
        }
        // Live ids keep full state under stable ids.
        assert_eq!(g.inputs(NodeId(7)), &[NodeId(6)]);
        assert_eq!(g.in_degree(NodeId(7)), 1);
        // A spend of an evicted output is a missing reference.
        let before = g.missing_parent_refs();
        g.insert(TxId(100), &[TxId(2)]);
        assert_eq!(g.missing_parent_refs(), before + 1);
    }

    #[test]
    fn horizon_only_moves_forward() {
        let mut g = TanGraph::with_retention(RetentionPolicy::WindowTxs(2));
        chain(&mut g, 6);
        g.evict_before(4);
        g.evict_before(1); // no-op
        assert_eq!(g.horizon(), 4);
        assert_eq!(g.live_len(), 2);
    }

    #[test]
    fn compaction_preserves_live_state_and_stable_ids() {
        let mut g = TanGraph::with_retention(RetentionPolicy::WindowTxs(8));
        chain(&mut g, 24);
        g.evict_before(24 - 8);
        g.compact();
        assert_eq!(g.live_len(), 8);
        // The live tail keeps its adjacency under stable ids (an input
        // edge lives in the child's row, so it survives even if the
        // parent is evicted later).
        for i in 17..24u32 {
            assert!(g.is_live(NodeId(i)));
            assert_eq!(g.inputs(NodeId(i)), &[NodeId(i - 1)], "id {i}");
        }
        // Spender lists of live nodes survive the arena rebuild.
        assert_eq!(spenders_vec(&g, NodeId(20)), &[NodeId(21)]);
        assert_eq!(g.in_degree_at(NodeId(20), NodeId(20)), 0);
        assert_eq!(g.in_degree_at(NodeId(20), NodeId(21)), 1);
        // Inserting continues with stable, monotone ids.
        let next = g.insert(TxId(999), &[TxId(23)]);
        assert_eq!(next, NodeId(24));
        assert_eq!(g.inputs(next), &[NodeId(23)]);
    }

    #[test]
    fn keep_unspent_and_hubs_retains_survivors() {
        let mut g = TanGraph::with_retention(RetentionPolicy::KeepUnspentAndHubs { min_degree: 3 });
        // id 0: a hub spent 3 times; id 1: unspent; id 2: spent once.
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[]);
        g.insert(TxId(2), &[]);
        g.insert(TxId(3), &[TxId(0)]);
        g.insert(TxId(4), &[TxId(0)]);
        g.insert(TxId(5), &[TxId(0)]);
        g.insert(TxId(6), &[TxId(2)]);
        g.evict_before(3);
        // Hub (id 0) and unspent (id 1) survive; spent non-hub (id 2) dies.
        assert!(g.is_live(NodeId(0)));
        assert!(g.is_live(NodeId(1)));
        assert!(!g.is_live(NodeId(2)));
        assert_eq!(g.retained_nodes(), 2);
        assert_eq!(g.evicted_nodes(), 1);
        // Retained nodes stay resolvable and spendable.
        let n = g.insert(TxId(7), &[TxId(0), TxId(2)]);
        assert_eq!(g.inputs(n), &[NodeId(0)]);
        assert_eq!(g.in_degree(NodeId(0)), 4);
        // Compaction keeps the survivors addressable by stable id.
        g.compact();
        assert!(g.is_live(NodeId(0)));
        assert!(g.is_live(NodeId(1)));
        assert_eq!(g.node(TxId(1)), Some(NodeId(1)));
        assert_eq!(spenders_vec(&g, NodeId(0)).len(), 4);
        assert_eq!(g.in_degree_at(NodeId(0), NodeId(4)), 2);
    }

    #[test]
    fn retained_hub_chunk_directory_survives_compaction() {
        let mut g = TanGraph::with_retention(RetentionPolicy::KeepUnspentAndHubs { min_degree: 2 });
        let hub = g.insert(TxId(0), &[]);
        let fanout = (CHUNK * 5 + 3) as u64;
        for i in 0..fanout {
            g.insert(TxId(1 + i), &[TxId(0)]);
        }
        g.evict_before(g.len() as u32);
        g.compact();
        assert!(g.is_live(hub));
        // The multi-chunk historical search works on the rebuilt arena.
        for obs in 0..g.len() as u32 {
            assert_eq!(g.in_degree_at(hub, NodeId(obs)), obs as usize);
        }
        // And keeps growing.
        g.insert(TxId(1000), &[TxId(0)]);
        assert_eq!(g.in_degree(hub), fanout as usize + 1);
    }

    #[test]
    fn automatic_compaction_bounds_arena_memory() {
        let window = 2_000u32;
        let mut windowed = TanGraph::with_retention(RetentionPolicy::WindowTxs(window as usize));
        let mut peak = 0usize;
        for i in 0..40_000u64 {
            if i == 0 {
                windowed.insert(TxId(0), &[]);
            } else {
                windowed.insert(TxId(i), &[TxId(i - 1)]);
            }
            let len = windowed.len() as u32;
            if len > window {
                windowed.evict_before(len - window);
            }
            peak = peak.max(windowed.arena_bytes());
        }
        assert!(windowed.live_len() <= window as usize);
        // An unbounded graph over the same stream.
        let mut full = TanGraph::new();
        chain(&mut full, 40_000);
        assert!(
            peak * 4 < full.arena_bytes(),
            "windowed peak {peak} vs unbounded {}",
            full.arena_bytes()
        );
        // Checkpoint-time shrink releases the headroom.
        let before = windowed.arena_bytes();
        windowed.compact();
        assert!(windowed.arena_bytes() <= before);
    }

    #[test]
    fn live_nodes_iterates_survivors_in_order() {
        let mut g =
            TanGraph::with_retention(RetentionPolicy::KeepUnspentAndHubs { min_degree: 10 });
        // ids 0..4; 0 and 2 stay unspent, 1 and 3 get spent.
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[]);
        g.insert(TxId(2), &[]);
        g.insert(TxId(3), &[]);
        g.insert(TxId(4), &[TxId(1), TxId(3)]);
        g.evict_before(4);
        let live: Vec<u32> = g.live_nodes().map(|n| n.0).collect();
        assert_eq!(live, vec![0, 2, 4]);
        g.compact();
        let live: Vec<u32> = g.live_nodes().map(|n| n.0).collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "before the first eviction")]
    fn set_retention_after_eviction_panics() {
        let mut g = TanGraph::with_retention(RetentionPolicy::WindowTxs(1));
        g.insert(TxId(0), &[]);
        g.insert(TxId(1), &[]);
        g.evict_before(1);
        g.set_retention(RetentionPolicy::WindowTxs(2));
    }

    // -----------------------------------------------------------------
    // Checkpoint codec
    // -----------------------------------------------------------------

    fn roundtrip(g: &TanGraph) -> TanGraph {
        let mut w = ByteWriter::new();
        g.encode_into(&mut w);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        let out = TanGraph::decode_from(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        out
    }

    /// Observational equality of two graphs over the whole id space.
    fn assert_same_graph(a: &TanGraph, b: &TanGraph) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.live_len(), b.live_len());
        assert_eq!(a.horizon(), b.horizon());
        assert_eq!(a.retention(), b.retention());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.missing_parent_refs(), b.missing_parent_refs());
        for id in 0..a.len() as u32 {
            let n = NodeId(id);
            assert_eq!(a.is_live(n), b.is_live(n), "liveness of {n}");
            assert_eq!(a.inputs(n), b.inputs(n), "inputs of {n}");
            assert_eq!(spenders_vec(a, n), spenders_vec(b, n), "spenders of {n}");
            for obs in [id, id.saturating_sub(3), a.len() as u32 - 1] {
                assert_eq!(
                    a.in_degree_at(n, NodeId(obs)),
                    b.in_degree_at(n, NodeId(obs)),
                    "in_degree_at({n}, {obs})"
                );
            }
            if a.is_live(n) {
                assert_eq!(b.node(a.txid(n)), Some(n));
            }
        }
    }

    #[test]
    fn codec_roundtrips_an_unbounded_graph() {
        let mut g = TanGraph::new();
        chain(&mut g, 50);
        g.insert(TxId(100), &[TxId(3), TxId(7), TxId(999)]); // one missing ref
        let back = roundtrip(&g);
        assert_same_graph(&g, &back);
    }

    #[test]
    fn codec_roundtrips_mid_eviction_without_forcing_compaction() {
        // Dead rows below the automatic-compaction threshold: the
        // encoder must skip them without mutating the source.
        let mut g = TanGraph::with_retention(RetentionPolicy::WindowTxs(8));
        chain(&mut g, 40);
        g.evict_before(32);
        assert!(g.live_len() < g.ids.len(), "dead rows must be present");
        let back = roundtrip(&g);
        assert_same_graph(&g, &back);
        // The decoded form is exactly compacted.
        assert_eq!(back.dead_rows, 0);
        assert_eq!(back.base, back.horizon);
    }

    #[test]
    fn codec_roundtrips_retained_hubs_and_their_chunk_directories() {
        let mut g = TanGraph::with_retention(RetentionPolicy::KeepUnspentAndHubs { min_degree: 2 });
        let hub = g.insert(TxId(0), &[]);
        let fanout = (CHUNK * 4 + 3) as u64;
        for i in 0..fanout {
            g.insert(TxId(1 + i), &[TxId(0)]);
        }
        g.insert(TxId(900), &[]); // stays unspent
        g.evict_before(g.len() as u32 - 1);
        let back = roundtrip(&g);
        assert_same_graph(&g, &back);
        // The rebuilt multi-chunk directory answers historical queries.
        for obs in 0..back.len() as u32 {
            assert_eq!(
                back.in_degree_at(hub, NodeId(obs)),
                g.in_degree_at(hub, NodeId(obs))
            );
        }
    }

    #[test]
    fn decoded_graph_continues_identically_to_the_source() {
        let mut g = TanGraph::with_retention(RetentionPolicy::WindowTxs(16));
        chain(&mut g, 64);
        g.evict_before(48);
        let mut back = roundtrip(&g);
        for i in 64..128u64 {
            let a = g.insert(TxId(i), &[TxId(i - 1), TxId(i / 2)]);
            let b = back.insert(TxId(i), &[TxId(i - 1), TxId(i / 2)]);
            assert_eq!(a, b);
            g.evict_before(i as u32 + 1 - 16);
            back.evict_before(i as u32 + 1 - 16);
        }
        assert_same_graph(&g, &back);
    }

    #[test]
    fn codec_rejects_corrupt_streams() {
        let mut g = TanGraph::new();
        chain(&mut g, 10);
        let mut w = ByteWriter::new();
        g.encode_into(&mut w);
        let good = w.into_vec();
        // Truncations at every point must fail cleanly, never panic.
        for cut in 0..good.len() {
            let mut r = ByteReader::new(&good[..cut]);
            let decoded = TanGraph::decode_from(&mut r);
            let fully_consumed = decoded.is_ok() && r.finish().is_ok();
            assert!(
                !fully_consumed,
                "truncation at {cut} must not decode cleanly"
            );
        }
        // A wrong version byte fails fast.
        let mut bad = good.clone();
        bad[0] = 0xEE;
        assert!(TanGraph::decode_from(&mut ByteReader::new(&bad)).is_err());
    }
}
