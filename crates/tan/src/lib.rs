//! The Transactions-as-Nodes (TaN) network of the OptChain paper.
//!
//! > *"A TaN network of a set of transactions is presented as a directed
//! > graph G = (V, E) where V is the set of transactions and E is a set of
//! > directed edges in which there exists (u, v) ∈ E if the transaction u
//! > uses the UTXO(s) of transaction v."* — Definition 1, Section IV.A.
//!
//! The TaN network is an **online DAG**: nodes arrive one by one, and a
//! node's edges always point to earlier nodes (a transaction only spends
//! outputs of past transactions), so insertion order is a topological
//! order. [`TanGraph`] maintains both edge directions:
//!
//! * `inputs(u)` — the transactions whose outputs `u` spends (the paper's
//!   `Nin(u)`, the heads of `u`'s outgoing edges);
//! * `spenders(v)` — the transactions spending `v`'s outputs (the paper's
//!   `Nout(v)`, the tails of `v`'s incoming edges).
//!
//! [`stats`] computes the Fig 2 statistics: degree distributions,
//! cumulative distributions, and the average degree over time.
//!
//! For streaming deployments the graph is **evictable**: a
//! [`RetentionPolicy`] plus [`TanGraph::evict_before`] bound memory to
//! the recent window (and, optionally, retained unspent/hub survivors)
//! while node ids stay stable — see the [`graph`](TanGraph) docs.
//!
//! # Example
//!
//! ```
//! use optchain_tan::TanGraph;
//! use optchain_utxo::TxId;
//!
//! let mut tan = TanGraph::new();
//! let a = tan.insert(TxId(0), &[]); // coinbase: no outgoing edges
//! let b = tan.insert(TxId(1), &[TxId(0)]);
//! assert_eq!(tan.inputs(b), &[a]);
//! assert_eq!(tan.spenders(a).collect::<Vec<_>>(), &[b]);
//! assert_eq!(tan.edge_count(), 1);
//! ```
//!
//! # Storage
//!
//! Adjacency is flattened for the placement hot path: inputs live in one
//! CSR-style contiguous pool (immutable per node), spender lists in an
//! append-friendly chunk arena, and the `TxId → NodeId` index uses the
//! SplitMix64 hasher from [`hash`]. See PERF.md for the layout rationale
//! and measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
pub mod hash;
pub mod stats;

pub use graph::{NodeId, RetentionPolicy, Spenders, TanGraph};
