//! Fast non-cryptographic hashing for the `TxId → NodeId` index.
//!
//! The default `HashMap` hasher (SipHash-1-3) is keyed and DoS-resistant
//! but costs ~1–2 ns per lookup even for a single `u64` — pure overhead
//! on the placement hot path, where every inserted transaction performs
//! one insert plus one lookup per input. Transaction ids in this
//! reproduction are dense sequence numbers controlled by the ledger, not
//! attacker-chosen strings, so a statistically strong integer mixer is
//! the right trade-off.
//!
//! [`splitmix64`] (public-domain finalizer from Vigna's SplitMix64) was
//! previously private to `optchain-core`'s hash placer; it is promoted
//! here so the graph index, the placer, and deterministic seed
//! derivation all share one mixer.

use std::hash::{BuildHasher, Hasher};

/// SplitMix64 — a tiny, high-quality integer mixer (public domain).
///
/// Every output bit depends on every input bit; the mapping is a
/// bijection on `u64`.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `BuildHasher` producing [`FxTxHasher`]s; plug into
/// `HashMap::with_hasher` for integer-keyed maps on hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxIdBuildHasher;

impl BuildHasher for TxIdBuildHasher {
    type Hasher = FxTxHasher;

    #[inline]
    fn build_hasher(&self) -> FxTxHasher {
        FxTxHasher(0)
    }
}

/// One-shot integer hasher: a single [`splitmix64`] round per written
/// word. Byte-slice writes fold bytes into the state first (only hit for
/// non-integer keys, which the TaN index never uses).
#[derive(Debug, Clone, Default)]
pub struct FxTxHasher(u64);

impl Hasher for FxTxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix64(self.0 ^ b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = splitmix64(self.0 ^ v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = splitmix64(self.0 ^ v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.0 = splitmix64(self.0 ^ v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn splitmix_is_bijective_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hashmap_roundtrip_with_fx_hasher() {
        let mut map: HashMap<u64, u64, TxIdBuildHasher> = HashMap::with_hasher(TxIdBuildHasher);
        for i in 0..1_000u64 {
            map.insert(i, i * 2);
        }
        for i in 0..1_000u64 {
            assert_eq!(map.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn low_bit_avalanche() {
        // Consecutive inputs must not produce clustered low bits (the
        // HashMap masks the hash to index buckets).
        let mut buckets = [0u32; 64];
        for i in 0..6_400u64 {
            buckets[(splitmix64(i) & 63) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((50..=150).contains(b), "bucket {i} has {b}");
        }
    }
}
