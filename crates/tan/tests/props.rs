//! Property-based tests for the TaN graph.

use proptest::prelude::*;

use optchain_tan::{stats, NodeId, TanGraph};
use optchain_utxo::TxId;

/// Random DAG recipe: for each node, a set of parent offsets (how far
/// back each edge points).
fn dag_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(1u8..20, 0..5), 1..120)
}

fn build(recipe: &[Vec<u8>]) -> TanGraph {
    let mut g = TanGraph::new();
    for (i, offsets) in recipe.iter().enumerate() {
        let parents: Vec<TxId> = offsets
            .iter()
            .filter_map(|off| i.checked_sub(*off as usize).map(|p| TxId(p as u64)))
            .collect();
        g.insert(TxId(i as u64), &parents);
    }
    g
}

proptest! {
    /// Edges always point to earlier nodes (acyclicity by construction).
    #[test]
    fn edges_point_backwards(recipe in dag_strategy()) {
        let g = build(&recipe);
        for (u, v) in g.edges() {
            prop_assert!(v < u);
        }
    }

    /// Sum of in-degrees equals sum of out-degrees equals edge count.
    #[test]
    fn degree_sums_match_edges(recipe in dag_strategy()) {
        let g = build(&recipe);
        let in_sum: u64 = g.nodes().map(|v| g.in_degree(v) as u64).sum();
        let out_sum: u64 = g.nodes().map(|v| g.out_degree(v) as u64).sum();
        prop_assert_eq!(in_sum, g.edge_count());
        prop_assert_eq!(out_sum, g.edge_count());
    }

    /// `in_degree_at(v, last_node)` equals the final `in_degree(v)`, and
    /// the function is monotone in the observer.
    #[test]
    fn in_degree_at_is_monotone_prefix_count(recipe in dag_strategy()) {
        let g = build(&recipe);
        let last = NodeId(g.len() as u32 - 1);
        for v in g.nodes() {
            prop_assert_eq!(g.in_degree_at(v, last), g.in_degree(v));
            let mut prev = 0;
            for t in (v.0..g.len() as u32).step_by(7) {
                let now = g.in_degree_at(v, NodeId(t));
                prop_assert!(now >= prev);
                prev = now;
            }
        }
    }

    /// TanStats node classes partition consistently: every node is
    /// counted, isolated ⊆ coinbase ∩ unspent.
    #[test]
    fn stats_classes_are_consistent(recipe in dag_strategy()) {
        let g = build(&recipe);
        let s = stats::TanStats::compute(&g);
        prop_assert_eq!(s.node_count, g.len());
        prop_assert_eq!(s.in_degree.total(), g.len() as u64);
        prop_assert_eq!(s.out_degree.total(), g.len() as u64);
        prop_assert!(s.isolated_count <= s.coinbase_count);
        prop_assert!(s.isolated_count <= s.unspent_count);
        prop_assert!(s.coinbase_count >= 1, "node 0 has no parents");
    }

    /// The cumulative average-degree series ends at |E|/|V|.
    #[test]
    fn average_degree_series_converges(recipe in dag_strategy()) {
        let g = build(&recipe);
        let series = stats::average_degree_over_time(&g, 1);
        let (_, last) = series.last().unwrap();
        let expected = g.edge_count() as f64 / g.len() as f64;
        prop_assert!((last - expected).abs() < 1e-12);
    }

    /// Cross-TX count is zero when everything is in one shard and equals
    /// the non-source node count when every node sits alone.
    #[test]
    fn cross_tx_extremes(recipe in dag_strategy()) {
        let g = build(&recipe);
        let one_shard = vec![0u32; g.len()];
        prop_assert_eq!(stats::cross_tx_count(&g, &one_shard), 0);
        // Each node in its own shard: every node with an input is cross.
        let own: Vec<u32> = (0..g.len() as u32).collect();
        let with_inputs = g.nodes().filter(|n| g.out_degree(*n) > 0).count() as u64;
        prop_assert_eq!(stats::cross_tx_count(&g, &own), with_inputs);
    }
}
