//! Property-based tests for the multilevel partitioner.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use optchain_partition::{bisect, coarsen, partition_kway, quality, CsrGraph};

/// Random sparse graph: n vertices, m edges drawn uniformly.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4usize..240).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every vertex receives a part id in range, for any k.
    #[test]
    fn partition_covers_all_vertices((n, edges) in graph_strategy(), k in 1u32..10) {
        let g = CsrGraph::from_edges(n, edges);
        let part = partition_kway(&g, k, 0.1, 7);
        prop_assert_eq!(part.len(), n);
        prop_assert!(part.iter().all(|p| *p < k));
    }

    /// Partitioning is deterministic in the seed.
    #[test]
    fn partition_deterministic((n, edges) in graph_strategy(), k in 2u32..6, seed in 0u64..50) {
        let g = CsrGraph::from_edges(n, edges);
        let a = partition_kway(&g, k, 0.1, seed);
        let b = partition_kway(&g, k, 0.1, seed);
        prop_assert_eq!(a, b);
    }

    /// Edge cut never exceeds the total edge weight, and a 1-way
    /// partition always has zero cut.
    #[test]
    fn cut_bounds((n, edges) in graph_strategy(), k in 2u32..6) {
        let g = CsrGraph::from_edges(n, edges.clone());
        let part = partition_kway(&g, k, 0.1, 3);
        let cut = quality::edge_cut(&g, &part);
        let total: u64 = (0..n as u32)
            .flat_map(|v| g.neighbors(v).map(|(_, w)| w as u64).collect::<Vec<_>>())
            .sum::<u64>() / 2;
        prop_assert!(cut <= total);
        let one = partition_kway(&g, 1, 0.1, 3);
        prop_assert_eq!(quality::edge_cut(&g, &one), 0);
    }

    /// Coarsening conserves total vertex weight and shrinks (or keeps)
    /// the vertex count; the map is a valid surjection.
    #[test]
    fn coarsen_conserves_weight((n, edges) in graph_strategy(), seed in 0u64..20) {
        let g = CsrGraph::from_edges(n, edges);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let c = coarsen(&g, &mut rng);
        prop_assert_eq!(c.graph.total_weight(), g.total_weight());
        prop_assert!(c.graph.len() <= g.len());
        prop_assert_eq!(c.map.len(), g.len());
        let mut hit = vec![false; c.graph.len()];
        for &m in &c.map {
            prop_assert!((m as usize) < c.graph.len());
            hit[m as usize] = true;
        }
        prop_assert!(hit.iter().all(|h| *h), "every coarse vertex must be mapped to");
    }

    /// Bisection respects the requested side-0 target within tolerance on
    /// graphs where that is feasible (unit weights, enough vertices).
    #[test]
    fn bisect_respects_target(n in 16usize..200, seed in 0u64..20) {
        // A ring graph: connected, unit weights, perfectly splittable.
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = CsrGraph::from_edges(n, edges);
        let target0 = (n / 3).max(1) as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = bisect(&g, target0, 0.2, &mut rng);
        let w0 = part.iter().filter(|p| **p == 0).count() as u64;
        prop_assert!(
            w0 >= (target0 as f64 * 0.55) as u64 && w0 <= (target0 as f64 * 1.45) as u64 + 1,
            "w0 = {} target = {}",
            w0,
            target0
        );
    }
}
