//! Recursive-bisection k-way partitioning.
//!
//! The two sides of every bisection are **independent**: each recursive
//! branch derives its own RNG stream from `(seed, base, k)` instead of
//! threading one sequential generator through the whole tree, so the
//! branches can run on separate threads and the result is bit-identical
//! to the serial traversal (a unit test pins this). The pool respects
//! the `OPTCHAIN_THREADS` override shared with every other thread pool
//! in the workspace.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use optchain_tan::hash::splitmix64;

use crate::bisect::bisect;
use crate::CsrGraph;

/// Tunables for [`partition_kway`]; the free function uses defaults.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Number of parts `k ≥ 1`.
    pub k: u32,
    /// Per-part imbalance tolerance ε: each part's weight may reach
    /// `(1 + ε) · total/k` (the paper uses ε = 0.1 for its baselines).
    pub epsilon: f64,
    /// RNG seed (matching and seed growing are randomized; every
    /// recursion branch derives its own stream from this, so the output
    /// depends only on `(graph, k, epsilon, seed)` — never on the
    /// thread count).
    pub seed: u64,
    /// Run independent bisection branches on scoped worker threads
    /// (default `true`; bit-identical to the serial traversal).
    pub parallel: bool,
}

impl PartitionConfig {
    /// Config with `k` parts and default ε = 0.1, seed 0, parallel
    /// branch execution.
    pub fn new(k: u32) -> Self {
        PartitionConfig {
            k,
            epsilon: 0.1,
            seed: 0,
            parallel: true,
        }
    }
}

/// Worker-thread budget for the parallel branches: the
/// `OPTCHAIN_THREADS` environment variable when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (4 as a
/// last resort) — the same convention as
/// `optchain_core::configured_threads` (duplicated here because the
/// partitioner sits below the placement layer).
fn configured_threads() -> usize {
    std::env::var("OPTCHAIN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
}

/// Below this many vertices a branch runs serially: the coarsening
/// pyramid is cheap and a thread spawn would dominate.
const PARALLEL_MIN_VERTICES: usize = 10_000;

/// Partitions `g` into `k` parts minimizing edge cut, Metis-style:
/// recursive multilevel bisection with proportional target weights, so
/// non-power-of-two `k` works (the paper uses k ∈ {4, 6, 8, ..., 64}).
///
/// Returns one part id in `0..k` per vertex.
///
/// # Panics
///
/// Panics if `k == 0` or the graph is empty while `k > 1`.
///
/// # Example
///
/// ```
/// use optchain_partition::{partition_kway, CsrGraph};
///
/// let g = CsrGraph::from_edges(8, (0..7u32).map(|i| (i, i + 1)));
/// let part = partition_kway(&g, 4, 0.1, 7);
/// assert!(part.iter().all(|p| *p < 4));
/// ```
pub fn partition_kway(g: &CsrGraph, k: u32, epsilon: f64, seed: u64) -> Vec<u32> {
    partition_with(
        g,
        PartitionConfig {
            k,
            epsilon,
            seed,
            parallel: true,
        },
    )
}

/// [`partition_kway`] with an explicit [`PartitionConfig`].
///
/// # Panics
///
/// Same conditions as [`partition_kway`].
pub fn partition_with(g: &CsrGraph, config: PartitionConfig) -> Vec<u32> {
    assert!(config.k > 0, "k must be >= 1");
    let mut part = vec![0u32; g.len()];
    if config.k == 1 || g.is_empty() {
        assert!(config.k >= 1);
        return part;
    }
    let threads = if config.parallel {
        configured_threads()
    } else {
        1
    };
    let vertices: Vec<u32> = (0..g.len() as u32).collect();
    let local = recurse(
        g,
        &vertices,
        config.k,
        0,
        config.epsilon,
        config.seed,
        threads,
    );
    for (i, &v) in vertices.iter().enumerate() {
        part[v as usize] = local[i];
    }
    part
}

/// The RNG stream of one recursion branch: a SplitMix64 mix of the
/// run's seed with the branch's `(base, k)` coordinates — unique per
/// branch (a branch is identified by the contiguous part-id range
/// `[base, base + k)`), and independent of traversal or thread order.
fn branch_seed(seed: u64, base: u32, k: u32) -> u64 {
    splitmix64(splitmix64(seed) ^ (base as u64) ^ ((k as u64) << 32))
}

/// Recursively bisects the subgraph induced by `vertices` into `k`
/// parts, returning one part id (starting at `base`) per `vertices`
/// index. The two sides are fully independent — own induced subgraph,
/// own derived RNG stream, own output vector — so `threads > 1` may run
/// them concurrently with a bit-identical result.
fn recurse(
    g: &CsrGraph,
    vertices: &[u32],
    k: u32,
    base: u32,
    epsilon: f64,
    seed: u64,
    threads: usize,
) -> Vec<u32> {
    if k == 1 || vertices.is_empty() {
        return vec![base; vertices.len()];
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let mut rng = ChaCha8Rng::seed_from_u64(branch_seed(seed, base, k));

    // Build the induced subgraph.
    let mut local_of = std::collections::HashMap::with_capacity(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        local_of.insert(v, i as u32);
    }
    let local_ref = &local_of;
    let edges: Vec<(u32, u32, u32)> = vertices
        .iter()
        .flat_map(|&v| {
            let local_v = local_ref[&v];
            g.neighbors(v).filter_map(move |(u, w)| {
                let local_u = *local_ref.get(&u)?;
                (local_v < local_u).then_some((local_v, local_u, w))
            })
        })
        .collect();
    let sub = CsrGraph::from_weighted_edges(vertices.len(), edges);
    // Propagate accumulated vertex weights? Sub-vertices are original
    // (weight-1) vertices here because recursion starts from the full
    // graph, so unit weights are correct.
    let total = sub.total_weight();
    let target0 = (total * k0 as u64) / k as u64;

    let side = if target0 == 0 || target0 >= total {
        // Degenerate split (tiny subgraph); put everything on side 0.
        vec![0u8; vertices.len()]
    } else {
        // ε shrinks with depth so leaf-level imbalance stays bounded.
        bisect(
            &sub,
            target0,
            epsilon / (k as f64).log2().max(1.0),
            &mut rng,
        )
    };

    let mut side0 = Vec::new();
    let mut side1 = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] == 0 {
            side0.push(v);
        } else {
            side1.push(v);
        }
    }
    // A degenerate bisection (everything on one side) must still terminate:
    // fall back to a proportional positional split. With fewer vertices
    // than parts some parts legitimately stay empty.
    if side0.is_empty() || side1.is_empty() {
        let mut all = [side0, side1].concat();
        let cutpoint = ((all.len() * k0 as usize) / k as usize).min(all.len());
        side1 = all.split_off(cutpoint);
        side0 = all;
    }

    // Recurse — concurrently when the thread budget and branch sizes
    // justify a spawn. Each side's coarsening pyramid (matching, seed
    // growing, FM) runs entirely inside its branch, which is what makes
    // the level work embarrassingly parallel.
    let spawn = threads >= 2 && side0.len().min(side1.len()) >= PARALLEL_MIN_VERTICES;
    let (part0, part1) = if spawn {
        let t1 = threads / 2;
        let t0 = threads - t1;
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| recurse(g, &side1, k1, base + k0, epsilon, seed, t1));
            let part0 = recurse(g, &side0, k0, base, epsilon, seed, t0);
            (part0, handle.join().expect("partition branch panicked"))
        })
    } else {
        (
            recurse(g, &side0, k0, base, epsilon, seed, threads),
            recurse(g, &side1, k1, base + k0, epsilon, seed, threads),
        )
    };

    // Merge the sides back into `vertices` order.
    let mut out = vec![0u32; vertices.len()];
    for (&v, &p) in side0.iter().zip(&part0) {
        out[local_of[&v] as usize] = p;
    }
    for (&v, &p) in side1.iter().zip(&part1) {
        out[local_of[&v] as usize] = p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;

    fn communities(c: u32, size: u32, intra: usize, inter: usize, seed: u64) -> CsrGraph {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = c * size;
        let mut edges = Vec::new();
        for _ in 0..intra {
            let com = rng.gen_range(0..c);
            edges.push((
                com * size + rng.gen_range(0..size),
                com * size + rng.gen_range(0..size),
            ));
        }
        for _ in 0..inter {
            edges.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        CsrGraph::from_edges(n as usize, edges)
    }

    #[test]
    fn all_parts_used_and_in_range() {
        let g = communities(4, 50, 1500, 50, 1);
        let part = partition_kway(&g, 4, 0.1, 9);
        let mut seen = [false; 4];
        for &p in &part {
            assert!(p < 4);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all 4 parts must be nonempty");
    }

    #[test]
    fn k1_is_trivial() {
        let g = communities(2, 10, 50, 5, 2);
        let part = partition_kway(&g, 1, 0.1, 0);
        assert!(part.iter().all(|p| *p == 0));
    }

    #[test]
    fn non_power_of_two_k_balances() {
        let g = communities(6, 40, 2000, 60, 3);
        for k in [3u32, 6, 10, 14] {
            let part = partition_kway(&g, k, 0.1, 4);
            let imb = quality::imbalance(&g, &part, k);
            assert!(imb < 1.35, "k={k}: imbalance {imb} too high");
        }
    }

    #[test]
    fn cut_much_better_than_random() {
        let g = communities(8, 50, 4000, 100, 5);
        let part = partition_kway(&g, 8, 0.1, 6);
        let cut = quality::edge_cut(&g, &part);
        // Random 8-way placement cuts ~7/8 of edges.
        let rand_cut = g.edge_count() as u64 * 7 / 8;
        assert!(cut < rand_cut / 3, "cut {cut} vs random {rand_cut}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = communities(4, 30, 800, 40, 7);
        let a = partition_kway(&g, 4, 0.1, 42);
        let b = partition_kway(&g, 4, 0.1, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Large enough that branches actually cross the spawn threshold
        // (40k vertices, first split ≥ 10k per side), across several
        // k / seed combinations — the parallel Metis oracle must place
        // exactly like the serial traversal.
        let g = communities(8, 5_000, 60_000, 2_000, 13);
        for (k, seed) in [(4u32, 1u64), (6, 9)] {
            let mut serial_cfg = PartitionConfig::new(k);
            serial_cfg.seed = seed;
            serial_cfg.parallel = false;
            let mut parallel_cfg = serial_cfg;
            parallel_cfg.parallel = true;
            let serial = partition_with(&g, serial_cfg);
            let parallel = partition_with(&g, parallel_cfg);
            assert_eq!(serial, parallel, "k={k} seed={seed}");
        }
    }

    #[test]
    fn branch_rng_is_independent_of_sibling_work() {
        // The per-branch RNG derivation: perturbing one side of the tree
        // must not shift the sibling's stream — partition the same graph
        // at two ks sharing the subtree rooted at (base=0, k=2) and make
        // sure determinism holds per (k, seed), which the sequential-rng
        // design could only provide by accident.
        let g = communities(4, 50, 1_500, 50, 3);
        for k in [2u32, 4, 8] {
            let a = partition_kway(&g, k, 0.1, 5);
            let b = partition_kway(&g, k, 0.1, 5);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn k_exceeding_vertices_still_assigns() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        let part = partition_kway(&g, 8, 0.1, 0);
        assert_eq!(part.len(), 3);
        assert!(part.iter().all(|p| *p < 8));
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn k_zero_panics() {
        partition_kway(&CsrGraph::from_edges(2, [(0, 1)]), 0, 0.1, 0);
    }
}
