//! Recursive-bisection k-way partitioning.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::bisect::bisect;
use crate::CsrGraph;

/// Tunables for [`partition_kway`]; the free function uses defaults.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Number of parts `k ≥ 1`.
    pub k: u32,
    /// Per-part imbalance tolerance ε: each part's weight may reach
    /// `(1 + ε) · total/k` (the paper uses ε = 0.1 for its baselines).
    pub epsilon: f64,
    /// RNG seed (matching and seed growing are randomized).
    pub seed: u64,
}

impl PartitionConfig {
    /// Config with `k` parts and default ε = 0.1, seed 0.
    pub fn new(k: u32) -> Self {
        PartitionConfig {
            k,
            epsilon: 0.1,
            seed: 0,
        }
    }
}

/// Partitions `g` into `k` parts minimizing edge cut, Metis-style:
/// recursive multilevel bisection with proportional target weights, so
/// non-power-of-two `k` works (the paper uses k ∈ {4, 6, 8, ..., 64}).
///
/// Returns one part id in `0..k` per vertex.
///
/// # Panics
///
/// Panics if `k == 0` or the graph is empty while `k > 1`.
///
/// # Example
///
/// ```
/// use optchain_partition::{partition_kway, CsrGraph};
///
/// let g = CsrGraph::from_edges(8, (0..7u32).map(|i| (i, i + 1)));
/// let part = partition_kway(&g, 4, 0.1, 7);
/// assert!(part.iter().all(|p| *p < 4));
/// ```
pub fn partition_kway(g: &CsrGraph, k: u32, epsilon: f64, seed: u64) -> Vec<u32> {
    partition_with(g, PartitionConfig { k, epsilon, seed })
}

/// [`partition_kway`] with an explicit [`PartitionConfig`].
///
/// # Panics
///
/// Same conditions as [`partition_kway`].
pub fn partition_with(g: &CsrGraph, config: PartitionConfig) -> Vec<u32> {
    assert!(config.k > 0, "k must be >= 1");
    let mut part = vec![0u32; g.len()];
    if config.k == 1 || g.is_empty() {
        assert!(config.k >= 1);
        return part;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let vertices: Vec<u32> = (0..g.len() as u32).collect();
    recurse(
        g,
        &vertices,
        config.k,
        0,
        config.epsilon,
        &mut rng,
        &mut part,
    );
    part
}

/// Recursively bisects the subgraph induced by `vertices` into `k` parts,
/// writing ids starting at `base` into `out`.
fn recurse(
    g: &CsrGraph,
    vertices: &[u32],
    k: u32,
    base: u32,
    epsilon: f64,
    rng: &mut ChaCha8Rng,
    out: &mut [u32],
) {
    if k == 1 || vertices.is_empty() {
        for &v in vertices {
            out[v as usize] = base;
        }
        return;
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;

    // Build the induced subgraph.
    let mut local_of = std::collections::HashMap::with_capacity(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        local_of.insert(v, i as u32);
    }
    let local_ref = &local_of;
    let edges: Vec<(u32, u32, u32)> = vertices
        .iter()
        .flat_map(|&v| {
            let local_v = local_ref[&v];
            g.neighbors(v).filter_map(move |(u, w)| {
                let local_u = *local_ref.get(&u)?;
                (local_v < local_u).then_some((local_v, local_u, w))
            })
        })
        .collect();
    let sub = CsrGraph::from_weighted_edges(vertices.len(), edges);
    // Propagate accumulated vertex weights? Sub-vertices are original
    // (weight-1) vertices here because recursion starts from the full
    // graph, so unit weights are correct.
    let total = sub.total_weight();
    let target0 = (total * k0 as u64) / k as u64;

    let side = if target0 == 0 || target0 >= total {
        // Degenerate split (tiny subgraph); put everything on side 0.
        vec![0u8; vertices.len()]
    } else {
        // ε shrinks with depth so leaf-level imbalance stays bounded.
        bisect(&sub, target0, epsilon / (k as f64).log2().max(1.0), rng)
    };

    let mut side0 = Vec::new();
    let mut side1 = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] == 0 {
            side0.push(v);
        } else {
            side1.push(v);
        }
    }
    // A degenerate bisection (everything on one side) must still terminate:
    // fall back to a proportional positional split. With fewer vertices
    // than parts some parts legitimately stay empty.
    if side0.is_empty() || side1.is_empty() {
        let mut all = [side0, side1].concat();
        let cutpoint = ((all.len() * k0 as usize) / k as usize).min(all.len());
        side1 = all.split_off(cutpoint);
        side0 = all;
    }
    recurse(g, &side0, k0, base, epsilon, rng, out);
    recurse(g, &side1, k1, base + k0, epsilon, rng, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;

    fn communities(c: u32, size: u32, intra: usize, inter: usize, seed: u64) -> CsrGraph {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = c * size;
        let mut edges = Vec::new();
        for _ in 0..intra {
            let com = rng.gen_range(0..c);
            edges.push((
                com * size + rng.gen_range(0..size),
                com * size + rng.gen_range(0..size),
            ));
        }
        for _ in 0..inter {
            edges.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        CsrGraph::from_edges(n as usize, edges)
    }

    #[test]
    fn all_parts_used_and_in_range() {
        let g = communities(4, 50, 1500, 50, 1);
        let part = partition_kway(&g, 4, 0.1, 9);
        let mut seen = [false; 4];
        for &p in &part {
            assert!(p < 4);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all 4 parts must be nonempty");
    }

    #[test]
    fn k1_is_trivial() {
        let g = communities(2, 10, 50, 5, 2);
        let part = partition_kway(&g, 1, 0.1, 0);
        assert!(part.iter().all(|p| *p == 0));
    }

    #[test]
    fn non_power_of_two_k_balances() {
        let g = communities(6, 40, 2000, 60, 3);
        for k in [3u32, 6, 10, 14] {
            let part = partition_kway(&g, k, 0.1, 4);
            let imb = quality::imbalance(&g, &part, k);
            assert!(imb < 1.35, "k={k}: imbalance {imb} too high");
        }
    }

    #[test]
    fn cut_much_better_than_random() {
        let g = communities(8, 50, 4000, 100, 5);
        let part = partition_kway(&g, 8, 0.1, 6);
        let cut = quality::edge_cut(&g, &part);
        // Random 8-way placement cuts ~7/8 of edges.
        let rand_cut = g.edge_count() as u64 * 7 / 8;
        assert!(cut < rand_cut / 3, "cut {cut} vs random {rand_cut}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = communities(4, 30, 800, 40, 7);
        let a = partition_kway(&g, 4, 0.1, 42);
        let b = partition_kway(&g, 4, 0.1, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn k_exceeding_vertices_still_assigns() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        let part = partition_kway(&g, 8, 0.1, 0);
        assert_eq!(part.len(), 3);
        assert!(part.iter().all(|p| *p < 8));
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn k_zero_panics() {
        partition_kway(&CsrGraph::from_edges(2, [(0, 1)]), 0, 0.1, 0);
    }
}
