//! Multilevel bisection: greedy graph growing + FM boundary refinement.

use rand::Rng;

use crate::coarsen::coarsen;
use crate::CsrGraph;

/// How small the coarsest graph may get before initial partitioning.
const COARSEST: usize = 160;
/// Stop coarsening when a level shrinks the graph by less than this factor.
const MIN_SHRINK: f64 = 0.95;
/// Seeds tried by greedy graph growing.
const GROW_TRIES: usize = 4;
/// FM passes per uncoarsening level.
const FM_PASSES: usize = 4;

/// Bisects `g` into sides 0 and 1 with target side-0 weight
/// `target0` (out of the graph's total weight) and imbalance tolerance
/// `epsilon`, using the multilevel scheme. Returns one side bit per
/// vertex.
///
/// # Panics
///
/// Panics if `target0` is zero or not less than the total weight.
pub fn bisect<R: Rng + ?Sized>(g: &CsrGraph, target0: u64, epsilon: f64, rng: &mut R) -> Vec<u8> {
    let total = g.total_weight();
    assert!(
        target0 > 0 && target0 < total,
        "target0 {target0} out of (0, {total})"
    );
    if g.len() <= COARSEST {
        let mut part = grow_bisection(g, target0, rng);
        fm_refine(g, &mut part, target0, epsilon);
        return part;
    }
    let c = coarsen(g, rng);
    if (c.graph.len() as f64) > g.len() as f64 * MIN_SHRINK {
        // Matching stalled; partition directly at this level.
        let mut part = grow_bisection(g, target0, rng);
        fm_refine(g, &mut part, target0, epsilon);
        return part;
    }
    let coarse_part = bisect(&c.graph, target0, epsilon, rng);
    // Project to the fine level and refine.
    let mut part: Vec<u8> = c.map.iter().map(|&cv| coarse_part[cv as usize]).collect();
    fm_refine(g, &mut part, target0, epsilon);
    part
}

/// Greedy graph growing: BFS-grow side 0 from a random seed until its
/// weight reaches `target0`; tries several seeds and keeps the lowest cut.
fn grow_bisection<R: Rng + ?Sized>(g: &CsrGraph, target0: u64, rng: &mut R) -> Vec<u8> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let mut best: Option<(u64, Vec<u8>)> = None;
    for _ in 0..GROW_TRIES {
        let mut part = vec![1u8; n];
        let mut weight0 = 0u64;
        let mut queue = std::collections::VecDeque::new();
        let mut visited = vec![false; n];
        let mut cursor = rng.gen_range(0..n as u32);
        'grow: while weight0 < target0 {
            // Find an unvisited seed (handles disconnected graphs).
            let mut seed = None;
            for off in 0..n as u32 {
                let v = (cursor + off) % n as u32;
                if !visited[v as usize] {
                    seed = Some(v);
                    cursor = v;
                    break;
                }
            }
            let Some(seed) = seed else { break 'grow };
            visited[seed as usize] = true;
            queue.push_back(seed);
            while let Some(v) = queue.pop_front() {
                part[v as usize] = 0;
                weight0 += g.vertex_weight(v) as u64;
                if weight0 >= target0 {
                    queue.clear();
                    break;
                }
                for (u, _) in g.neighbors(v) {
                    if !visited[u as usize] {
                        visited[u as usize] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
        let cut = cut_of(g, &part);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, part));
        }
    }
    best.expect("GROW_TRIES > 0").1
}

fn cut_of(g: &CsrGraph, part: &[u8]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.len() as u32 {
        for (u, w) in g.neighbors(v) {
            if v < u && part[v as usize] != part[u as usize] {
                cut += w as u64;
            }
        }
    }
    cut
}

/// One FM-style refinement: repeatedly move the boundary vertex with the
/// best gain to the other side, respecting the balance constraint, with
/// hill-climbing (negative gains allowed) and rollback to the best state
/// seen. `FM_PASSES` passes or until a pass yields no improvement.
fn fm_refine(g: &CsrGraph, part: &mut [u8], target0: u64, epsilon: f64) {
    // Two-sided constraint: side-0 weight must stay within (1 ± ε) of its
    // target, otherwise FM would happily empty the smaller side to kill
    // the cut.
    let max0 = ((target0 as f64) * (1.0 + epsilon)).ceil() as u64;
    let min0 = ((target0 as f64) * (1.0 - epsilon)).floor() as u64;
    let n = g.len();

    for _pass in 0..FM_PASSES {
        let mut weight0: u64 = (0..n as u32)
            .filter(|&v| part[v as usize] == 0)
            .map(|v| g.vertex_weight(v) as u64)
            .sum();
        // gain[v] = external − internal edge weight.
        let mut gain = vec![0i64; n];
        for v in 0..n as u32 {
            let mut gn = 0i64;
            for (u, w) in g.neighbors(v) {
                if part[u as usize] == part[v as usize] {
                    gn -= w as i64;
                } else {
                    gn += w as i64;
                }
            }
            gain[v as usize] = gn;
        }
        let mut heap: std::collections::BinaryHeap<(i64, u32)> = (0..n as u32)
            .filter(|&v| g.degree(v) > 0)
            .map(|v| (gain[v as usize], v))
            .collect();
        let mut locked = vec![false; n];
        let mut moves: Vec<u32> = Vec::new();
        let mut cut_delta: i64 = 0;
        let mut best_delta: i64 = 0;
        let mut best_len = 0usize;
        // Cap work per pass: FM converges long before n moves on large graphs.
        let max_moves = n.min(2 * (g.edge_count() + 1));

        while moves.len() < max_moves {
            // Pop the best unlocked, balance-feasible, up-to-date entry.
            let mut picked = None;
            while let Some((gn, v)) = heap.pop() {
                if locked[v as usize] || gn != gain[v as usize] {
                    continue;
                }
                let vw = g.vertex_weight(v) as u64;
                let feasible = if part[v as usize] == 0 {
                    weight0 >= min0 + vw
                } else {
                    weight0 + vw <= max0
                };
                if feasible {
                    picked = Some((gn, v));
                    break;
                }
                // Infeasible now; it may become feasible later. Re-add with a
                // sentinel skip: simply drop it for this pass.
            }
            let Some((gn, v)) = picked else { break };
            // Move v.
            let from = part[v as usize];
            part[v as usize] = 1 - from;
            if from == 0 {
                weight0 -= g.vertex_weight(v) as u64;
            } else {
                weight0 += g.vertex_weight(v) as u64;
            }
            locked[v as usize] = true;
            moves.push(v);
            cut_delta -= gn;
            if cut_delta < best_delta {
                best_delta = cut_delta;
                best_len = moves.len();
            }
            // Update neighbor gains.
            for (u, w) in g.neighbors(v) {
                if locked[u as usize] {
                    continue;
                }
                // u's edge to v flipped sides.
                if part[u as usize] == part[v as usize] {
                    gain[u as usize] -= 2 * w as i64;
                } else {
                    gain[u as usize] += 2 * w as i64;
                }
                heap.push((gain[u as usize], u));
            }
            // Early stop: long negative streak.
            if moves.len() > best_len + 64 {
                break;
            }
        }
        // Roll back moves after the best prefix.
        for &v in &moves[best_len..] {
            part[v as usize] = 1 - part[v as usize];
        }
        if best_delta == 0 {
            break; // pass brought no improvement
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn two_cliques(k: usize, bridges: usize) -> CsrGraph {
        // Vertices 0..k and k..2k fully connected internally, plus
        // `bridges` edges across.
        let mut edges = Vec::new();
        for a in 0..k as u32 {
            for b in (a + 1)..k as u32 {
                edges.push((a, b));
                edges.push((a + k as u32, b + k as u32));
            }
        }
        for i in 0..bridges as u32 {
            edges.push((i % k as u32, k as u32 + (i % k as u32)));
        }
        CsrGraph::from_edges(2 * k, edges)
    }

    #[test]
    fn two_cliques_split_cleanly() {
        let g = two_cliques(8, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let part = bisect(&g, 8, 0.05, &mut rng);
        assert_eq!(cut_of(&g, &part), 2);
        let w0 = part.iter().filter(|p| **p == 0).count();
        assert_eq!(w0, 8);
    }

    #[test]
    fn respects_target_weight_roughly() {
        let g = two_cliques(16, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Ask for a 1/4 : 3/4 split.
        let part = bisect(&g, 8, 0.2, &mut rng);
        let w0 = part.iter().filter(|p| **p == 0).count() as u64;
        assert!((6..=10).contains(&w0), "w0 = {w0}");
    }

    #[test]
    fn large_random_community_graph_beats_random_cut() {
        // 4 communities of 100 vertices; dense inside, sparse across.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 400u32;
        let mut edges = Vec::new();
        for _ in 0..3000 {
            let c = rng.gen_range(0..4u32);
            let a = c * 100 + rng.gen_range(0..100u32);
            let b = c * 100 + rng.gen_range(0..100u32);
            edges.push((a, b));
        }
        for _ in 0..100 {
            edges.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let g = CsrGraph::from_edges(n as usize, edges);
        let part = bisect(&g, 200, 0.1, &mut rng);
        let cut = cut_of(&g, &part);
        // A random balanced bisection cuts ~half of all edges; communities
        // admit far better.
        assert!(
            cut < g.edge_count() as u64 / 4,
            "cut {cut} of {} edges",
            g.edge_count()
        );
        let w0 = part.iter().filter(|p| **p == 0).count();
        assert!((160..=240).contains(&w0), "balance violated: {w0}");
    }

    #[test]
    fn disconnected_graph_is_handled() {
        let g = CsrGraph::from_edges(6, [(0, 1), (2, 3), (4, 5)]);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let part = bisect(&g, 3, 0.34, &mut rng);
        let w0 = part.iter().filter(|p| **p == 0).count();
        assert!((2..=4).contains(&w0), "w0 = {w0}");
    }

    #[test]
    fn path_bisection_cuts_one_edge() {
        let edges: Vec<_> = (0..99u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(100, edges);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let part = bisect(&g, 50, 0.1, &mut rng);
        assert_eq!(cut_of(&g, &part), 1, "a path has a 1-edge bisection");
    }
}
