//! Offline graph partitioning for the OptChain reproduction.
//!
//! The paper compares its online placement against **Metis k-way** (reference \[19\]) —
//! an offline multilevel partitioner that minimizes edge cut under a
//! balance constraint — used as an unrealistic-but-strong baseline
//! ("if we can put transactions as in Metis solution, we can minimize the
//! number of cross-TXs", Section V.A). Metis itself is not available
//! offline, so this crate implements the same multilevel family:
//!
//! 1. **Coarsening** by heavy-edge matching ([`coarsen`]) until the graph
//!    is small;
//! 2. **Initial bisection** by greedy graph growing from multiple seeds;
//! 3. **Refinement** during uncoarsening with a Fiduccia–Mattheyses-style
//!    boundary pass ([`bisect`] internals);
//! 4. **k-way** by recursive bisection with proportional target weights
//!    ([`partition_kway`]), so any `k ≥ 1` works (the paper sweeps
//!    k ∈ {4, 6, 8, 10, 12, 14, 16, 32, 64}).
//!
//! [`quality`] provides edge-cut and balance metrics, and
//! [`CsrGraph::from_tan`] converts a TaN DAG into the undirected weighted
//! graph the partitioner consumes.
//!
//! # Example
//!
//! ```
//! use optchain_partition::{partition_kway, quality, CsrGraph};
//!
//! // Two triangles joined by one edge: the natural bisection cuts it.
//! let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];
//! let g = CsrGraph::from_edges(6, edges.iter().copied());
//! let part = partition_kway(&g, 2, 0.1, 42);
//! assert_eq!(quality::edge_cut(&g, &part), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisect;
mod coarsen;
mod csr;
mod kway;
pub mod quality;

pub use bisect::bisect;
pub use coarsen::{coarsen, Coarsening};
pub use csr::CsrGraph;
pub use kway::{partition_kway, partition_with, PartitionConfig};
