//! Undirected weighted graphs in compressed sparse row form.

use optchain_tan::TanGraph;

/// An undirected graph with vertex and edge weights, stored in CSR form.
///
/// Parallel edges are merged (weights summed) and self-loops dropped at
/// construction. Vertex weights default to 1 and accumulate during
/// coarsening so balance constraints track original-vertex counts.
///
/// # Example
///
/// ```
/// use optchain_partition::CsrGraph;
///
/// let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (1, 2)]);
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.degree(1), 2);                       // parallel (1,2) merged...
/// assert_eq!(g.neighbors(1).nth(1), Some((2, 2)));  // ...with weight 2
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<u32>,
    vwgt: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an iterator of undirected
    /// edges (unit weight each). Duplicate and reversed duplicates merge;
    /// self-loops are dropped.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        Self::from_weighted_edges(n, edges.into_iter().map(|(a, b)| (a, b, 1)))
    }

    /// Builds a graph with `n` vertices from weighted undirected edges.
    /// Duplicates merge by summing weights; self-loops are dropped.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_weighted_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32, u32)>,
    {
        // Collect symmetric directed half-edges, then sort-dedup per row.
        let mut half: Vec<(u32, u32, u32)> = Vec::new();
        for (a, b, w) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            if a == b {
                continue;
            }
            half.push((a, b, w));
            half.push((b, a, w));
        }
        half.sort_unstable_by_key(|&(a, b, _)| (a, b));
        Self::assemble(n, half)
    }

    fn assemble(n: usize, half: Vec<(u32, u32, u32)>) -> Self {
        let mut xadj = vec![0usize; n + 1];
        let mut adjncy = Vec::with_capacity(half.len());
        let mut adjwgt: Vec<u32> = Vec::with_capacity(half.len());
        let mut idx = 0;
        for v in 0..n as u32 {
            while idx < half.len() && half[idx].0 == v {
                let (_, to, w) = half[idx];
                if adjncy.len() > xadj[v as usize] && *adjncy.last().expect("nonempty") == to {
                    *adjwgt.last_mut().expect("nonempty") += w;
                } else {
                    adjncy.push(to);
                    adjwgt.push(w);
                }
                idx += 1;
            }
            xadj[v as usize + 1] = adjncy.len();
        }
        CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt: vec![1; n],
        }
    }

    /// Builds the undirected view of a TaN DAG: one vertex per transaction,
    /// one unit-weight edge per (collapsed) spend relation.
    pub fn from_tan(tan: &TanGraph) -> Self {
        Self::from_edges(tan.len(), tan.edges().map(|(u, v)| (u.0, v.0)))
    }

    /// Creates a graph from raw CSR parts (used by coarsening).
    ///
    /// # Panics
    ///
    /// Panics if array lengths are inconsistent.
    pub(crate) fn from_parts(
        xadj: Vec<usize>,
        adjncy: Vec<u32>,
        adjwgt: Vec<u32>,
        vwgt: Vec<u32>,
    ) -> Self {
        assert_eq!(xadj.len(), vwgt.len() + 1);
        assert_eq!(adjncy.len(), adjwgt.len());
        assert_eq!(*xadj.last().expect("nonempty xadj"), adjncy.len());
        CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vwgt.len()
    }

    /// `true` iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vwgt.is_empty()
    }

    /// Number of undirected edges (after merging).
    pub fn edge_count(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Degree (number of distinct neighbors) of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Weight of vertex `v`.
    pub fn vertex_weight(&self, v: u32) -> u32 {
        self.vwgt[v as usize]
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.vwgt.iter().map(|w| *w as u64).sum()
    }

    /// The `(neighbor, edge_weight)` pairs of `v`, sorted by neighbor.
    pub fn neighbors(&self, v: u32) -> impl ExactSizeIterator<Item = (u32, u32)> + '_ {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        self.adjncy[lo..hi]
            .iter()
            .zip(&self.adjwgt[lo..hi])
            .map(|(n, w)| (*n, *w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_symmetry() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.edge_count(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn parallel_edges_merge_weights() {
        let g = CsrGraph::from_weighted_edges(2, [(0, 1, 2), (1, 0, 3)]);
        assert_eq!(g.edge_count(), 1);
        let (n, w) = g.neighbors(0).next().unwrap();
        assert_eq!((n, w), (1, 5));
    }

    #[test]
    fn self_loops_dropped() {
        let g = CsrGraph::from_edges(2, [(0, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = CsrGraph::from_edges(4, [(0, 1)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.total_weight(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CsrGraph::from_edges(2, [(0, 5)]);
    }

    #[test]
    fn from_tan_collapses_directions() {
        use optchain_utxo::TxId;
        let mut tan = TanGraph::new();
        tan.insert(TxId(0), &[]);
        tan.insert(TxId(1), &[TxId(0)]);
        tan.insert(TxId(2), &[TxId(0), TxId(1)]);
        let g = CsrGraph::from_tan(&tan);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
    }
}
