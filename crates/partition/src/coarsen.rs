//! Graph coarsening by heavy-edge matching.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::CsrGraph;

/// Result of one coarsening level: the coarse graph plus the mapping from
/// fine vertices to coarse vertices.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// The coarsened graph.
    pub graph: CsrGraph,
    /// `map[fine_vertex] = coarse_vertex`.
    pub map: Vec<u32>,
}

/// Coarsens `g` one level using randomized heavy-edge matching: vertices
/// are visited in random order and each unmatched vertex is merged with
/// its unmatched neighbor of heaviest connecting edge (itself if none).
///
/// Returns the coarse graph (merged vertex weights, aggregated edge
/// weights, self-loops dropped) and the fine→coarse map. The coarse graph
/// has at least half as many vertices as matching pairs found; if the
/// matching stalls (e.g. a star graph), the caller should stop coarsening.
pub fn coarsen<R: Rng + ?Sized>(g: &CsrGraph, rng: &mut R) -> Coarsening {
    let n = g.len();
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, u32)> = None; // (neighbor, weight)
        for (u, w) in g.neighbors(v) {
            if mate[u as usize] == UNMATCHED && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // matched with itself
        }
    }

    // Assign coarse ids: the lower endpoint of each pair owns the id.
    let mut map = vec![0u32; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let m = mate[v as usize];
        if m == v || m == UNMATCHED || v < m {
            map[v as usize] = next;
            if m != v && m != UNMATCHED {
                map[m as usize] = next;
            }
            next += 1;
        }
    }

    // Aggregate vertex weights and edges.
    let coarse_n = next as usize;
    let mut vwgt = vec![0u32; coarse_n];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vertex_weight(v as u32);
    }
    let map_ref = &map;
    let edges = (0..n as u32).flat_map(move |v| {
        g.neighbors(v)
            .filter(move |(u, _)| v < *u)
            .map(move |(u, w)| (map_ref[v as usize], map_ref[u as usize], w))
    });
    let mut graph = CsrGraph::from_weighted_edges(coarse_n, edges);
    // from_weighted_edges resets vertex weights to 1; restore aggregates.
    graph = set_vwgt(graph, vwgt);
    Coarsening { graph, map }
}

fn set_vwgt(g: CsrGraph, vwgt: Vec<u32>) -> CsrGraph {
    // Reassemble with the provided weights.
    let n = vwgt.len();
    let mut xadj = Vec::with_capacity(n + 1);
    xadj.push(0);
    let mut adjncy = Vec::new();
    let mut adjwgt = Vec::new();
    for v in 0..n as u32 {
        for (u, w) in g.neighbors(v) {
            adjncy.push(u);
            adjwgt.push(w);
        }
        xadj.push(adjncy.len());
    }
    CsrGraph::from_parts(xadj, adjncy, adjwgt, vwgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_graph_halves() {
        // 0-1-2-3: matching should pair everything.
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = coarsen(&g, &mut rng);
        assert!(c.graph.len() <= 3);
        assert_eq!(c.graph.total_weight(), 4);
        assert_eq!(c.map.len(), 4);
    }

    #[test]
    fn vertex_weights_accumulate() {
        let g = CsrGraph::from_edges(2, [(0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let c = coarsen(&g, &mut rng);
        assert_eq!(c.graph.len(), 1);
        assert_eq!(c.graph.vertex_weight(0), 2);
        assert_eq!(c.graph.edge_count(), 0); // merged pair's edge is a self-loop
    }

    #[test]
    fn heavy_edge_preferred() {
        // Star 0 with neighbors 1 (w=10) and 2 (w=1). When vertex 0 or 1
        // is visited first, the heavy (0,1) edge must be matched; when 2
        // goes first it grabs 0. Over several seeds the heavy pair must
        // appear, and the map must always be a valid contraction.
        let g = CsrGraph::from_weighted_edges(3, [(0, 1, 10), (0, 2, 1)]);
        let mut heavy_pairs = 0;
        for seed in 0..16 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let c = coarsen(&g, &mut rng);
            assert_eq!(c.graph.total_weight(), 3, "seed {seed}");
            assert!(c.map.iter().all(|&m| (m as usize) < c.graph.len()));
            if c.map[0] == c.map[1] {
                heavy_pairs += 1;
            }
        }
        assert!(
            heavy_pairs >= 8,
            "heavy edge rarely taken: {heavy_pairs}/16"
        );
    }

    #[test]
    fn total_edge_weight_conserved_minus_internal() {
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let c = coarsen(&g, &mut rng);
        // 6-cycle, 6 edges; a perfect matching hides 3, leaving weight 3.
        let coarse_weight: u64 = (0..c.graph.len() as u32)
            .flat_map(|v| {
                c.graph
                    .neighbors(v)
                    .map(|(_, w)| w as u64)
                    .collect::<Vec<_>>()
            })
            .sum::<u64>()
            / 2;
        assert!(coarse_weight >= 3, "coarse weight {coarse_weight}");
        assert!(c.graph.len() >= 3);
    }

    #[test]
    fn isolated_vertices_survive() {
        let g = CsrGraph::from_edges(3, [(0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = coarsen(&g, &mut rng);
        assert_eq!(c.graph.total_weight(), 3);
    }
}
