//! Partition quality metrics.

use crate::CsrGraph;

/// Total weight of edges whose endpoints lie in different parts.
///
/// # Example
///
/// ```
/// use optchain_partition::{quality::edge_cut, CsrGraph};
///
/// let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
/// assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
/// ```
pub fn edge_cut(g: &CsrGraph, part: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.len() as u32 {
        for (u, w) in g.neighbors(v) {
            if v < u && part[v as usize] != part[u as usize] {
                cut += w as u64;
            }
        }
    }
    cut
}

/// Vertex weight of each part (parts indexed `0..k`).
pub fn part_weights(g: &CsrGraph, part: &[u32], k: u32) -> Vec<u64> {
    let mut weights = vec![0u64; k as usize];
    for v in 0..g.len() as u32 {
        weights[part[v as usize] as usize] += g.vertex_weight(v) as u64;
    }
    weights
}

/// Imbalance factor: `max part weight / (total / k)`. A perfectly balanced
/// partition scores 1.0; the paper's ε = 0.1 budget allows up to 1.1.
///
/// Returns 0.0 for an empty graph.
pub fn imbalance(g: &CsrGraph, part: &[u32], k: u32) -> f64 {
    let total = g.total_weight();
    if total == 0 {
        return 0.0;
    }
    let max = part_weights(g, part, k).into_iter().max().unwrap_or(0);
    max as f64 * k as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_and_imbalance() {
        let g = CsrGraph::from_edges(4, [(0, 1), (2, 3)]);
        let part = [0u32, 0, 1, 1];
        assert_eq!(part_weights(&g, &part, 2), vec![2, 2]);
        assert!((imbalance(&g, &part, 2) - 1.0).abs() < 1e-12);
        let skewed = [0u32, 0, 0, 1];
        assert!((imbalance(&g, &skewed, 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_imbalance_zero() {
        let g = CsrGraph::from_edges(0, std::iter::empty());
        assert_eq!(imbalance(&g, &[], 4), 0.0);
    }

    #[test]
    fn cut_counts_weighted_edges() {
        let g = CsrGraph::from_weighted_edges(2, [(0, 1, 5)]);
        assert_eq!(edge_cut(&g, &[0, 1]), 5);
        assert_eq!(edge_cut(&g, &[0, 0]), 0);
    }
}
