//! End-to-end service tests: the TCP placement node must behave
//! exactly like the in-process engine it fronts — same placements,
//! typed shedding under overload, zero lost acks through drain and
//! across a WAL-backed restart.

use std::time::{Duration, Instant};

use optchain_client::{Client, ClientError, RejectReason};
use optchain_core::{Router, RouterFleet, SegmentWal, Storage};
use optchain_server::PlacementServer;
use optchain_utxo::TxId;
use optchain_workload::{generate, WorkloadConfig};

fn workload(n: usize, seed: u64) -> Vec<(TxId, Vec<TxId>)> {
    generate(WorkloadConfig::small().with_seed(seed), n)
        .into_iter()
        .map(|tx| (tx.id(), tx.input_txids()))
        .collect()
}

/// A unique scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("optchain-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One connection at a flat fee observes strict submission order, so
/// the node must place the stream bit-identically to a bare Router.
#[test]
fn single_connection_placements_match_router() {
    let txs = workload(2_000, 7);
    let server = PlacementServer::builder()
        .fleet(RouterFleet::builder().shards(8).workers(1))
        .start()
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.shards(), 8);

    let mut router = Router::builder().shards(8).build();
    for (txid, inputs) in &txs {
        let via_wire = client.submit(1, *txid, inputs).expect("placed");
        let direct = router.submit(*txid, inputs);
        assert_eq!(via_wire, direct.0, "divergence at {txid:?}");
    }

    // And the node can answer where everything went.
    for (txid, _) in txs.iter().rev().take(50) {
        let shard = client.query(*txid).expect("query");
        assert_eq!(shard, router.shard_of(*txid).map(|s| s.0));
    }
    server.shutdown();
}

/// Batch submission is the same placements as singles, acked in order.
#[test]
fn batch_placements_match_singles() {
    let txs = workload(600, 21);
    let server = PlacementServer::builder()
        .fleet(RouterFleet::builder().shards(4).workers(1))
        .start()
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut router = Router::builder().shards(4).build();

    for chunk in txs.chunks(64) {
        let shards = client.submit_batch(1, chunk).expect("batch placed");
        assert_eq!(shards.len(), chunk.len());
        for ((txid, inputs), shard) in chunk.iter().zip(shards) {
            assert_eq!(shard, router.submit(*txid, inputs).0);
        }
    }
    server.shutdown();
}

/// Driving the node at ~2x its (throttled) capacity must shed with
/// typed `QueueFull` rejections, keep admitted-request latency within
/// the queue-derived bound, and answer every request exactly once.
#[test]
fn overload_sheds_typed_with_bounded_latency_and_zero_lost_acks() {
    const RATE: u64 = 2_000; // placements/sec, dispatcher-throttled
    const QUEUE: usize = 64;
    const N: u64 = 1_000;

    let server = PlacementServer::builder()
        .fleet(RouterFleet::builder().shards(4).workers(1))
        .queue_capacity(QUEUE)
        .credit_window(1_024) // wider than N: shedding, not stalling
        .max_placements_per_sec(RATE)
        .start()
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Fire N submissions as fast as the socket takes them (~2x the
    // throttled rate), then collect every response.
    let txs = workload(N as usize, 33);
    let started = Instant::now();
    let mut req_ids = Vec::with_capacity(txs.len());
    for (txid, inputs) in &txs {
        req_ids.push(client.send_submit(1, *txid, inputs).expect("send"));
    }
    client.flush().expect("flush");

    let mut acks = 0u64;
    let mut queue_full = 0u64;
    let mut answered = std::collections::HashSet::new();
    for _ in 0..N {
        match client.recv_event().expect("event") {
            optchain_client::Event::Ack { req_id, .. } => {
                acks += 1;
                assert!(answered.insert(req_id), "double answer for {req_id}");
            }
            optchain_client::Event::Reject { req_id, reason } => {
                assert_eq!(reason, RejectReason::QueueFull, "unexpected shed reason");
                queue_full += 1;
                assert!(answered.insert(req_id), "double answer for {req_id}");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    let elapsed = started.elapsed();

    // Exactly one answer per request: zero lost acks, zero silent drops.
    assert_eq!(acks + queue_full, N);
    assert!(
        req_ids.iter().all(|id| answered.contains(id)),
        "every request answered"
    );
    // Genuine overload: a meaningful fraction was shed.
    assert!(queue_full > 0, "expected shedding at 2x overload");
    let m = server.metrics();
    assert_eq!(m.acked(), acks, "server acked counter agrees");
    assert_eq!(m.shed(RejectReason::QueueFull), queue_full);
    assert_eq!(m.admitted(), acks, "admitted implies acked");

    // Bounded latency for admitted work: the queue holds at most
    // QUEUE txs placed at RATE/sec, so admission->ack p99 is ~
    // QUEUE/RATE (32ms); allow a generous scheduling margin.
    let p99 = m.latency_usec_quantile(0.99).expect("latency recorded");
    let bound_usec = (QUEUE as u64 * 1_000_000 / RATE) * 8 + 200_000;
    assert!(
        p99 <= bound_usec,
        "admitted p99 {p99}us exceeds bound {bound_usec}us"
    );
    // Sanity: the run itself terminated promptly (shedding, not queuing).
    assert!(elapsed < Duration::from_secs(30));
    server.shutdown();
}

/// After `begin_shutdown`, new work sheds with `Shutdown` while
/// everything already admitted still places and acks; after
/// `shutdown`, the socket reports a clean close.
#[test]
fn drain_sheds_new_work_and_acks_admitted_work() {
    let txs = workload(200, 5);
    let server = PlacementServer::builder()
        .fleet(
            RouterFleet::builder()
                .shards(4)
                .workers(2)
                .sync_interval(64),
        )
        .start()
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Synchronous submits: each ack proves admission + placement.
    for (txid, inputs) in &txs[..100] {
        client.submit(1, *txid, inputs).expect("placed");
    }

    server.begin_shutdown();

    let (txid, inputs) = &txs[100];
    match client.submit(1, *txid, inputs) {
        Err(ClientError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::Shutdown)
        }
        other => panic!("expected Shutdown rejection, got {other:?}"),
    }
    // Queries are shed during drain too — the node is going away.
    match client.query(txs[0].0) {
        Err(ClientError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::Shutdown)
        }
        other => panic!("expected Shutdown rejection, got {other:?}"),
    }

    server.shutdown();

    // The server closed the stream at a frame boundary.
    let mut c = client;
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    match c.recv_event() {
        Err(ClientError::ServerClosed) | Err(ClientError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }
}

/// A node built over `.storage(...)` journals every placement before
/// acking: after a full stop and a rebuild from the same directories,
/// every previously acked placement must still be queryable — zero
/// lost acks across the restart.
#[test]
fn wal_backed_restart_preserves_every_acked_placement() {
    let dir = scratch_dir("wal-restart");
    let txs = workload(400, 11);
    let storages = |dir: &std::path::Path| -> Vec<Box<dyn Storage>> {
        (0..2)
            .map(|w| {
                Box::new(SegmentWal::open(dir.join(format!("worker-{w}"))).expect("open wal"))
                    as Box<dyn Storage>
            })
            .collect()
    };

    let mut placed: Vec<(TxId, u32)> = Vec::with_capacity(txs.len());
    {
        let server = PlacementServer::builder()
            .fleet(
                RouterFleet::builder()
                    .shards(4)
                    .workers(2)
                    .sync_interval(64)
                    .storage(storages(&dir)),
            )
            .start()
            .expect("start server");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for (txid, inputs) in &txs {
            let shard = client.submit(1, *txid, inputs).expect("placed");
            placed.push((*txid, shard));
        }
        // Graceful shutdown flushes each worker's WAL tail.
        server.shutdown();
    }

    let server = PlacementServer::builder()
        .fleet(
            RouterFleet::builder()
                .shards(4)
                .workers(2)
                .sync_interval(64)
                .storage(storages(&dir)),
        )
        .start()
        .expect("restart server");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    for (txid, shard) in &placed {
        let recovered = client.query(*txid).expect("query after restart");
        assert_eq!(
            recovered,
            Some(*shard),
            "{txid:?} lost or moved across restart"
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-submitting an id the node already placed is shed as `Duplicate`
/// (the underlying graph treats resubmission as corruption, the
/// service turns it into a typed, recoverable rejection).
#[test]
fn duplicate_submission_is_shed_typed() {
    let server = PlacementServer::builder()
        .fleet(RouterFleet::builder().shards(4).workers(1))
        .start()
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.submit(1, TxId(42), &[]).expect("first admit");
    match client.submit(1, TxId(42), &[]) {
        Err(ClientError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::Duplicate)
        }
        other => panic!("expected Duplicate rejection, got {other:?}"),
    }
    // An intra-batch duplicate is refused atomically: nothing from the
    // batch is admitted...
    match client.submit_batch(1, &[(TxId(50), vec![]), (TxId(50), vec![])]) {
        Err(ClientError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::Duplicate)
        }
        other => panic!("expected Duplicate rejection, got {other:?}"),
    }
    // ...so the id is still submittable afterwards.
    client.submit(1, TxId(50), &[]).expect("still admittable");
    // The connection survived every rejection.
    client.submit(1, TxId(43), &[TxId(42)]).expect("still live");
    server.shutdown();
}

/// The metrics endpoint reports the counters the protocol promises.
#[test]
fn metrics_text_reports_service_counters() {
    let server = PlacementServer::builder()
        .fleet(RouterFleet::builder().shards(4).workers(1))
        .start()
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for i in 0..32u64 {
        client.submit(1, TxId(1000 + i), &[]).expect("placed");
    }
    let _ = client.submit(1, TxId(1000), &[]); // one duplicate shed
    let text = client.metrics_text().expect("metrics");
    assert!(text.contains("optchain_admitted_total 32"), "{text}");
    assert!(text.contains("optchain_acked_total 32"), "{text}");
    assert!(
        text.contains("optchain_shed_total{reason=\"duplicate\"} 1"),
        "{text}"
    );
    assert!(text.contains("optchain_queue_capacity"), "{text}");
    assert!(
        text.contains("optchain_latency_usec{quantile=\"0.99\"}"),
        "{text}"
    );
    // Per-shard load: every ack was attributed to a shard, one line per
    // shard, summing to the acked total.
    let m = server.metrics();
    let per_shard = m.per_shard_acked();
    assert_eq!(per_shard.len(), 4);
    assert_eq!(per_shard.iter().sum::<u64>(), 32);
    for shard in 0..4 {
        assert!(
            text.contains(&format!("optchain_shard_acked_total{{shard=\"{shard}\"}}")),
            "{text}"
        );
    }
    // Cross-shard and rebalance counters render even without a
    // rebalancer (input-free submissions are never cross, and no
    // rebalancer means all-zero migration counters).
    assert!(text.contains("optchain_cross_placed_total 0"), "{text}");
    assert!(text.contains("optchain_cross_ratio 0.000000"), "{text}");
    assert!(
        text.contains("optchain_rebalance_epochs_committed_total 0"),
        "{text}"
    );
    assert!(
        text.contains("optchain_rebalance_nodes_moved_total 0"),
        "{text}"
    );
    assert!(
        text.contains("optchain_rebalance_bytes_migrated_total 0"),
        "{text}"
    );
    assert_eq!(
        m.rebalance_stats(),
        optchain_core::RebalanceStats::default()
    );
    // The in-process accessor renders the same exposition.
    assert!(server.metrics_text().contains("optchain_admitted_total 32"));
    server.shutdown();
}

/// A server fronting a rebalancer-enabled fleet surfaces migration
/// progress through `/metrics`: driving a hub-heavy stream past several
/// epoch boundaries must show committed epochs and re-homed nodes.
#[test]
fn metrics_text_reports_rebalance_progress() {
    use optchain_core::RebalancePolicy;
    use optchain_workload::HotSpotConfig;

    let txs: Vec<(TxId, Vec<TxId>)> = generate(
        WorkloadConfig::small()
            .with_seed(13)
            .with_hotspot(HotSpotConfig {
                hubs: 2,
                p_hot: 0.7,
                start: 300,
            }),
        3_000,
    )
    .into_iter()
    .map(|tx| (tx.id(), tx.input_txids()))
    .collect();
    let server = PlacementServer::builder()
        .fleet(
            RouterFleet::builder().shards(4).workers(1).rebalancer(
                RebalancePolicy::default()
                    .with_epoch_interval(250)
                    .with_min_in_degree(2),
            ),
        )
        .start()
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for chunk in txs.chunks(128) {
        client.submit_batch(1, chunk).expect("batch placed");
    }

    // Every placement is acked, so the drain-time stats poll observes
    // the final counters; wait for the dispatcher to take it.
    server.begin_shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    let rb = loop {
        let rb = server.metrics().rebalance_stats();
        if rb.epochs_committed > 0 || Instant::now() > deadline {
            break rb;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(rb.epochs_committed > 0, "no epoch committed: {rb:?}");
    assert!(rb.nodes_moved > 0, "no hub re-homed: {rb:?}");
    let m = server.metrics();
    let text = server.metrics_text();
    assert!(
        text.contains(&format!(
            "optchain_rebalance_epochs_committed_total {}",
            rb.epochs_committed
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "optchain_rebalance_nodes_moved_total {}",
            rb.nodes_moved
        )),
        "{text}"
    );
    assert!(m.cross_placed() > 0, "hub workload must cross shards");
    assert!(m.cross_ratio() > 0.0 && m.cross_ratio() < 1.0);
    server.shutdown();
}

/// Fees reorder service: under a throttled dispatcher, a high-fee
/// submission admitted later overtakes queued low-fee work.
#[test]
fn higher_fee_work_is_served_first() {
    // The dispatcher hands work to the fleet in chunks of up to 256
    // transactions; a later high-fee arrival overtakes whatever is
    // still queued behind the in-flight chunk. 400 queued low-fee txs
    // at 2000/s guarantee the high-fee submit lands while well over a
    // chunk's worth is still waiting.
    let server = PlacementServer::builder()
        .fleet(RouterFleet::builder().shards(4).workers(1))
        .queue_capacity(1_024)
        .credit_window(512)
        .max_placements_per_sec(2_000)
        .start()
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Fill the queue with low-fee work, then one high-fee submit.
    let mut low_ids = Vec::new();
    for i in 0..400u64 {
        low_ids.push(client.send_submit(1, TxId(i), &[]).expect("send"));
    }
    let high_id = client.send_submit(1_000, TxId(9_999), &[]).expect("send");
    client.flush().expect("flush");

    // The high-fee ack must arrive before the last low-fee ack.
    let mut order = Vec::new();
    for _ in 0..=low_ids.len() {
        match client.recv_event().expect("event") {
            optchain_client::Event::Ack { req_id, .. } => order.push(req_id),
            other => panic!("unexpected event {other:?}"),
        }
    }
    let high_pos = order.iter().position(|&id| id == high_id).unwrap();
    let last_low_pos = order
        .iter()
        .position(|&id| id == *low_ids.last().unwrap())
        .unwrap();
    assert!(
        high_pos < last_low_pos,
        "high-fee ack at {high_pos}, after last low-fee at {last_low_pos}"
    );
    server.shutdown();
}
