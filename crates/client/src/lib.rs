//! optchain-client: a small blocking client for the optchain
//! placement node (`optchain-server`).
//!
//! Two usage styles:
//!
//! * **Synchronous** — [`Client::submit`], [`Client::submit_batch`],
//!   [`Client::query`], [`Client::metrics_text`]: one request, wait
//!   for its response, typed errors on rejection.
//! * **Pipelined** — [`Client::send_submit`] /
//!   [`Client::send_batch`] to fire requests without waiting, then
//!   [`Client::recv_event`] to collect responses in order. This is
//!   how a load generator keeps the server's credit window full.
//!
//! ```no_run
//! use optchain_client::Client;
//! use optchain_utxo::TxId;
//!
//! let mut c = Client::connect("127.0.0.1:7171").expect("connect");
//! let shard = c.submit(10, TxId(1), &[]).expect("place");
//! let parent = c.query(TxId(1)).expect("query");
//! assert_eq!(parent, Some(shard));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use optchain_server::protocol::{
    self, DecodeError, FrameRead, Request, Response, WireTx, MAX_FRAME_BYTES_CEILING,
};
use optchain_utxo::TxId;

pub use optchain_server::protocol::RejectReason;

/// Everything that can go wrong talking to a placement node.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed or closed mid-frame.
    Io(io::Error),
    /// The server sent bytes that don't decode as a response.
    Decode(DecodeError),
    /// The server shed the request; the typed reason says why (see
    /// [`RejectReason`] for the retry semantics of each).
    Rejected {
        /// The request this rejection answers (0 when the server
        /// could not parse the offending frame).
        req_id: u64,
        /// Why the request was shed.
        reason: RejectReason,
    },
    /// The server closed the connection at a frame boundary.
    ServerClosed,
    /// A protocol-state error: the response type didn't match the
    /// outstanding request (e.g. an `AckBatch` answering a `Submit`).
    UnexpectedResponse {
        /// What the client was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::Decode(err) => write!(f, "undecodable response: {err}"),
            ClientError::Rejected { req_id, reason } => {
                write!(f, "request {req_id} rejected: {reason}")
            }
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::UnexpectedResponse { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<DecodeError> for ClientError {
    fn from(err: DecodeError) -> Self {
        ClientError::Decode(err)
    }
}

/// A response event, as delivered by [`Client::recv_event`] when
/// pipelining. Mirrors the wire responses minus the handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A single submit was placed on `shard`.
    Ack {
        /// The request this answers.
        req_id: u64,
        /// The shard the transaction was placed on.
        shard: u32,
    },
    /// A batch was placed; one shard per transaction, in order.
    AckBatch {
        /// The request this answers.
        req_id: u64,
        /// Placements, in batch order.
        shards: Vec<u32>,
    },
    /// The request was shed.
    Reject {
        /// The request this answers (0 for connection-level rejects).
        req_id: u64,
        /// Why it was shed.
        reason: RejectReason,
    },
    /// Answer to a `Query`.
    QueryResult {
        /// The request this answers.
        req_id: u64,
        /// The placed shard, or `None` if the id is unknown.
        shard: Option<u32>,
    },
    /// Answer to a `Metrics` request.
    MetricsText {
        /// The request this answers.
        req_id: u64,
        /// The text exposition body.
        text: String,
    },
}

impl Event {
    fn kind(&self) -> &'static str {
        match self {
            Event::Ack { .. } => "ack",
            Event::AckBatch { .. } => "ack_batch",
            Event::Reject { .. } => "reject",
            Event::QueryResult { .. } => "query_result",
            Event::MetricsText { .. } => "metrics_text",
        }
    }
}

/// A blocking connection to a placement node.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    frame: Vec<u8>,
    payload: Vec<u8>,
    next_req_id: u64,
    credit_window: u32,
    max_frame_bytes: u32,
    shards: u32,
}

impl Client {
    /// Connects and completes the handshake (the server speaks first,
    /// announcing its credit window, frame limit, and shard count).
    ///
    /// # Errors
    ///
    /// Connection failures, or a handshake that isn't a `Hello`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let mut client = Client {
            reader: stream,
            writer,
            frame: Vec::new(),
            payload: Vec::new(),
            next_req_id: 1,
            credit_window: 0,
            max_frame_bytes: 0,
            shards: 0,
        };
        match client.recv_response()? {
            Response::Hello {
                credit_window,
                max_frame_bytes,
                shards,
            } => {
                client.credit_window = credit_window;
                client.max_frame_bytes = max_frame_bytes;
                client.shards = shards;
                Ok(client)
            }
            other => Err(ClientError::UnexpectedResponse {
                expected: "hello",
                got: response_kind(&other),
            }),
        }
    }

    /// Sets the socket read timeout (None blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.set_read_timeout(timeout)?;
        Ok(())
    }

    /// The server's per-connection credit window, from the handshake:
    /// how many requests may be in flight before the server pauses
    /// reads. Pipelining callers should stay at or under it.
    pub fn credit_window(&self) -> u32 {
        self.credit_window
    }

    /// The server's frame size limit, from the handshake.
    pub fn max_frame_bytes(&self) -> u32 {
        self.max_frame_bytes
    }

    /// The fleet's shard count, from the handshake.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    // -- synchronous API ---------------------------------------------------

    /// Places one transaction and waits for its shard.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] if the server shed it, transport and
    /// protocol errors otherwise.
    pub fn submit(&mut self, fee: u64, txid: TxId, inputs: &[TxId]) -> Result<u32, ClientError> {
        let req_id = self.send_submit(fee, txid, inputs)?;
        self.flush()?;
        match self.expect_event(req_id)? {
            Event::Ack { shard, .. } => Ok(shard),
            other => Err(ClientError::UnexpectedResponse {
                expected: "ack",
                got: other.kind(),
            }),
        }
    }

    /// Places a batch atomically (one admission decision, one
    /// response) and waits for the per-transaction shards, in order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] if the batch was shed as a unit.
    pub fn submit_batch(
        &mut self,
        fee: u64,
        txs: &[(TxId, Vec<TxId>)],
    ) -> Result<Vec<u32>, ClientError> {
        let req_id = self.send_batch(fee, txs)?;
        self.flush()?;
        match self.expect_event(req_id)? {
            Event::AckBatch { shards, .. } => Ok(shards),
            other => Err(ClientError::UnexpectedResponse {
                expected: "ack_batch",
                got: other.kind(),
            }),
        }
    }

    /// Asks which shard holds `txid` (`Ok(None)` if the node has never
    /// placed it, or has already evicted it past its retention).
    ///
    /// # Errors
    ///
    /// Transport or protocol failures; queries themselves can also be
    /// shed under overload ([`ClientError::Rejected`]).
    pub fn query(&mut self, txid: TxId) -> Result<Option<u32>, ClientError> {
        let req_id = self.next_req_id();
        self.send_request(&Request::Query { req_id, txid })?;
        self.flush()?;
        match self.expect_event(req_id)? {
            Event::QueryResult { shard, .. } => Ok(shard),
            other => Err(ClientError::UnexpectedResponse {
                expected: "query_result",
                got: other.kind(),
            }),
        }
    }

    /// Fetches the server's `/metrics`-style text exposition.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let req_id = self.next_req_id();
        self.send_request(&Request::Metrics { req_id })?;
        self.flush()?;
        match self.expect_event(req_id)? {
            Event::MetricsText { text, .. } => Ok(text),
            other => Err(ClientError::UnexpectedResponse {
                expected: "metrics_text",
                got: other.kind(),
            }),
        }
    }

    // -- pipelined API -----------------------------------------------------

    /// Queues a submit without waiting; returns its request id. Call
    /// [`Client::flush`] before blocking on [`Client::recv_event`].
    ///
    /// # Errors
    ///
    /// Transport failures while writing.
    pub fn send_submit(
        &mut self,
        fee: u64,
        txid: TxId,
        inputs: &[TxId],
    ) -> Result<u64, ClientError> {
        let req_id = self.next_req_id();
        self.send_request(&Request::Submit {
            req_id,
            fee,
            tx: WireTx {
                txid,
                inputs: inputs.to_vec(),
            },
        })?;
        Ok(req_id)
    }

    /// Queues a batch submit without waiting; returns its request id.
    ///
    /// # Errors
    ///
    /// Transport failures while writing.
    pub fn send_batch(&mut self, fee: u64, txs: &[(TxId, Vec<TxId>)]) -> Result<u64, ClientError> {
        let req_id = self.next_req_id();
        let wire: Vec<WireTx> = txs
            .iter()
            .map(|(txid, inputs)| WireTx {
                txid: *txid,
                inputs: inputs.clone(),
            })
            .collect();
        self.send_request(&Request::SubmitBatch {
            req_id,
            fee,
            txs: wire,
        })?;
        Ok(req_id)
    }

    /// Flushes buffered requests to the socket.
    ///
    /// # Errors
    ///
    /// Transport failures while flushing.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Blocks for the next response event. Responses to pipelined
    /// requests arrive in admission-priority order, not necessarily
    /// send order — correlate by `req_id`.
    ///
    /// # Errors
    ///
    /// [`ClientError::ServerClosed`] on clean EOF, transport and
    /// decode failures otherwise. Rejections are returned as
    /// [`Event::Reject`] values, not errors, so pipelining callers can
    /// count them.
    pub fn recv_event(&mut self) -> Result<Event, ClientError> {
        match self.recv_response()? {
            Response::Hello { .. } => Err(ClientError::UnexpectedResponse {
                expected: "a post-handshake response",
                got: "hello",
            }),
            Response::Ack { req_id, shard } => Ok(Event::Ack { req_id, shard }),
            Response::AckBatch { req_id, shards } => Ok(Event::AckBatch { req_id, shards }),
            Response::Reject { req_id, reason } => Ok(Event::Reject { req_id, reason }),
            Response::QueryResult { req_id, shard } => Ok(Event::QueryResult { req_id, shard }),
            Response::MetricsText { req_id, text } => Ok(Event::MetricsText { req_id, text }),
        }
    }

    // -- internals ---------------------------------------------------------

    fn next_req_id(&mut self) -> u64 {
        let id = self.next_req_id;
        self.next_req_id += 1;
        id
    }

    fn send_request(&mut self, request: &Request) -> Result<(), ClientError> {
        protocol::encode_request(request, &mut self.payload);
        protocol::write_frame(&mut self.writer, &self.payload)?;
        Ok(())
    }

    fn recv_response(&mut self) -> Result<Response, ClientError> {
        match protocol::read_frame(&mut self.reader, MAX_FRAME_BYTES_CEILING, &mut self.frame)? {
            FrameRead::Payload => Ok(protocol::decode_response(&self.frame)?),
            FrameRead::Eof => Err(ClientError::ServerClosed),
            FrameRead::TooLarge { len } => Err(ClientError::Decode(DecodeError::FrameTooLarge {
                len,
                max: MAX_FRAME_BYTES_CEILING,
            })),
        }
    }

    /// Waits for the event answering `req_id`; a `Reject` for it
    /// becomes [`ClientError::Rejected`], anything answering a
    /// different request is a protocol-state error (the sync API never
    /// has two requests outstanding).
    fn expect_event(&mut self, req_id: u64) -> Result<Event, ClientError> {
        let event = self.recv_event()?;
        let answers = match &event {
            Event::Ack { req_id: r, .. }
            | Event::AckBatch { req_id: r, .. }
            | Event::QueryResult { req_id: r, .. }
            | Event::MetricsText { req_id: r, .. } => *r,
            Event::Reject { req_id: r, reason } => {
                return Err(ClientError::Rejected {
                    req_id: *r,
                    reason: *reason,
                });
            }
        };
        if answers != req_id {
            return Err(ClientError::UnexpectedResponse {
                expected: "a response to the outstanding request",
                got: event.kind(),
            });
        }
        Ok(event)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("credit_window", &self.credit_window)
            .field("shards", &self.shards)
            .finish()
    }
}

fn response_kind(resp: &Response) -> &'static str {
    match resp {
        Response::Hello { .. } => "hello",
        Response::Ack { .. } => "ack",
        Response::AckBatch { .. } => "ack_batch",
        Response::Reject { .. } => "reject",
        Response::QueryResult { .. } => "query_result",
        Response::MetricsText { .. } => "metrics_text",
    }
}
