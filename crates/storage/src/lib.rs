//! Durable append-only storage for placement nodes.
//!
//! Everything above this crate is in-RAM: a kill -9 loses the stream.
//! This crate is the "survives kill -9" layer — a [`Storage`] trait
//! over an append-only, CRC-framed journal plus atomically
//! replaceable side blobs (a **meta** header describing the writer's
//! configuration and a **checkpoint chain**: a full base checkpoint
//! optionally extended by delta checkpoints, each carrying serialized
//! state up to a journal position), with three backends:
//!
//! * [`MemStorage`] — an in-memory journal with an explicit
//!   durable/buffered split, for tests and ephemeral deployments;
//! * [`SegmentWal`] — the real thing: numbered segment files of
//!   CRC32-framed records, batched `fsync` commits, torn-tail
//!   truncation on open, and segment GC below the checkpoint;
//! * [`FailpointStorage`] — a deterministic fault-injection wrapper
//!   that models a kill -9 at an arbitrary operation boundary,
//!   including short writes and CRC-corrupted tails.
//!
//! # Durability contract
//!
//! [`Storage::append`] buffers; [`Storage::flush`] makes every
//! buffered record durable (one `fsync` per batch, not per record —
//! the writer acks a batch only after its flush returns). A crash
//! loses an arbitrary *suffix* of the unflushed buffer, possibly
//! leaving a torn or corrupted final frame; reopening truncates the
//! tail at the first bad frame, so the durable journal is always a
//! clean prefix of what was appended. Meta and checkpoint writes are
//! atomic (write-temp + rename): a crash leaves either the old or the
//! new blob, never a mix.
//!
//! Records carry sequence numbers `0, 1, 2, …` in append order;
//! [`Storage::replay`] visits the durable ones from a position, and
//! [`Storage::gc`] reclaims whole segments that lie entirely below
//! the **tail** of the checkpoint chain — the highest `upto_seq` of
//! any installed full or delta checkpoint — so records a delta has
//! absorbed can be reclaimed without waiting for the next full
//! snapshot.
//!
//! The authoritative on-disk specification — WAL record framing and
//! tag table, checkpoint envelope versions with their read-compat
//! matrix, the recovery state machine, and the GC invariants — lives
//! in `docs/DURABILITY.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod failpoint;
mod mem;
mod shared;
mod wal;
pub mod zrle;

pub use codec::{
    crc32, for_each_frame, frame_into, scan_frames, ByteReader, ByteWriter, CodecError,
    FRAME_HEADER,
};
pub use failpoint::FailpointStorage;
pub use mem::MemStorage;
pub use shared::SharedStorage;
pub use wal::SegmentWal;

use std::io;

/// An append-only journal plus two atomically replaceable side blobs.
/// See the [crate docs](crate) for the durability contract.
pub trait Storage: Send + std::fmt::Debug {
    /// Atomically installs the meta blob (the writer's self-describing
    /// configuration header). Written once, before the first append.
    fn put_meta(&mut self, payload: &[u8]) -> io::Result<()>;

    /// The installed meta blob, if any.
    fn meta(&self) -> io::Result<Option<Vec<u8>>>;

    /// Appends one record, returning its sequence number. Buffered —
    /// not durable until [`Storage::flush`].
    fn append(&mut self, payload: &[u8]) -> io::Result<u64>;

    /// Durably commits every buffered record (one fsync per batch).
    fn flush(&mut self) -> io::Result<()>;

    /// The sequence number the next [`Storage::append`] will get
    /// (counting buffered records).
    fn next_seq(&self) -> u64;

    /// Atomically installs a checkpoint: `blob` captures the writer's
    /// state after applying every record with sequence `< upto_seq`.
    fn put_checkpoint(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()>;

    /// The installed **base** (full) checkpoint `(upto_seq, blob)`,
    /// if any. Deltas stacked on top of it are visible only through
    /// [`Storage::checkpoint_chain`].
    fn checkpoint(&self) -> io::Result<Option<(u64, Vec<u8>)>>;

    /// Atomically installs a **delta** checkpoint extending the
    /// chain: `blob` captures only the changes between the chain's
    /// previous element and journal position `upto_seq`. Fails with
    /// [`io::ErrorKind::InvalidInput`] when no base checkpoint is
    /// installed or `upto_seq` does not strictly advance past the
    /// chain tail. A subsequent full [`Storage::put_checkpoint`]
    /// supersedes and clears the whole chain.
    fn put_checkpoint_delta(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()>;

    /// The installed checkpoint chain, oldest first: the base full
    /// checkpoint followed by every delta, each as `(upto_seq,
    /// blob)`, with strictly increasing positions. Empty when no
    /// checkpoint has been installed.
    fn checkpoint_chain(&self) -> io::Result<Vec<(u64, Vec<u8>)>>;

    /// Visits every **durable** record with sequence `>= from_seq`, in
    /// sequence order, as `(seq, payload)`.
    fn replay(&self, from_seq: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()>;

    /// Reclaims journal space wholly below the checkpoint chain's
    /// tail position (whole segments only — the active tail always
    /// survives). Returns the bytes reclaimed.
    fn gc(&mut self) -> io::Result<u64>;

    /// Bytes currently held durable (segments + side blobs), the
    /// quantity the O(window) disk gate bounds.
    fn bytes_on_disk(&self) -> u64;
}

/// What the kill leaves of the first unflushed record that did *not*
/// fully reach disk (see [`Crashable::crash`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailDamage {
    /// The record vanishes at a clean frame boundary.
    None,
    /// A short write: only the leading `keep_bytes` of the frame land
    /// on disk (clamped below the full frame, so the tail is torn).
    Torn {
        /// Bytes of the frame that reach disk.
        keep_bytes: usize,
    },
    /// The full frame lands on disk with a flipped payload byte, so
    /// its CRC no longer matches.
    BadCrc,
}

/// A backend that can model a kill -9 at the current instant —
/// implemented by [`MemStorage`] and [`SegmentWal`], driven by
/// [`FailpointStorage`].
pub trait Crashable {
    /// Models the process dying *now*: of the records buffered since
    /// the last flush, the first `survive` reach disk intact, the next
    /// one suffers `damage`, and the rest vanish. The backend then
    /// transitions to its freshly-reopened state (running the
    /// torn-tail truncation a real reopen performs), ready for
    /// recovery reads.
    fn crash(&mut self, survive: usize, damage: TailDamage) -> io::Result<()>;
}
