//! Deterministic fault injection: a [`Storage`] wrapper that models a
//! kill -9 at an arbitrary mutating-operation boundary.
//!
//! The wrapper counts mutating operations (`append`, `flush`,
//! `put_meta`, `put_checkpoint`, `put_checkpoint_delta`, `gc`). When the counter reaches the
//! planned crash point, it drives the inner backend's
//! [`Crashable::crash`] — first `survive` buffered records land
//! intact, the next one suffers the planned [`TailDamage`] — and from
//! then on every mutating operation fails with
//! [`std::io::ErrorKind::BrokenPipe`], modeling the dead process.
//! Reads keep working: they are what the *next* process (recovery)
//! sees. [`FailpointStorage::disarm`] revives the handle for that
//! recovery run.

use std::io;

use crate::{Crashable, Storage, TailDamage};

/// A [`Storage`] wrapper that kills the process model at a planned
/// operation boundary. See the module docs.
#[derive(Debug)]
pub struct FailpointStorage<S> {
    inner: S,
    /// Mutating operations executed before the crash fires.
    after_ops: u64,
    survive: usize,
    damage: TailDamage,
    ops: u64,
    crashed: bool,
}

impl<S: Storage + Crashable> FailpointStorage<S> {
    /// Wraps `inner`: the first `after_ops` mutating operations run
    /// normally, then the crash fires — `survive` buffered records
    /// reach disk intact and the next suffers `damage`.
    pub fn new(inner: S, after_ops: u64, survive: usize, damage: TailDamage) -> Self {
        FailpointStorage {
            inner,
            after_ops,
            survive,
            damage,
            ops: 0,
            crashed: false,
        }
    }

    /// `true` once the planned crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Mutating operations executed so far (for calibrating a plan).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Revives the handle after a crash — the "new process" opening
    /// the same storage for recovery. The inner backend is already in
    /// its post-reopen state; further operations run normally.
    pub fn disarm(&mut self) {
        self.crashed = false;
        self.after_ops = u64::MAX;
    }

    /// Re-arms the failpoint with a fresh crash plan: the next
    /// `after_ops` mutating operations (counted from now) run
    /// normally, then the crash fires with this `survive`/`damage`
    /// pair. Lets a multi-crash soak chain kill points on one backend.
    pub fn arm(&mut self, after_ops: u64, survive: usize, damage: TailDamage) {
        self.after_ops = self.ops.saturating_add(after_ops);
        self.survive = survive;
        self.damage = damage;
        self.crashed = false;
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Charges one mutating operation; fires the planned crash when
    /// the budget runs out.
    fn charge(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(dead());
        }
        if self.ops >= self.after_ops {
            self.crashed = true;
            self.inner.crash(self.survive, self.damage)?;
            return Err(dead());
        }
        self.ops += 1;
        Ok(())
    }
}

fn dead() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "failpoint: simulated kill -9")
}

impl<S: Storage + Crashable> Storage for FailpointStorage<S> {
    fn put_meta(&mut self, payload: &[u8]) -> io::Result<()> {
        self.charge()?;
        self.inner.put_meta(payload)
    }

    fn meta(&self) -> io::Result<Option<Vec<u8>>> {
        self.inner.meta()
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.charge()?;
        self.inner.append(payload)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.charge()?;
        self.inner.flush()
    }

    fn next_seq(&self) -> u64 {
        self.inner.next_seq()
    }

    fn put_checkpoint(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()> {
        self.charge()?;
        self.inner.put_checkpoint(upto_seq, blob)
    }

    fn checkpoint(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        self.inner.checkpoint()
    }

    fn put_checkpoint_delta(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()> {
        self.charge()?;
        self.inner.put_checkpoint_delta(upto_seq, blob)
    }

    fn checkpoint_chain(&self) -> io::Result<Vec<(u64, Vec<u8>)>> {
        self.inner.checkpoint_chain()
    }

    fn replay(&self, from_seq: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.inner.replay(from_seq, visit)
    }

    fn gc(&mut self) -> io::Result<u64> {
        self.charge()?;
        self.inner.gc()
    }

    fn bytes_on_disk(&self) -> u64 {
        self.inner.bytes_on_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn crash_fires_at_the_planned_op_and_recovery_reads_survivors() {
        // Ops: 0..4 = appends a,b,c,d; op 4 = flush; then buffered e,f.
        let mut s =
            FailpointStorage::new(MemStorage::new(), 7, 1, TailDamage::Torn { keep_bytes: 3 });
        for p in [b"a", b"b", b"c", b"d" as &[u8]] {
            s.append(p).unwrap();
        }
        s.flush().unwrap();
        s.append(b"e").unwrap();
        s.append(b"f").unwrap();
        // Op 7 (the flush) crashes: of the buffered {e, f}, e survives,
        // f is torn away.
        assert!(s.flush().is_err());
        assert!(s.crashed());
        // The dead process cannot write…
        assert!(s.append(b"g").is_err());
        // …but the next process reads the surviving prefix.
        let mut seen = Vec::new();
        s.replay(0, &mut |_, p| seen.push(p.to_vec())).unwrap();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen.last().unwrap(), b"e");
        // And after disarm, the journal accepts appends again.
        s.disarm();
        assert_eq!(s.append(b"g").unwrap(), 5);
    }
}
