//! A cloneable handle to a shared backend.
//!
//! A durable router *owns* its storage, but a fault-injection test
//! needs a side door into the very same backend — to fire and then
//! disarm a failpoint, and to hand the surviving bytes to the
//! recovery path, exactly as a new process would reopen the files the
//! crashed one left behind. [`SharedStorage`] is that side door: a
//! `Clone`-able [`Storage`] delegating to an `Arc<Mutex<S>>`.

use std::io;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::Storage;

/// A cloneable, mutex-guarded [`Storage`] handle. See the module docs.
#[derive(Debug)]
pub struct SharedStorage<S>(Arc<Mutex<S>>);

impl<S> Clone for SharedStorage<S> {
    fn clone(&self) -> Self {
        SharedStorage(Arc::clone(&self.0))
    }
}

impl<S> SharedStorage<S> {
    /// Wraps `inner` in a shared handle.
    pub fn new(inner: S) -> Self {
        SharedStorage(Arc::new(Mutex::new(inner)))
    }

    /// Runs `f` with exclusive access to the inner backend.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.lock())
    }

    /// Locks the backend; a poisoned mutex (a panic elsewhere while
    /// holding the lock) still yields the data — storage state is
    /// exactly what crash recovery is designed to sanity-check.
    fn lock(&self) -> MutexGuard<'_, S> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<S: Storage> Storage for SharedStorage<S> {
    fn put_meta(&mut self, payload: &[u8]) -> io::Result<()> {
        self.lock().put_meta(payload)
    }

    fn meta(&self) -> io::Result<Option<Vec<u8>>> {
        self.lock().meta()
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.lock().append(payload)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.lock().flush()
    }

    fn next_seq(&self) -> u64 {
        self.lock().next_seq()
    }

    fn put_checkpoint(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()> {
        self.lock().put_checkpoint(upto_seq, blob)
    }

    fn checkpoint(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        self.lock().checkpoint()
    }

    fn put_checkpoint_delta(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()> {
        self.lock().put_checkpoint_delta(upto_seq, blob)
    }

    fn checkpoint_chain(&self) -> io::Result<Vec<(u64, Vec<u8>)>> {
        self.lock().checkpoint_chain()
    }

    fn replay(&self, from_seq: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.lock().replay(from_seq, visit)
    }

    fn gc(&mut self) -> io::Result<u64> {
        self.lock().gc()
    }

    fn bytes_on_disk(&self) -> u64 {
        self.lock().bytes_on_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn clones_see_one_backend() {
        let a = SharedStorage::new(MemStorage::new());
        let mut b = a.clone();
        b.append(b"x").unwrap();
        b.flush().unwrap();
        assert_eq!(a.next_seq(), 1);
        a.with(|s| assert_eq!(s.durable_records(), 1));
    }
}
