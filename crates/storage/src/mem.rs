//! The in-memory backend: the full [`Storage`] contract — including
//! the durable/buffered split and torn-tail truncation — without a
//! filesystem. The "disk" is one framed byte log, so the crash model
//! and the reopen scan run the exact same [`scan_frames`] code path
//! as the file-backed [`SegmentWal`](crate::SegmentWal).

use std::io;

use crate::codec::{frame_into, scan_frames, FRAME_HEADER};
use crate::{Crashable, Storage, TailDamage};

/// An in-memory [`Storage`] backend.
///
/// `append` frames records into a buffered log; `flush` moves the
/// buffer into the durable log. A [`Crashable::crash`] drops an
/// arbitrary suffix of the buffer — optionally leaving a torn or
/// CRC-corrupted tail — and then re-runs the open-time scan, exactly
/// like killing and reopening a file-backed journal.
#[derive(Debug, Default)]
pub struct MemStorage {
    meta: Option<Vec<u8>>,
    checkpoint: Option<(u64, Vec<u8>)>,
    /// Delta checkpoints stacked on the base, oldest first.
    deltas: Vec<(u64, Vec<u8>)>,
    /// Framed records that survived a flush (the "disk").
    durable: Vec<u8>,
    /// Sequence number of the first durable record (advanced by GC).
    base_seq: u64,
    /// Records currently in `durable`.
    records: u64,
    /// Framed records appended since the last flush.
    buffered: Vec<u8>,
    buffered_records: u64,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Records currently durable (flushed and intact).
    pub fn durable_records(&self) -> u64 {
        self.records
    }

    /// Highest journal position covered by the checkpoint chain.
    fn chain_upto(&self) -> Option<u64> {
        self.deltas
            .last()
            .map(|(upto, _)| *upto)
            .or(self.checkpoint.as_ref().map(|(upto, _)| *upto))
    }

    /// Walks the durable log, visiting `(seq, payload)` per record.
    fn walk(&self, mut visit: impl FnMut(u64, &[u8])) {
        let mut pos = 0usize;
        let mut seq = self.base_seq;
        while pos + FRAME_HEADER <= self.durable.len() {
            let len = u32::from_le_bytes([
                self.durable[pos],
                self.durable[pos + 1],
                self.durable[pos + 2],
                self.durable[pos + 3],
            ]) as usize;
            let body = pos + FRAME_HEADER;
            visit(seq, &self.durable[body..body + len]);
            pos = body + len;
            seq += 1;
        }
    }
}

impl Storage for MemStorage {
    fn put_meta(&mut self, payload: &[u8]) -> io::Result<()> {
        self.meta = Some(payload.to_vec());
        Ok(())
    }

    fn meta(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.meta.clone())
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq();
        frame_into(&mut self.buffered, payload);
        self.buffered_records += 1;
        Ok(seq)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.durable.append(&mut self.buffered);
        self.records += self.buffered_records;
        self.buffered_records = 0;
        Ok(())
    }

    fn next_seq(&self) -> u64 {
        self.base_seq + self.records + self.buffered_records
    }

    fn put_checkpoint(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()> {
        self.checkpoint = Some((upto_seq, blob.to_vec()));
        // The full snapshot supersedes every delta stacked on the
        // previous base.
        self.deltas.clear();
        Ok(())
    }

    fn checkpoint(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        Ok(self.checkpoint.clone())
    }

    fn put_checkpoint_delta(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()> {
        let Some(tail) = self.chain_upto() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "delta checkpoint without an installed base checkpoint",
            ));
        };
        if upto_seq <= tail {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("delta checkpoint upto {upto_seq} does not advance past chain tail {tail}"),
            ));
        }
        self.deltas.push((upto_seq, blob.to_vec()));
        Ok(())
    }

    fn checkpoint_chain(&self) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let mut chain = Vec::with_capacity(1 + self.deltas.len());
        if let Some(base) = &self.checkpoint {
            chain.push(base.clone());
            chain.extend(self.deltas.iter().cloned());
        }
        Ok(chain)
    }

    fn replay(&self, from_seq: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.walk(|seq, payload| {
            if seq >= from_seq {
                visit(seq, payload);
            }
        });
        Ok(())
    }

    fn gc(&mut self) -> io::Result<u64> {
        let Some(upto) = self.chain_upto() else {
            return Ok(0);
        };
        // Find the byte offset of the first record at or past the
        // checkpoint and drop everything before it.
        let mut cut = 0usize;
        let mut dropped = 0u64;
        self.walk(|seq, payload| {
            if seq < upto {
                cut += FRAME_HEADER + payload.len();
                dropped += 1;
            }
        });
        self.durable.drain(..cut);
        self.base_seq += dropped;
        self.records -= dropped;
        Ok(cut as u64)
    }

    fn bytes_on_disk(&self) -> u64 {
        (self.durable.len()
            + self.meta.as_ref().map_or(0, Vec::len)
            + self.checkpoint.as_ref().map_or(0, |(_, b)| b.len())
            + self.deltas.iter().map(|(_, b)| b.len()).sum::<usize>()) as u64
    }
}

impl Crashable for MemStorage {
    fn crash(&mut self, survive: usize, damage: TailDamage) -> io::Result<()> {
        // Frame boundaries of the buffered records.
        let mut bounds = Vec::with_capacity(self.buffered_records as usize + 1);
        let mut pos = 0usize;
        bounds.push(0);
        while pos + FRAME_HEADER <= self.buffered.len() {
            let len = u32::from_le_bytes([
                self.buffered[pos],
                self.buffered[pos + 1],
                self.buffered[pos + 2],
                self.buffered[pos + 3],
            ]) as usize;
            pos += FRAME_HEADER + len;
            bounds.push(pos);
        }
        let survive = survive.min(bounds.len() - 1);
        self.durable
            .extend_from_slice(&self.buffered[..bounds[survive]]);
        self.records += survive as u64;
        // The next record suffers the tail damage, if there is one.
        if survive + 1 < bounds.len() {
            let frame = &self.buffered[bounds[survive]..bounds[survive + 1]];
            match damage {
                TailDamage::None => {}
                TailDamage::Torn { keep_bytes } => {
                    let keep = keep_bytes.min(frame.len() - 1);
                    self.durable.extend_from_slice(&frame[..keep]);
                }
                TailDamage::BadCrc => {
                    let mut bad = frame.to_vec();
                    let last = bad.len() - 1;
                    bad[last] ^= 0xFF;
                    self.durable.extend_from_slice(&bad);
                }
            }
        }
        self.buffered.clear();
        self.buffered_records = 0;
        // Reopen: torn-tail truncation over the durable log.
        let (records, valid) = scan_frames(&self.durable);
        self.durable.truncate(valid);
        self.records = records;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unflushed_records_die_with_the_process() {
        let mut s = MemStorage::new();
        s.append(b"a").unwrap();
        s.flush().unwrap();
        s.append(b"b").unwrap();
        s.crash(0, TailDamage::None).unwrap();
        let mut seen = Vec::new();
        s.replay(0, &mut |seq, p| seen.push((seq, p.to_vec())))
            .unwrap();
        assert_eq!(seen, vec![(0, b"a".to_vec())]);
        assert_eq!(s.next_seq(), 1);
    }

    #[test]
    fn torn_and_corrupt_tails_are_truncated_on_reopen() {
        for damage in [TailDamage::Torn { keep_bytes: 5 }, TailDamage::BadCrc] {
            let mut s = MemStorage::new();
            s.append(b"aaaa").unwrap();
            s.append(b"bbbb").unwrap();
            s.append(b"cccc").unwrap();
            s.crash(1, damage).unwrap();
            let mut seen = Vec::new();
            s.replay(0, &mut |seq, p| seen.push((seq, p.to_vec())))
                .unwrap();
            assert_eq!(seen, vec![(0, b"aaaa".to_vec())], "{damage:?}");
            // The journal is a clean prefix: appending resumes at seq 1.
            assert_eq!(s.next_seq(), 1);
            assert_eq!(s.append(b"dddd").unwrap(), 1);
        }
    }

    #[test]
    fn gc_drops_records_below_the_checkpoint() {
        let mut s = MemStorage::new();
        for i in 0..10u8 {
            s.append(&[i; 8]).unwrap();
        }
        s.flush().unwrap();
        let before = s.bytes_on_disk();
        s.put_checkpoint(7, b"state").unwrap();
        let reclaimed = s.gc().unwrap();
        assert!(reclaimed > 0);
        assert!(s.bytes_on_disk() < before);
        let mut seqs = Vec::new();
        s.replay(0, &mut |seq, _| seqs.push(seq)).unwrap();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(s.next_seq(), 10);
    }

    #[test]
    fn delta_chain_stacks_gcs_and_clears_on_full_checkpoint() {
        let mut s = MemStorage::new();
        // A delta without a base is a caller bug, not silent data loss.
        assert_eq!(
            s.put_checkpoint_delta(1, b"d").unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        for i in 0..12u8 {
            s.append(&[i; 8]).unwrap();
        }
        s.flush().unwrap();
        s.put_checkpoint(4, b"base").unwrap();
        s.put_checkpoint_delta(6, b"d1").unwrap();
        s.put_checkpoint_delta(9, b"d2").unwrap();
        // The chain must advance strictly.
        assert_eq!(
            s.put_checkpoint_delta(9, b"dup").unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert_eq!(
            s.checkpoint_chain().unwrap(),
            vec![
                (4, b"base".to_vec()),
                (6, b"d1".to_vec()),
                (9, b"d2".to_vec())
            ]
        );
        // checkpoint() still reports only the base.
        assert_eq!(s.checkpoint().unwrap().unwrap(), (4, b"base".to_vec()));
        // GC reclaims up to the chain tail (9), not just the base (4).
        s.gc().unwrap();
        let mut seqs = Vec::new();
        s.replay(0, &mut |seq, _| seqs.push(seq)).unwrap();
        assert_eq!(seqs, vec![9, 10, 11]);
        // A new full snapshot supersedes the chain.
        s.put_checkpoint(12, b"full").unwrap();
        assert_eq!(s.checkpoint_chain().unwrap(), vec![(12, b"full".to_vec())]);
    }

    #[test]
    fn meta_and_checkpoint_roundtrip() {
        let mut s = MemStorage::new();
        assert!(s.meta().unwrap().is_none());
        s.put_meta(b"spec").unwrap();
        assert_eq!(s.meta().unwrap().unwrap(), b"spec");
        s.put_checkpoint(3, b"blob").unwrap();
        assert_eq!(s.checkpoint().unwrap().unwrap(), (3, b"blob".to_vec()));
    }
}
