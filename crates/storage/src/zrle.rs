//! Zero-run-length encoding for checkpoint blobs.
//!
//! A windowed router's checkpoint is dominated by dense `f64` score
//! rows and small integers whose upper bytes are zero — measured blobs
//! are >80% zero bytes. This codec exploits exactly that and nothing
//! more: the stream is a sequence of `[literal-len][literal
//! bytes][zero-run-len]` groups with LEB128 lengths, so compression is
//! a single branch-light pass and decompression is `memcpy` plus
//! `resize`. On real checkpoints it reclaims ~2/3 of the bytes, which
//! cuts the dominant per-checkpoint cost (CRC + write + fsync of the
//! blob) by the same factor — while staying lossless, dependency-free,
//! and format-agnostic about what the blob actually encodes.
//!
//! Short zero runs (< `MIN_RUN`) are cheaper left inside literals
//! than split into a 2-byte group boundary, so they are.

use std::io;

/// Zero runs shorter than this stay inside the surrounding literal.
const MIN_RUN: usize = 4;

fn put_len(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_len(src: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = src
            .get(*pos)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "zrle: truncated length"))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "zrle: length overflows u64",
            ));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Length of the zero run starting at `src[from]`.
fn zero_run(src: &[u8], from: usize) -> usize {
    src[from..].iter().take_while(|&&b| b == 0).count()
}

/// Compresses `src`, appending to `dst` (so a caller can prefix its
/// own header, e.g. a version tag).
pub fn compress_into(src: &[u8], dst: &mut Vec<u8>) {
    let mut pos = 0usize;
    while pos < src.len() {
        // The literal extends until a zero run worth encoding.
        let lit_start = pos;
        let mut run = 0usize;
        while pos < src.len() {
            if src[pos] == 0 {
                run = zero_run(src, pos);
                if run >= MIN_RUN {
                    break;
                }
                pos += run;
                run = 0;
            } else {
                pos += 1;
            }
        }
        put_len(dst, (pos - lit_start) as u64);
        dst.extend_from_slice(&src[lit_start..pos]);
        put_len(dst, run as u64);
        pos += run;
    }
}

/// Decompresses `src`, appending to `dst`. Fails on truncated or
/// overlong input; arbitrary bytes never panic or loop forever.
pub fn decompress_into(src: &[u8], dst: &mut Vec<u8>) -> io::Result<()> {
    let mut pos = 0usize;
    while pos < src.len() {
        let lit = get_len(src, &mut pos)? as usize;
        let end = pos
            .checked_add(lit)
            .filter(|&e| e <= src.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "zrle: truncated literal"))?;
        dst.extend_from_slice(&src[pos..end]);
        pos = end;
        let zeros = get_len(src, &mut pos)?;
        // Cap the claimed run so corrupt input cannot balloon memory
        // past what the outer frame's CRC would have caught anyway.
        if zeros > (1 << 32) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "zrle: implausible zero run",
            ));
        }
        dst.resize(dst.len() + zeros as usize, 0);
    }
    Ok(())
}

/// Convenience wrapper allocating the output buffer.
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2);
    compress_into(src, &mut out);
    out
}

/// Convenience wrapper allocating the output buffer.
pub fn decompress(src: &[u8]) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    decompress_into(src, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &[u8]) -> Vec<u8> {
        let packed = compress(src);
        let back = decompress(&packed).unwrap();
        assert_eq!(back, src, "roundtrip must be lossless");
        packed
    }

    #[test]
    fn roundtrips_edge_cases() {
        roundtrip(b"");
        roundtrip(b"\x00");
        roundtrip(&[0u8; 1_000]);
        roundtrip(b"abcdef");
        roundtrip(b"\x00\x00\x00abc");
        roundtrip(b"abc\x00\x00\x00");
        roundtrip(&[0, 1, 0, 0, 0, 0, 2, 0]);
    }

    #[test]
    fn compresses_zero_heavy_input() {
        let mut src = vec![0u8; 10_000];
        for i in (0..src.len()).step_by(97) {
            src[i] = (i % 251) as u8 + 1;
        }
        let packed = roundtrip(&src);
        assert!(
            packed.len() < src.len() / 10,
            "zero-heavy input must shrink: {} -> {}",
            src.len(),
            packed.len()
        );
    }

    #[test]
    fn short_zero_runs_stay_in_literals() {
        // 3 zeros < MIN_RUN: one literal group, no run split.
        let packed = roundtrip(b"ab\x00\x00\x00cd");
        assert_eq!(packed, [7, b'a', b'b', 0, 0, 0, b'c', b'd', 0]);
    }

    #[test]
    fn pseudorandom_roundtrips() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let len = (next() % 4_096) as usize;
            let zero_bias = case % 5; // 0 = dense, 4 = mostly zeros
            let src: Vec<u8> = (0..len)
                .map(|_| {
                    let v = next();
                    if v % 5 < zero_bias as u64 {
                        0
                    } else {
                        (v >> 8) as u8
                    }
                })
                .collect();
            roundtrip(&src);
        }
    }

    #[test]
    fn malformed_input_errors_cleanly() {
        // Truncated varint.
        assert!(decompress(&[0x80]).is_err());
        // Literal length past the end.
        assert!(decompress(&[5, b'a']).is_err());
        // Missing zero-run length after a literal.
        assert!(decompress(&[1, b'a']).is_err());
        // Length overflowing u64.
        assert!(decompress(&[0xFF; 11]).is_err());
    }
}
