//! Little-endian byte codec and CRC32 — the primitives every frame,
//! record, and checkpoint blob in this workspace is built from.
//!
//! The encoding is deliberately boring: fixed-width little-endian
//! integers, IEEE-754 bit patterns for floats, and length-prefixed
//! byte runs. Determinism is the point — the recovery golden tests
//! assert byte-for-byte stability of checkpoints, so there is no
//! varint cleverness and no platform-dependent layout anywhere.

use std::fmt;

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` —
/// the per-frame checksum the torn-tail scan validates on open.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// A malformed byte stream: truncated input, an impossible length, or
/// a structural invariant violation found while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// An append-only little-endian encoder over an owned buffer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix — pair with an explicit
    /// count written by the caller).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Discards everything written so far, keeping the allocation —
    /// for reusing one writer as a per-record scratch buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor-style little-endian decoder over a borrowed buffer. Every
/// getter fails (instead of panicking) on truncated input, so decoding
/// untrusted bytes — a WAL tail, a checkpoint blob — degrades to a
/// recoverable [`CodecError`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError("unexpected end of input"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an IEEE-754 `f32`.
    pub fn get_f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` count and bounds-checks it against the bytes
    /// actually remaining (`elem_bytes` per element), so a corrupt
    /// length cannot drive an attempted huge allocation.
    pub fn get_count(&mut self, elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_u64()? as usize;
        if n.checked_mul(elem_bytes.max(1))
            .is_none_or(|total| total > self.remaining())
        {
            return Err(CodecError("length prefix exceeds remaining input"));
        }
        Ok(n)
    }

    /// Asserts the whole buffer was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError("trailing bytes after decode"))
        }
    }
}

/// Bytes of frame overhead per record: `[len: u32][crc32: u32]`.
pub const FRAME_HEADER: usize = 8;

/// Appends one CRC-framed record to `out`.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scans a framed byte run, returning `(records, valid_bytes)` of the
/// longest intact prefix. A short header, a length pointing past the
/// end, or a CRC mismatch ends the scan — that is the torn-tail
/// truncation point after a kill -9.
pub fn scan_frames(bytes: &[u8]) -> (u64, usize) {
    let mut pos = 0usize;
    let mut records = 0u64;
    loop {
        if bytes.len() - pos < FRAME_HEADER {
            return (records, pos);
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let body = pos + FRAME_HEADER;
        if bytes.len() - body < len {
            return (records, pos);
        }
        if crc32(&bytes[body..body + len]) != crc {
            return (records, pos);
        }
        pos = body + len;
        records += 1;
    }
}

/// Visits the payload of every intact frame in `bytes`, in order.
pub fn for_each_frame(bytes: &[u8], visit: &mut dyn FnMut(&[u8])) {
    let (_, valid) = scan_frames(bytes);
    let mut pos = 0usize;
    while pos < valid {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let body = pos + FRAME_HEADER;
        visit(&bytes[body..body + len]);
        pos = body + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(1.5);
        w.put_f64(-0.25);
        w.put_bytes(b"xyz");
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -0.25);
        assert_eq!(r.take(3).unwrap(), b"xyz");
        r.finish().unwrap();
    }

    #[test]
    fn reader_fails_on_truncation_not_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
        let mut r = ByteReader::new(&[0, 0, 0]);
        assert!(r.get_count(1).is_err());
    }

    #[test]
    fn count_guard_rejects_absurd_lengths() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert!(r.get_count(4).is_err());
    }

    #[test]
    fn frame_scan_stops_at_torn_and_corrupt_tails() {
        let mut log = Vec::new();
        frame_into(&mut log, b"alpha");
        frame_into(&mut log, b"beta");
        let intact = log.len();
        // Intact log scans fully.
        assert_eq!(scan_frames(&log), (2, intact));
        // Torn tail: a frame cut mid-payload.
        frame_into(&mut log, b"gamma");
        log.truncate(intact + FRAME_HEADER + 2);
        assert_eq!(scan_frames(&log), (2, intact));
        // Corrupt tail: full frame, flipped payload byte.
        log.truncate(intact);
        frame_into(&mut log, b"gamma");
        let last = log.len() - 1;
        log[last] ^= 0xFF;
        assert_eq!(scan_frames(&log), (2, intact));
        // Short header.
        log.truncate(intact);
        log.extend_from_slice(&[9, 0, 0]);
        assert_eq!(scan_frames(&log), (2, intact));
    }

    #[test]
    fn for_each_frame_visits_valid_prefix_in_order() {
        let mut log = Vec::new();
        frame_into(&mut log, b"a");
        frame_into(&mut log, b"bb");
        log.extend_from_slice(&[0xFF; 5]); // garbage tail
        let mut seen = Vec::new();
        for_each_frame(&log, &mut |p| seen.push(p.to_vec()));
        assert_eq!(seen, vec![b"a".to_vec(), b"bb".to_vec()]);
    }
}
