//! The file-backed backend: an append-only journal of numbered
//! segment files (`wal-000000.seg`, `wal-000001.seg`, …) of
//! CRC32-framed records, plus atomically replaced side files
//! (`meta.bin`, `checkpoint.bin`, and the delta-checkpoint chain
//! `ckpt-delta-000000.bin`, `ckpt-delta-000001.bin`, …).
//!
//! * **Batched commits** — [`Storage::append`] frames into an
//!   in-process buffer; [`Storage::flush`] writes the whole batch and
//!   issues one `fdatasync`, so the fsync cost amortizes over the
//!   batch the caller acks.
//! * **Torn-tail truncation** — [`SegmentWal::open`] scans every
//!   segment and truncates at the first short or CRC-mismatching
//!   frame (what a kill -9 mid-write leaves behind); segments after a
//!   damaged one are deleted, so the journal is always a clean prefix.
//! * **Segment GC** — [`Storage::gc`] deletes segments that lie
//!   entirely below the checkpoint *chain tail* (the newest full or
//!   delta checkpoint position), holding disk usage at O(window
//!   between checkpoints) instead of O(stream).
//! * **Delta-chain open rules** — each delta file is written
//!   atomically, so on open a delta is either wholly present or
//!   absent. Deltas at or below the base checkpoint's position are
//!   *stale* (a crash between installing a full checkpoint and
//!   clearing the old chain) and are deleted silently — the base
//!   supersedes them. A live delta that is unreadable, gap-indexed,
//!   or out of order is an [`io::ErrorKind::InvalidData`] error: the
//!   records it absorbed may already be GC'd, so dropping it silently
//!   could recover a *wrong* state. See `docs/DURABILITY.md`.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{frame_into, scan_frames, FRAME_HEADER};
use crate::{Crashable, Storage, TailDamage};

/// `"OWAL"` little-endian — the segment file magic.
const MAGIC: u32 = 0x4C41_574F;
const FORMAT_VERSION: u32 = 1;
/// Segment header: magic, version, base sequence number.
const SEG_HEADER: usize = 16;
/// Default rotation threshold: keep segments small enough that GC
/// reclaims space promptly after a checkpoint.
const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

#[derive(Debug)]
struct DeltaFile {
    index: u64,
    /// Journal position this delta covers up to.
    upto: u64,
    /// On-disk length (frame header + payload).
    bytes: u64,
}

#[derive(Debug)]
struct Segment {
    path: PathBuf,
    index: u64,
    /// Sequence number of this segment's first record.
    base_seq: u64,
    records: u64,
    /// File length (header + framed records).
    bytes: u64,
}

/// The file-backed [`Storage`] backend. See the module docs.
#[derive(Debug)]
pub struct SegmentWal {
    dir: PathBuf,
    segments: Vec<Segment>,
    /// Open handle on the last (active) segment, positioned at its end.
    active: File,
    /// Framed records appended since the last flush.
    buffer: Vec<u8>,
    buffered_records: u64,
    segment_target: u64,
    meta_bytes: u64,
    ckpt_upto: Option<u64>,
    ckpt_bytes: u64,
    /// Live delta checkpoints stacked on the base, oldest first.
    deltas: Vec<DeltaFile>,
    next_delta_index: u64,
}

impl SegmentWal {
    /// Opens (or creates) the journal in `dir`, truncating any torn
    /// tail left by a crash. The default segment rotation target is
    /// 4 MiB.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`SegmentWal::open`] with an explicit segment rotation target.
    pub fn open_with(dir: impl AsRef<Path>, segment_bytes: u64) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let meta_bytes = fs::metadata(dir.join("meta.bin"))
            .map(|m| m.len())
            .unwrap_or(0);
        let (ckpt_upto, ckpt_bytes) = match read_blob(&dir.join("checkpoint.bin"))? {
            Some(payload) if payload.len() >= 8 => {
                let upto = u64::from_le_bytes(payload[..8].try_into().unwrap());
                (Some(upto), payload.len() as u64 + FRAME_HEADER as u64)
            }
            _ => (None, 0),
        };
        let (deltas, next_delta_index) = open_deltas(&dir, ckpt_upto)?;

        // Enumerate segments in index order.
        let mut indices: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".seg"))
            {
                if let Ok(ix) = num.parse::<u64>() {
                    indices.push(ix);
                }
            }
        }
        indices.sort_unstable();

        let mut segments = Vec::with_capacity(indices.len().max(1));
        let mut damaged = false;
        for &index in &indices {
            let path = seg_path(&dir, index);
            if damaged {
                // A kill -9 only damages the log's tail; anything past
                // a damaged segment cannot hold valid newer records.
                fs::remove_file(&path)?;
                continue;
            }
            let bytes = fs::read(&path)?;
            if bytes.len() < SEG_HEADER
                || u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != MAGIC
                || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != FORMAT_VERSION
            {
                if segments.is_empty() && indices.first() == Some(&index) && bytes.is_empty() {
                    // A crash between file creation and header sync.
                    fs::remove_file(&path)?;
                    damaged = true;
                    continue;
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("segment {} has a bad header", path.display()),
                ));
            }
            let base_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
            let (records, valid) = scan_frames(&bytes[SEG_HEADER..]);
            let len = (SEG_HEADER + valid) as u64;
            if len < bytes.len() as u64 {
                // Torn tail: truncate to the last intact frame.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(len)?;
                f.sync_all()?;
                damaged = true;
            }
            segments.push(Segment {
                path,
                index,
                base_seq,
                records,
                bytes: len,
            });
        }

        if segments.is_empty() {
            // Appends resume past everything the checkpoint chain
            // already covers — the chain tail, not just the base.
            let base = deltas.last().map(|d| d.upto).or(ckpt_upto).unwrap_or(0);
            segments.push(create_segment(&dir, 0, base)?);
        }
        let active = OpenOptions::new()
            .append(true)
            .open(&segments.last().unwrap().path)?;
        Ok(SegmentWal {
            dir,
            segments,
            active,
            buffer: Vec::new(),
            buffered_records: 0,
            segment_target: segment_bytes,
            meta_bytes,
            ckpt_upto,
            ckpt_bytes,
            deltas,
            next_delta_index,
        })
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Highest journal position covered by the checkpoint chain.
    fn chain_upto(&self) -> Option<u64> {
        self.deltas.last().map(|d| d.upto).or(self.ckpt_upto)
    }

    /// Number of live segment files (diagnostics for the GC gate).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn tail(&self) -> &Segment {
        self.segments.last().expect("at least one segment")
    }

    /// Opens the next segment once the active one crosses the target.
    fn maybe_rotate(&mut self) -> io::Result<()> {
        let tail = self.tail();
        if tail.bytes < self.segment_target {
            return Ok(());
        }
        let next = create_segment(&self.dir, tail.index + 1, tail.base_seq + tail.records)?;
        self.active = OpenOptions::new().append(true).open(&next.path)?;
        self.segments.push(next);
        Ok(())
    }

    /// Atomically replaces `name` with a framed `payload`
    /// (write-temp + fsync + rename + dir fsync).
    fn write_blob(&self, name: &str, payload: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let mut framed = Vec::with_capacity(payload.len() + FRAME_HEADER);
        frame_into(&mut framed, payload);
        let mut f = File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
        fs::rename(&tmp, self.dir.join(name))?;
        sync_dir(&self.dir)
    }
}

fn seg_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

fn delta_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("ckpt-delta-{index:06}.bin"))
}

/// Enumerates and validates the delta-checkpoint chain at open time.
/// Stale deltas (at or below the base checkpoint position) are
/// deleted — the base supersedes them. Live deltas must be readable,
/// contiguously indexed, and strictly increasing in position;
/// anything else is [`io::ErrorKind::InvalidData`], because the WAL
/// records a live delta absorbed may already be GC'd and recovery
/// without it would be silently wrong.
fn open_deltas(dir: &Path, ckpt_upto: Option<u64>) -> io::Result<(Vec<DeltaFile>, u64)> {
    let mut indices: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("ckpt-delta-")
            .and_then(|rest| rest.strip_suffix(".bin"))
        {
            if let Ok(ix) = num.parse::<u64>() {
                indices.push(ix);
            }
        }
    }
    indices.sort_unstable();

    let mut deltas: Vec<DeltaFile> = Vec::new();
    let mut removed_stale = false;
    for &index in &indices {
        let path = delta_path(dir, index);
        let payload = match read_blob(&path)? {
            Some(p) if p.len() >= 8 => p,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("delta checkpoint {} is unreadable", path.display()),
                ));
            }
        };
        let upto = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let Some(base) = ckpt_upto else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("delta checkpoint {} has no base checkpoint", path.display()),
            ));
        };
        if upto <= base {
            // Superseded by a newer full checkpoint whose install was
            // interrupted before clearing the old chain.
            fs::remove_file(&path)?;
            removed_stale = true;
            continue;
        }
        if let Some(prev) = deltas.last() {
            if index != prev.index + 1 || upto <= prev.upto {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "delta checkpoint chain broken at {} (index {} upto {} after index {} upto {})",
                        path.display(),
                        index,
                        upto,
                        prev.index,
                        prev.upto
                    ),
                ));
            }
        }
        deltas.push(DeltaFile {
            index,
            upto,
            bytes: payload.len() as u64 + FRAME_HEADER as u64,
        });
    }
    let next = deltas.last().map_or(0, |d| d.index + 1);
    if removed_stale {
        sync_dir(dir)?;
    }
    Ok((deltas, next))
}

fn create_segment(dir: &Path, index: u64, base_seq: u64) -> io::Result<Segment> {
    let path = seg_path(dir, index);
    let mut header = Vec::with_capacity(SEG_HEADER);
    header.extend_from_slice(&MAGIC.to_le_bytes());
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&base_seq.to_le_bytes());
    let mut f = File::create(&path)?;
    f.write_all(&header)?;
    f.sync_all()?;
    sync_dir(dir)?;
    Ok(Segment {
        path,
        index,
        base_seq,
        records: 0,
        bytes: SEG_HEADER as u64,
    })
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Reads a framed blob file; `None` when absent or invalid (a crash
/// mid-replace leaves either the old file or the new one — an
/// unreadable blob is treated as absent).
fn read_blob(path: &Path) -> io::Result<Option<Vec<u8>>> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let (records, valid) = scan_frames(&bytes);
    if records == 0 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let _ = valid;
    Ok(Some(bytes[FRAME_HEADER..FRAME_HEADER + len].to_vec()))
}

impl Storage for SegmentWal {
    fn put_meta(&mut self, payload: &[u8]) -> io::Result<()> {
        self.write_blob("meta.bin", payload)?;
        self.meta_bytes = (payload.len() + FRAME_HEADER) as u64;
        Ok(())
    }

    fn meta(&self) -> io::Result<Option<Vec<u8>>> {
        read_blob(&self.dir.join("meta.bin"))
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq();
        frame_into(&mut self.buffer, payload);
        self.buffered_records += 1;
        Ok(seq)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.active.write_all(&self.buffer)?;
        self.active.sync_data()?;
        let added_bytes = self.buffer.len() as u64;
        let added_records = self.buffered_records;
        self.buffer.clear();
        self.buffered_records = 0;
        let tail = self.segments.last_mut().expect("at least one segment");
        tail.bytes += added_bytes;
        tail.records += added_records;
        self.maybe_rotate()
    }

    fn next_seq(&self) -> u64 {
        let tail = self.tail();
        tail.base_seq + tail.records + self.buffered_records
    }

    fn put_checkpoint(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(blob.len() + 8);
        payload.extend_from_slice(&upto_seq.to_le_bytes());
        payload.extend_from_slice(blob);
        self.write_blob("checkpoint.bin", &payload)?;
        self.ckpt_upto = Some(upto_seq);
        self.ckpt_bytes = (payload.len() + FRAME_HEADER) as u64;
        // The full snapshot supersedes the delta chain. The rename
        // above is the commit point: a crash inside this loop leaves
        // stale deltas (upto <= the new base), which the open-time
        // scan deletes.
        if !self.deltas.is_empty() {
            for delta in self.deltas.drain(..) {
                fs::remove_file(delta_path(&self.dir, delta.index))?;
            }
            sync_dir(&self.dir)?;
        }
        self.next_delta_index = 0;
        Ok(())
    }

    fn checkpoint(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        match read_blob(&self.dir.join("checkpoint.bin"))? {
            Some(payload) if payload.len() >= 8 => {
                let upto = u64::from_le_bytes(payload[..8].try_into().unwrap());
                Ok(Some((upto, payload[8..].to_vec())))
            }
            _ => Ok(None),
        }
    }

    fn put_checkpoint_delta(&mut self, upto_seq: u64, blob: &[u8]) -> io::Result<()> {
        let Some(tail) = self.chain_upto() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "delta checkpoint without an installed base checkpoint",
            ));
        };
        if upto_seq <= tail {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("delta checkpoint upto {upto_seq} does not advance past chain tail {tail}"),
            ));
        }
        let mut payload = Vec::with_capacity(blob.len() + 8);
        payload.extend_from_slice(&upto_seq.to_le_bytes());
        payload.extend_from_slice(blob);
        let index = self.next_delta_index;
        self.write_blob(&format!("ckpt-delta-{index:06}.bin"), &payload)?;
        self.deltas.push(DeltaFile {
            index,
            upto: upto_seq,
            bytes: (payload.len() + FRAME_HEADER) as u64,
        });
        self.next_delta_index = index + 1;
        Ok(())
    }

    fn checkpoint_chain(&self) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let Some(base) = self.checkpoint()? else {
            return Ok(Vec::new());
        };
        let mut chain = Vec::with_capacity(1 + self.deltas.len());
        chain.push(base);
        for delta in &self.deltas {
            let path = delta_path(&self.dir, delta.index);
            let payload = match read_blob(&path)? {
                Some(p) if p.len() >= 8 => p,
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("delta checkpoint {} is unreadable", path.display()),
                    ));
                }
            };
            let upto = u64::from_le_bytes(payload[..8].try_into().unwrap());
            chain.push((upto, payload[8..].to_vec()));
        }
        Ok(chain)
    }

    fn replay(&self, from_seq: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        for seg in &self.segments {
            if seg.base_seq + seg.records <= from_seq {
                continue;
            }
            let mut f = File::open(&seg.path)?;
            f.seek(SeekFrom::Start(SEG_HEADER as u64))?;
            let mut bytes = Vec::with_capacity((seg.bytes as usize).saturating_sub(SEG_HEADER));
            f.read_to_end(&mut bytes)?;
            let mut seq = seg.base_seq;
            crate::codec::for_each_frame(&bytes, &mut |payload| {
                if seq >= from_seq {
                    visit(seq, payload);
                }
                seq += 1;
            });
        }
        Ok(())
    }

    fn gc(&mut self) -> io::Result<u64> {
        let Some(upto) = self.chain_upto() else {
            return Ok(0);
        };
        let mut reclaimed = 0u64;
        // Never drop the active (last) segment.
        while self.segments.len() > 1 {
            let seg = &self.segments[0];
            if seg.base_seq + seg.records > upto {
                break;
            }
            reclaimed += seg.bytes;
            fs::remove_file(&seg.path)?;
            self.segments.remove(0);
        }
        if reclaimed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(reclaimed)
    }

    fn bytes_on_disk(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum::<u64>()
            + self.meta_bytes
            + self.ckpt_bytes
            + self.deltas.iter().map(|d| d.bytes).sum::<u64>()
    }
}

impl Crashable for SegmentWal {
    fn crash(&mut self, survive: usize, damage: TailDamage) -> io::Result<()> {
        // Frame boundaries of the buffered (unflushed) records.
        let mut bounds = vec![0usize];
        let mut pos = 0usize;
        while pos + FRAME_HEADER <= self.buffer.len() {
            let len = u32::from_le_bytes([
                self.buffer[pos],
                self.buffer[pos + 1],
                self.buffer[pos + 2],
                self.buffer[pos + 3],
            ]) as usize;
            pos += FRAME_HEADER + len;
            bounds.push(pos);
        }
        let survive = survive.min(bounds.len() - 1);
        self.active.write_all(&self.buffer[..bounds[survive]])?;
        if survive + 1 < bounds.len() {
            let frame = &self.buffer[bounds[survive]..bounds[survive + 1]];
            match damage {
                TailDamage::None => {}
                TailDamage::Torn { keep_bytes } => {
                    let keep = keep_bytes.min(frame.len() - 1);
                    self.active.write_all(&frame[..keep])?;
                }
                TailDamage::BadCrc => {
                    let mut bad = frame.to_vec();
                    let last = bad.len() - 1;
                    bad[last] ^= 0xFF;
                    self.active.write_all(&bad)?;
                }
            }
        }
        self.active.sync_data()?;
        // The process is dead: reopen from disk, which runs the
        // torn-tail truncation and rebuilds the segment map.
        let dir = std::mem::take(&mut self.dir);
        let target = self.segment_target;
        *self = SegmentWal::open_with(dir, target)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("optchain-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn reopen_preserves_flushed_records_and_seqs() {
        let dir = tmpdir("reopen");
        {
            let mut wal = SegmentWal::open(&dir).unwrap();
            wal.put_meta(b"spec").unwrap();
            for i in 0..5u8 {
                assert_eq!(wal.append(&[i; 4]).unwrap(), i as u64);
            }
            wal.flush().unwrap();
            wal.append(b"lost").unwrap(); // never flushed
        }
        let wal = SegmentWal::open(&dir).unwrap();
        assert_eq!(wal.meta().unwrap().unwrap(), b"spec");
        assert_eq!(wal.next_seq(), 5);
        let mut seen = Vec::new();
        wal.replay(2, &mut |seq, p| seen.push((seq, p.len())))
            .unwrap();
        assert_eq!(seen, vec![(2, 4), (3, 4), (4, 4)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        {
            let mut wal = SegmentWal::open(&dir).unwrap();
            for i in 0..3u8 {
                wal.append(&[i; 16]).unwrap();
            }
            wal.flush().unwrap();
        }
        // Tear the last frame mid-payload, as a kill -9 mid-write would.
        let path = seg_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let mut wal = SegmentWal::open(&dir).unwrap();
        assert_eq!(wal.next_seq(), 2);
        // The journal stays appendable after truncation.
        assert_eq!(wal.append(b"next").unwrap(), 2);
        wal.flush().unwrap();
        let mut seqs = Vec::new();
        wal.replay(0, &mut |seq, _| seqs.push(seq)).unwrap();
        assert_eq!(seqs, vec![0, 1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_models_short_writes_and_bad_crcs() {
        for damage in [
            TailDamage::None,
            TailDamage::Torn { keep_bytes: 10 },
            TailDamage::BadCrc,
        ] {
            let dir = tmpdir("crash");
            let mut wal = SegmentWal::open(&dir).unwrap();
            wal.append(b"one").unwrap();
            wal.flush().unwrap();
            for p in [b"two", b"three" as &[u8], b"four"] {
                wal.append(p).unwrap();
            }
            wal.crash(1, damage).unwrap();
            // seq 0 (flushed) and seq 1 (survived the crash) remain;
            // the damaged seq 2 and the vanished seq 3 do not.
            let mut seen = Vec::new();
            wal.replay(0, &mut |seq, p| seen.push((seq, p.to_vec())))
                .unwrap();
            assert_eq!(
                seen,
                vec![(0, b"one".to_vec()), (1, b"two".to_vec())],
                "{damage:?}"
            );
            assert_eq!(wal.next_seq(), 2, "{damage:?}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn delta_chain_survives_reopen_and_gcs_to_the_chain_tail() {
        let dir = tmpdir("delta");
        let mut wal = SegmentWal::open_with(&dir, 1 << 9).unwrap();
        for i in 0..64u8 {
            wal.append(&[i; 32]).unwrap();
            wal.flush().unwrap();
        }
        wal.put_checkpoint(16, b"base").unwrap();
        wal.put_checkpoint_delta(32, b"d1").unwrap();
        wal.put_checkpoint_delta(48, b"d2").unwrap();
        assert!(wal.put_checkpoint_delta(48, b"dup").is_err());
        // GC reclaims segments below the chain tail (48), beyond the
        // base (16).
        wal.gc().unwrap();
        let mut first = None;
        wal.replay(0, &mut |seq, _| {
            first.get_or_insert(seq);
        })
        .unwrap();
        assert!(first.unwrap() <= 48, "records >= chain tail must survive");
        let mut seqs = Vec::new();
        wal.replay(48, &mut |seq, _| seqs.push(seq)).unwrap();
        assert_eq!(seqs, (48..64).collect::<Vec<u64>>());
        drop(wal);

        // A reopen (new process) sees the same chain.
        let mut wal = SegmentWal::open_with(&dir, 1 << 9).unwrap();
        let chain = wal.checkpoint_chain().unwrap();
        assert_eq!(
            chain,
            vec![
                (16, b"base".to_vec()),
                (32, b"d1".to_vec()),
                (48, b"d2".to_vec())
            ]
        );
        // New deltas continue the index sequence after reopen.
        wal.put_checkpoint_delta(64, b"d3").unwrap();
        assert!(dir.join("ckpt-delta-000002.bin").exists());
        // A full checkpoint supersedes and clears the chain files.
        wal.put_checkpoint(64, b"full").unwrap();
        assert_eq!(
            wal.checkpoint_chain().unwrap(),
            vec![(64, b"full".to_vec())]
        );
        assert!(!dir.join("ckpt-delta-000000.bin").exists());
        assert!(!dir.join("ckpt-delta-000002.bin").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_deltas_are_deleted_and_damaged_live_deltas_fail_typed() {
        let dir = tmpdir("delta-damage");
        let mut wal = SegmentWal::open(&dir).unwrap();
        for i in 0..8u8 {
            wal.append(&[i; 8]).unwrap();
        }
        wal.flush().unwrap();
        wal.put_checkpoint(2, b"base").unwrap();
        wal.put_checkpoint_delta(4, b"d1").unwrap();
        wal.put_checkpoint_delta(6, b"d2").unwrap();
        drop(wal);

        // A stale delta (upto <= base) models a crash between a full
        // checkpoint install and the chain cleanup: reopen deletes it.
        {
            let mut payload = Vec::new();
            payload.extend_from_slice(&2u64.to_le_bytes());
            payload.extend_from_slice(b"stale");
            let mut framed = Vec::new();
            frame_into(&mut framed, &payload);
            // Index below the live chain, as an interrupted cleanup
            // would leave.
            fs::write(dir.join("ckpt-delta-000000.bin"), &framed).unwrap();
            let wal = SegmentWal::open(&dir).unwrap();
            // The stale file is gone; its slot is reused as d1's index
            // was 0 — so re-derive the chain from what survived.
            let chain = wal.checkpoint_chain().unwrap();
            assert_eq!(chain.first().unwrap().0, 2);
            assert!(!chain.iter().any(|(_, b)| b == b"stale"));
        }

        // Rebuild a clean two-delta chain for the damage arms.
        let mut wal = SegmentWal::open(&dir).unwrap();
        wal.put_checkpoint(2, b"base").unwrap();
        wal.put_checkpoint_delta(4, b"d1").unwrap();
        wal.put_checkpoint_delta(6, b"d2").unwrap();
        drop(wal);
        let intermediate = dir.join("ckpt-delta-000000.bin");

        // Torn intermediate delta: open must fail typed, never hand
        // back a silently wrong chain.
        let good = fs::read(&intermediate).unwrap();
        fs::write(&intermediate, &good[..good.len() - 3]).unwrap();
        let err = SegmentWal::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // CRC-corrupted intermediate delta: same typed failure.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        fs::write(&intermediate, &bad).unwrap();
        let err = SegmentWal::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Restoring the bytes restores the chain.
        fs::write(&intermediate, &good).unwrap();
        let wal = SegmentWal::open(&dir).unwrap();
        assert_eq!(wal.checkpoint_chain().unwrap().len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_gc_bound_disk_usage() {
        let dir = tmpdir("gc");
        let mut wal = SegmentWal::open_with(&dir, 1 << 10).unwrap();
        let payload = [7u8; 64];
        for chunk in 0..40 {
            for _ in 0..8 {
                wal.append(&payload).unwrap();
            }
            wal.flush().unwrap();
            let _ = chunk;
        }
        assert!(wal.segment_count() > 3, "rotation must run");
        let before = wal.bytes_on_disk();
        wal.put_checkpoint(wal.next_seq(), b"ckpt").unwrap();
        let reclaimed = wal.gc().unwrap();
        assert!(reclaimed > 0);
        assert!(wal.bytes_on_disk() < before);
        assert_eq!(wal.segment_count(), 1);
        // Replay from the checkpoint still works (nothing newer yet).
        let mut n = 0;
        wal.replay(wal.next_seq(), &mut |_, _| n += 1).unwrap();
        assert_eq!(n, 0);
        // And the journal keeps accepting appends with continuous seqs.
        let seq = wal.append(b"after-gc").unwrap();
        wal.flush().unwrap();
        assert_eq!(seq, 320);
        // Reopen after GC: base sequences come from segment headers.
        drop(wal);
        let wal = SegmentWal::open(&dir).unwrap();
        assert_eq!(wal.next_seq(), 321);
        fs::remove_dir_all(&dir).unwrap();
    }
}
