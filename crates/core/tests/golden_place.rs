//! Golden equivalence: the zero-allocation `place_into` hot path must
//! produce **bit-identical** decisions to the seed's allocating
//! implementation (`place_with_detail_naive`), across random workloads,
//! shard counts, damping factors, L2S modes, and telemetry histories.
//!
//! This is the contract that makes the perf work safe: the optimized
//! path shares the L2S expansion across the k-way candidate scan and
//! memoizes it across transactions, and any floating-point reordering
//! would silently change tie-breaks and drift assignments.

use proptest::prelude::*;

use optchain_core::replay::{replay, QueueProxy};
use optchain_core::{
    DecisionBuf, L2sEstimator, L2sMode, NaiveOptChainPlacer, OptChainPlacer, PlacementContext,
    Placer, T2sEngine, TemporalFitness,
};
use optchain_tan::TanGraph;
use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};

/// Random-but-valid transaction stream recipe: per tx, offsets of the
/// outputs it spends (all single-output txs for simplicity).
fn stream_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(1u8..30, 0..4), 1..250)
}

fn build_stream(recipe: &[Vec<u8>]) -> Vec<Transaction> {
    let mut spent = vec![false; recipe.len()];
    let mut txs = Vec::with_capacity(recipe.len());
    for (i, offsets) in recipe.iter().enumerate() {
        let mut builder = Transaction::builder(TxId(i as u64));
        let mut used = Vec::new();
        for off in offsets {
            let Some(p) = i.checked_sub(*off as usize) else {
                continue;
            };
            if !spent[p] && !used.contains(&p) {
                used.push(p);
            }
        }
        for &p in &used {
            spent[p] = true;
            builder = builder.input(TxId(p as u64).outpoint(0));
        }
        txs.push(builder.output(TxOutput::new(1, WalletId(0))).build());
    }
    txs
}

fn placer_pair(k: u32, alpha: f64, mode: L2sMode) -> (OptChainPlacer, NaiveOptChainPlacer) {
    let optimized = OptChainPlacer::from_parts(
        T2sEngine::with_alpha(k, alpha),
        L2sEstimator::with_mode(mode),
        TemporalFitness::paper(),
    );
    let naive = NaiveOptChainPlacer::from_parts(
        T2sEngine::with_alpha(k, alpha),
        L2sEstimator::with_mode(mode),
        TemporalFitness::paper(),
    );
    (optimized, naive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full replay (queue-proxy telemetry, epochs enabled, memo active):
    /// identical assignments transaction by transaction.
    #[test]
    fn replay_assignments_are_bit_identical(
        recipe in stream_strategy(),
        k in 1u32..17,
        alpha_pct in 5u32..100,
        mode_paper in any::<bool>(),
    ) {
        let alpha = alpha_pct as f64 / 100.0;
        let mode = if mode_paper {
            L2sMode::PaperSelfConvolution
        } else {
            L2sMode::VerifyPlusCommit
        };
        let txs = build_stream(&recipe);
        let (mut optimized, mut naive) = placer_pair(k, alpha, mode);
        let fast = replay(&txs, &mut optimized);
        let slow = replay(&txs, &mut naive);
        prop_assert_eq!(&fast.assignments, &slow.assignments);
        prop_assert_eq!(fast.cross, slow.cross);
        prop_assert_eq!(fast.shard_sizes, slow.shard_sizes);
    }

    /// Per-decision scores (not just the argmax) are bit-identical under
    /// hand-varied telemetry with and without epochs.
    #[test]
    fn decision_scores_are_bit_identical(
        recipe in stream_strategy(),
        k in 1u32..9,
        use_epoch in any::<bool>(),
    ) {
        let txs = build_stream(&recipe);
        let (mut optimized, mut naive) = placer_pair(k, 0.5, L2sMode::VerifyPlusCommit);
        let mut tan_fast = TanGraph::new();
        let mut tan_slow = TanGraph::new();
        let mut buf = DecisionBuf::new();
        let mut proxy = QueueProxy::new(k);
        for tx in &txs {
            let node = tan_fast.insert_tx(tx);
            tan_slow.insert_tx(tx);
            let (telemetry, epoch) = {
                let (t, e) = proxy.telemetry();
                (t.to_vec(), e)
            };
            let ctx_fast = if use_epoch {
                PlacementContext::with_epoch(&tan_fast, &telemetry, epoch)
            } else {
                PlacementContext::new(&tan_fast, &telemetry)
            };
            let shard = optimized.place_into(&ctx_fast, node, &mut buf);
            let ctx_slow = PlacementContext::new(&tan_slow, &telemetry);
            let decision = naive.place_with_detail_naive(&ctx_slow, node);
            prop_assert_eq!(shard, decision.shard);
            for j in 0..k as usize {
                prop_assert_eq!(buf.t2s()[j].to_bits(), decision.t2s[j].to_bits());
                prop_assert_eq!(buf.l2s()[j].to_bits(), decision.l2s[j].to_bits());
                prop_assert_eq!(buf.fitness()[j].to_bits(), decision.fitness[j].to_bits());
            }
            proxy.on_place(shard.0);
        }
    }
}

/// The `Placer`-trait path (`place`) and the detail path
/// (`place_with_detail`) are the same decision procedure.
#[test]
#[allow(deprecated)] // exercises the kept-but-deprecated detail path
fn trait_and_detail_paths_agree() {
    let recipe: Vec<Vec<u8>> = vec![vec![], vec![1], vec![1, 2], vec![], vec![2], vec![1, 4]];
    let txs = build_stream(&recipe);
    let (mut via_place, _) = placer_pair(4, 0.5, L2sMode::VerifyPlusCommit);
    let (mut via_detail, _) = placer_pair(4, 0.5, L2sMode::VerifyPlusCommit);
    let telemetry = vec![optchain_core::ShardTelemetry::new(0.1, 0.5); 4];
    let mut tan_a = TanGraph::new();
    let mut tan_b = TanGraph::new();
    for tx in &txs {
        let a = tan_a.insert_tx(tx);
        let b = tan_b.insert_tx(tx);
        let sa = via_place.place(&PlacementContext::new(&tan_a, &telemetry), a);
        let sb = via_detail
            .place_with_detail(&PlacementContext::new(&tan_b, &telemetry), b)
            .shard;
        assert_eq!(sa, sb);
    }
    assert_eq!(via_place.assignments(), via_detail.assignments());
}
