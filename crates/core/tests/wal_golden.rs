//! Golden properties of the durable placement node: WAL + crash
//! recovery under deterministic fault injection.
//!
//! 1. **Crash-point sweep, in-memory backend** (proptest): a durable
//!    router over a `FailpointStorage` is killed at a random mutating
//!    operation — mid-batch, mid-flush, or mid-checkpoint, with a
//!    clean, torn, or CRC-corrupted tail frame — under each
//!    `RetentionPolicy` and a swept full-snapshot cadence
//!    (`full_every`), so the kill can land mid-delta-checkpoint too.
//!    `Router::recover` must rebuild a router **bit-identical** to an
//!    uncrashed reference driven over exactly the surviving record
//!    prefix: same assignments, same telemetry epoch, and the same
//!    full score breakdown on a shared continuation stream.
//! 2. **Crash-point sweep, on-disk `SegmentWal`**: the same property
//!    through real segment files with rotation and GC in play —
//!    recovery reopens the directory exactly as a restarted process
//!    would.
//! 3. **Delta-chain equivalence** (proptest): a clean-shutdown journal
//!    checkpointed as base + deltas (`full_every > 1`) recovers
//!    bit-identically to one checkpointed with full snapshots only
//!    (`full_every = 1`), under every retention policy.
//! 4. **Damaged intermediate delta**: tearing or CRC-corrupting a
//!    delta-checkpoint file must surface as a typed
//!    `InvalidData` error — never a silently wrong router — because
//!    the WAL records the delta absorbed are already GC'd.
//! 5. **Fleet restart**: a 1-worker durable `RouterFleet` shut down
//!    mid-window recovers bit-identically to a `Router` over the same
//!    stream (including its unpublished pending delta); a 2-worker
//!    fleet restarts with every per-worker counter intact and keeps
//!    placing.
//!
//! The surviving-prefix property is the heart of it: the journal acks
//! batches only after fsync, torn tails truncate on reopen, so
//! whatever survives is always the first N records in journal order —
//! and deterministic placement turns that prefix back into the exact
//! pre-crash state.

use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

use optchain_core::{
    FailpointStorage, MemStorage, RetentionPolicy, Router, RouterFleet, SegmentWal, ShardTelemetry,
    SharedStorage, Storage, TailDamage,
};
use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};

/// Deterministic random-but-valid stream: per tx, offsets of the
/// single-output transactions it spends (never farther than
/// `max_offset` back, never double-spending).
fn build_stream(len: usize, max_offset: u8, seed: u64) -> Vec<Transaction> {
    use optchain_tan::hash::splitmix64;
    let mut spent = vec![false; len];
    let mut txs = Vec::with_capacity(len);
    for i in 0..len {
        let mut builder = Transaction::builder(TxId(i as u64));
        let mut used = Vec::new();
        let n_inputs = (splitmix64(seed ^ (i as u64)) % 4) as usize;
        for j in 0..n_inputs {
            let off = 1 + (splitmix64(seed ^ (i as u64) << 3 ^ j as u64) % max_offset as u64);
            let Some(p) = i.checked_sub(off as usize) else {
                continue;
            };
            if !spent[p] && !used.contains(&p) {
                used.push(p);
            }
        }
        for &p in &used {
            spent[p] = true;
            builder = builder.input(TxId(p as u64).outpoint(0));
        }
        txs.push(builder.output(TxOutput::new(1, WalletId(0))).build());
    }
    txs
}

/// One journaled action: a submission or a telemetry update.
enum Step {
    Submit(usize),
    Feed(Vec<ShardTelemetry>),
}

/// Interleaves the stream with an always-changing telemetry feed every
/// `feed_every` submissions — both record kinds land in the WAL, so a
/// crash can split between them.
fn event_schedule(txs: &[Transaction], k: usize, feed_every: usize, seed: u64) -> Vec<Step> {
    let mut steps = Vec::with_capacity(txs.len() + txs.len() / feed_every + 1);
    let mut feeds = 0u64;
    for i in 0..txs.len() {
        if i > 0 && i % feed_every == 0 {
            feeds += 1;
            let telemetry: Vec<ShardTelemetry> = (0..k as u64)
                .map(|j| {
                    ShardTelemetry::new(
                        0.05 + ((seed + feeds + j) % 7) as f64 / 100.0,
                        0.5 + ((feeds * 31 + j * 7 + seed) % 100) as f64 / 10.0,
                    )
                })
                .collect();
            steps.push(Step::Feed(telemetry));
        }
        steps.push(Step::Submit(i));
    }
    steps
}

/// Drives `steps` until the journal reports the (injected) crash.
/// Returns how many steps were *attempted* — the crashing step and
/// everything after it are unacked.
fn drive_until_crash(router: &mut Router, txs: &[Transaction], steps: &[Step]) -> usize {
    for (i, step) in steps.iter().enumerate() {
        let outcome = match step {
            Step::Submit(idx) => router.try_submit_tx(&txs[*idx]).map(|_| ()),
            Step::Feed(telemetry) => router.try_feed_telemetry(telemetry),
        };
        if outcome.is_err() {
            return i;
        }
    }
    steps.len()
}

/// Applies the first `count` steps to an in-RAM reference, returning
/// `(submits, feeds)` applied.
fn apply_prefix(
    router: &mut Router,
    txs: &[Transaction],
    steps: &[Step],
    count: usize,
) -> (u64, u64) {
    let (mut submits, mut feeds) = (0u64, 0u64);
    for step in &steps[..count] {
        match step {
            Step::Submit(idx) => {
                router.submit_tx(&txs[*idx]);
                submits += 1;
            }
            Step::Feed(telemetry) => {
                router.feed_telemetry(telemetry);
                feeds += 1;
            }
        }
    }
    (submits, feeds)
}

/// Submits every remaining transaction to both routers, comparing the
/// full score breakdown per decision — the recovered router must keep
/// deciding bit-identically, not just hold the same history.
fn assert_identical_continuation(
    recovered: &mut Router,
    reference: &mut Router,
    txs: &[Transaction],
    steps: &[Step],
    from_step: usize,
) {
    for step in &steps[from_step..] {
        match step {
            Step::Submit(idx) => {
                let tx = &txs[*idx];
                let a = {
                    let buf = recovered.submit_tx_with_detail(tx);
                    (buf.shard(), buf.t2s().to_vec(), buf.fitness().to_vec())
                };
                let buf = reference.submit_tx_with_detail(tx);
                let b = (buf.shard(), buf.t2s().to_vec(), buf.fitness().to_vec());
                assert_eq!(a, b, "continuation diverged at tx {idx}");
            }
            Step::Feed(telemetry) => {
                recovered.feed_telemetry(telemetry);
                reference.feed_telemetry(telemetry);
            }
        }
    }
    assert_eq!(recovered.assignments(), reference.assignments());
    assert_eq!(recovered.telemetry_version(), reference.telemetry_version());
}

fn policy_for(selector: u8) -> RetentionPolicy {
    match selector {
        0 => RetentionPolicy::Unbounded,
        1 => RetentionPolicy::WindowTxs(64),
        _ => RetentionPolicy::KeepUnspentAndHubs { min_degree: 3 },
    }
}

fn damage_for(selector: u8, keep_bytes: usize) -> TailDamage {
    match selector {
        0 => TailDamage::None,
        1 => TailDamage::Torn { keep_bytes },
        _ => TailDamage::BadCrc,
    }
}

/// The crashed backend's surviving state, replayed into a recovered
/// router and cross-checked against an uncrashed reference over the
/// surviving prefix.
fn check_crash_recovery(
    storage: Box<dyn Storage>,
    policy: RetentionPolicy,
    txs: &[Transaction],
    steps: &[Step],
    attempted: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut recovered = Router::recover(storage).expect("recovery must succeed after a crash");
    let survived_submits = recovered.assignments().len() as u64;
    let survived_feeds = recovered.telemetry_version();
    let survived = (survived_submits + survived_feeds) as usize;
    // The ack contract is batch-level: a crash forgets an arbitrary
    // suffix of the unflushed buffer, so survivors never exceed the
    // attempted steps — plus one when the crash landed on the flush
    // *inside* the failing step, after its own append was buffered.
    prop_assert!(
        survived <= attempted + 1,
        "survivors {survived} vs attempted {attempted}"
    );

    let mut reference = Router::builder().shards(4).retention(policy).build();
    let (submits, feeds) = apply_prefix(&mut reference, txs, steps, survived);
    // Survivors are a *prefix* of the journal, so the per-kind counts
    // must land exactly.
    prop_assert_eq!(submits, survived_submits);
    prop_assert_eq!(feeds, survived_feeds);
    prop_assert_eq!(recovered.assignments(), reference.assignments());
    prop_assert_eq!(recovered.telemetry(), reference.telemetry());

    assert_identical_continuation(&mut recovered, &mut reference, txs, steps, survived);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill -9 at an arbitrary operation boundary, in-memory backend:
    /// recovery is bit-identical under every retention policy and
    /// every tail-damage mode.
    #[test]
    fn crash_recovery_is_bit_identical(
        seed in 0u64..1_000,
        after_ops in 1u64..260,
        policy_sel in 0u8..3,
        damage_sel in 0u8..3,
        survive in 0usize..8,
        keep_bytes in 0usize..24,
        full_every in 1u64..6,
    ) {
        let policy = policy_for(policy_sel);
        let txs = build_stream(300, 30, seed);
        let steps = event_schedule(&txs, 4, 50, seed);
        let shared = SharedStorage::new(FailpointStorage::new(
            MemStorage::new(),
            after_ops,
            survive,
            damage_for(damage_sel, keep_bytes),
        ));
        let mut router = Router::builder()
            .shards(4)
            .retention(policy)
            .checkpoint_every(32)
            .flush_every(8)
            .full_every(full_every)
            .storage(Box::new(shared.clone()))
            .build();
        let attempted = drive_until_crash(&mut router, &txs, &steps);
        prop_assert!(attempted < steps.len(), "the failpoint must fire");
        prop_assert!(shared.with(|fp| fp.crashed()));
        drop(router);

        // The "new process": same surviving bytes, failpoint disarmed.
        shared.with(|fp| fp.disarm());
        check_crash_recovery(Box::new(shared.clone()), policy, &txs, &steps, attempted)?;
    }

    /// The same sweep through a real on-disk `SegmentWal` with small
    /// segments, so rotation and GC happen around the crash; recovery
    /// reopens the directory like a restarted process.
    #[test]
    fn segment_wal_crash_recovery_on_disk(
        seed in 0u64..1_000,
        after_ops in 1u64..260,
        policy_sel in 0u8..3,
        damage_sel in 0u8..3,
        survive in 0usize..8,
        full_every in 1u64..6,
    ) {
        let policy = policy_for(policy_sel);
        let txs = build_stream(300, 30, seed);
        let steps = event_schedule(&txs, 4, 50, seed);
        let dir = std::env::temp_dir().join(format!(
            "optchain-wal-golden-{seed}-{after_ops}-{policy_sel}-{damage_sel}-{survive}-{full_every}"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = SegmentWal::open_with(&dir, 4_096).expect("open wal dir");
        let failpoint = FailpointStorage::new(
            wal,
            after_ops,
            survive,
            damage_for(damage_sel, 7),
        );
        let mut router = Router::builder()
            .shards(4)
            .retention(policy)
            .checkpoint_every(32)
            .flush_every(8)
            .full_every(full_every)
            .storage(Box::new(failpoint))
            .build();
        let attempted = drive_until_crash(&mut router, &txs, &steps);
        prop_assert!(attempted < steps.len(), "the failpoint must fire");
        drop(router);

        // A restarted process reopens the directory from scratch.
        let reopened = SegmentWal::open_with(&dir, 4_096).expect("reopen wal dir");
        let outcome =
            check_crash_recovery(Box::new(reopened), policy, &txs, &steps, attempted);
        let _ = std::fs::remove_dir_all(&dir);
        outcome?;
    }

    /// Clean-shutdown sweep: recovering through a base + delta chain
    /// (`full_every > 1`) is bit-identical to recovering through full
    /// snapshots only (`full_every = 1`) over the same stream, under
    /// every retention policy — same history *and* the same full score
    /// breakdown on a shared continuation.
    #[test]
    fn delta_chain_recovery_matches_full_snapshot_recovery(
        seed in 0u64..1_000,
        policy_sel in 0u8..3,
        full_every in 2u64..6,
        checkpoint_every in 16u64..48,
    ) {
        let policy = policy_for(policy_sel);
        let txs = build_stream(360, 30, seed);
        let steps = event_schedule(&txs[..300], 4, 50, seed);
        let mut backends = Vec::new();
        for fe in [1u64, full_every] {
            let shared = SharedStorage::new(MemStorage::new());
            let mut router = Router::builder()
                .shards(4)
                .retention(policy)
                .checkpoint_every(checkpoint_every)
                .flush_every(8)
                .full_every(fe)
                .storage(Box::new(shared.clone()))
                .build();
            for step in &steps {
                match step {
                    Step::Submit(idx) => {
                        router.submit_tx(&txs[*idx]);
                    }
                    Step::Feed(telemetry) => router.feed_telemetry(telemetry),
                }
            }
            router.flush_journal().unwrap();
            let stats = router.checkpoint_stats();
            if fe == 1 {
                prop_assert_eq!(stats.delta_checkpoints, 0);
            } else {
                // ~306 records at a <=48 cadence: deltas must have
                // been written, or the sweep is vacuous.
                prop_assert!(stats.delta_checkpoints > 0);
            }
            drop(router);
            backends.push(shared);
        }
        let mut full = Router::recover(Box::new(backends[0].clone()))
            .expect("full-snapshot recovery");
        let mut delta = Router::recover(Box::new(backends[1].clone()))
            .expect("delta-chain recovery");
        prop_assert_eq!(full.assignments(), delta.assignments());
        prop_assert_eq!(full.telemetry(), delta.telemetry());
        prop_assert_eq!(full.telemetry_version(), delta.telemetry_version());
        for tx in &txs[300..] {
            let a = {
                let buf = delta.submit_tx_with_detail(tx);
                (buf.shard(), buf.t2s().to_vec(), buf.fitness().to_vec())
            };
            let buf = full.submit_tx_with_detail(tx);
            let b = (buf.shard(), buf.t2s().to_vec(), buf.fitness().to_vec());
            prop_assert_eq!(a, b, "continuation diverged after recovery");
        }
    }
}

/// Crash-matrix arm for the delta chain itself: damaging an
/// *intermediate* delta-checkpoint file (torn write, flipped byte,
/// or a well-formed delta pointing at the wrong predecessor) must
/// surface as a typed `InvalidData` error — never a silently wrong
/// router. The WAL records a delta absorbed are already GC'd, so
/// there is no correct state to fall back to.
#[test]
fn damaged_intermediate_delta_fails_typed_never_wrong() {
    let dir = std::env::temp_dir().join(format!(
        "optchain-wal-golden-delta-damage-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let txs = build_stream(300, 30, 3);
    {
        let wal = SegmentWal::open_with(&dir, 4_096).expect("open wal dir");
        let mut router = Router::builder()
            .shards(4)
            .retention(RetentionPolicy::WindowTxs(64))
            .checkpoint_every(32)
            .flush_every(8)
            .full_every(64) // never compact: keep every delta file alive
            .storage(Box::new(wal))
            .build();
        for tx in &txs {
            router.submit_tx(tx);
        }
        router.flush_journal().unwrap();
        let stats = router.checkpoint_stats();
        assert_eq!(stats.full_checkpoints, 1, "one base snapshot");
        assert!(
            stats.delta_checkpoints >= 2,
            "need an intermediate delta to damage, got {}",
            stats.delta_checkpoints
        );
    }

    // Sanity: the undamaged chain recovers to the reference state.
    {
        let wal = SegmentWal::open_with(&dir, 4_096).expect("reopen wal dir");
        let recovered = Router::recover(Box::new(wal)).expect("clean chain recovers");
        let mut reference = Router::builder()
            .shards(4)
            .retention(RetentionPolicy::WindowTxs(64))
            .build();
        for tx in &txs {
            reference.submit_tx(tx);
        }
        assert_eq!(recovered.assignments(), reference.assignments());
    }

    let intermediate = dir.join("ckpt-delta-000000.bin");
    let good = std::fs::read(&intermediate).expect("first delta file exists");

    // Torn write: the file ends mid-frame.
    std::fs::write(&intermediate, &good[..good.len() / 2]).unwrap();
    let err = SegmentWal::open_with(&dir, 4_096).expect_err("torn delta must fail open");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // Bit rot: one flipped byte breaks the frame CRC.
    let mut rotted = good.clone();
    let mid = rotted.len() / 2;
    rotted[mid] ^= 0xFF;
    std::fs::write(&intermediate, &rotted).unwrap();
    let err = SegmentWal::open_with(&dir, 4_096).expect_err("corrupt delta must fail open");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // A structurally valid delta whose recorded predecessor does not
    // match the chain position: the file-level open succeeds, but
    // recovery must reject the discontinuity rather than replay the
    // delta's records at the wrong sequence positions.
    let payload_len = u32::from_le_bytes(good[0..4].try_into().unwrap()) as usize;
    let payload = &good[8..8 + payload_len];
    let upto = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let blob = &payload[8..];
    assert_eq!(blob[0], 3, "delta envelope version");
    let mut body = optchain_storage::zrle::decompress(&blob[1..]).expect("zrle body");
    body[..8].copy_from_slice(&(upto - 1).to_le_bytes());
    let mut forged_blob = vec![3u8];
    optchain_storage::zrle::compress_into(&body, &mut forged_blob);
    let mut forged_payload = Vec::with_capacity(8 + forged_blob.len());
    forged_payload.extend_from_slice(&upto.to_le_bytes());
    forged_payload.extend_from_slice(&forged_blob);
    let mut forged = Vec::new();
    optchain_storage::frame_into(&mut forged, &forged_payload);
    std::fs::write(&intermediate, &forged).unwrap();
    let wal = SegmentWal::open_with(&dir, 4_096).expect("forged delta is structurally valid");
    let err = Router::recover(Box::new(wal)).expect_err("discontinuity must fail recovery");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // Restoring the original bytes restores the chain end to end.
    std::fs::write(&intermediate, &good).unwrap();
    let wal = SegmentWal::open_with(&dir, 4_096).expect("restored chain reopens");
    Router::recover(Box::new(wal)).expect("restored chain recovers");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scale soak for the CI `wal-soak` job: a 100k-tx stream killed at
/// three pseudo-random operation points with varying tail damage,
/// recovered after each kill, with the forgotten suffix resubmitted —
/// every resubmitted decision must match the original ack, and the
/// final state must be bit-identical (assignments plus the full score
/// breakdown on a continuation) to an uninterrupted in-RAM run.
/// `OPTCHAIN_SOAK_SEED` varies the stream and the crash plan.
#[test]
#[ignore = "scale soak (~100k txs, 3 kill points); run with --ignored in the wal-soak CI job"]
fn wal_soak_three_crashes_end_bit_identical() {
    use optchain_tan::hash::splitmix64;
    let seed: u64 = std::env::var("OPTCHAIN_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let len = 100_000usize;
    let tail = 200usize;
    let window = 10_000usize;
    let txs = build_stream(len + tail, 60, seed);

    let shared = SharedStorage::new(FailpointStorage::new(
        MemStorage::new(),
        u64::MAX,
        0,
        TailDamage::None,
    ));
    let mut router = Router::builder()
        .shards(8)
        .retention(RetentionPolicy::WindowTxs(window))
        .checkpoint_every(5_000)
        .flush_every(512)
        .storage(Box::new(shared.clone()))
        .build();

    // Shard acked for each stream index the first time it is accepted;
    // a resubmission after a crash replays from a bit-identical state,
    // so it must re-derive exactly the shard that was acked before.
    let mut acked: Vec<u32> = Vec::with_capacity(len);
    let mut next_tx = 0usize;
    let mut crashes = 0u32;
    while next_tx < len {
        if crashes < 3 {
            // Three kill points spread over the stream: 5k–30k mutating
            // ops apart, with rotating tail damage. Ops track records
            // closely (one append per tx plus sparse flush/checkpoint
            // ops), so 3 × 30k max stays inside the 100k stream.
            let gap = 5_000 + splitmix64(seed ^ (0xFA11 + crashes as u64)) % 25_000;
            let survive = (splitmix64(seed ^ (0x5117 + crashes as u64)) % 6) as usize;
            let damage = damage_for((crashes % 3) as u8, 11);
            shared.with(|fp| fp.arm(gap, survive, damage));
        }
        loop {
            if next_tx >= len {
                break;
            }
            match router.try_submit_tx(&txs[next_tx]) {
                Ok(shard) => {
                    if next_tx < acked.len() {
                        assert_eq!(
                            shard.0, acked[next_tx],
                            "resubmission after crash {crashes} diverged at tx {next_tx}"
                        );
                    } else {
                        acked.push(shard.0);
                    }
                    next_tx += 1;
                }
                Err(_) => break,
            }
        }
        if next_tx >= len {
            break;
        }
        assert!(
            shared.with(|fp| fp.crashed()),
            "submission failed without the failpoint firing"
        );
        crashes += 1;
        drop(router);
        shared.with(|fp| fp.disarm());
        router = Router::recover(Box::new(shared.clone())).expect("recovery after soak crash");
        let survived = router.assignments().len();
        assert!(
            survived <= next_tx + 1,
            "crash {crashes}: survivors {survived} exceed acked {next_tx} + 1"
        );
        // Resubmit the forgotten suffix from the surviving prefix.
        next_tx = survived;
    }
    assert_eq!(crashes, 3, "the crash plan must fire all three kills");

    let mut reference = Router::builder()
        .shards(8)
        .retention(RetentionPolicy::WindowTxs(window))
        .build();
    for tx in &txs[..len] {
        reference.submit_tx(tx);
    }
    assert_eq!(router.assignments(), reference.assignments());
    // Bit-identical state keeps making bit-identical decisions: the
    // continuation tail must match the full score breakdown.
    for tx in &txs[len..] {
        let a = {
            let buf = router.submit_tx_with_detail(tx);
            (buf.shard(), buf.t2s().to_vec(), buf.fitness().to_vec())
        };
        let buf = reference.submit_tx_with_detail(tx);
        let b = (buf.shard(), buf.t2s().to_vec(), buf.fitness().to_vec());
        assert_eq!(a, b, "post-soak continuation diverged at {:?}", tx.id());
    }
}

/// A durable 1-worker fleet shut down mid-window (pending delta
/// unpublished) restarts from its journal bit-identical to a `Router`
/// over the same stream.
#[test]
fn one_worker_fleet_recovers_and_continues_like_a_router() {
    let txs = build_stream(500, 30, 7);
    let mut router = Router::builder().shards(4).build();
    let router_shards: Vec<u32> = txs.iter().map(|tx| router.submit_tx(tx).0).collect();

    let shared = SharedStorage::new(MemStorage::new());
    let fleet = RouterFleet::builder()
        .shards(4)
        .workers(1)
        .sync_interval(64)
        .storage(vec![Box::new(shared.clone())])
        .build();
    let handle = fleet.handle(0);
    // 300 is off the sync cadence, so the tail past the last sync mark
    // is exactly the pending delta recovery must rebuild.
    let first: Vec<u32> = txs[..300].iter().map(|tx| handle.submit_tx(tx).0).collect();
    assert_eq!(first, router_shards[..300]);
    drop(fleet);

    let fleet = RouterFleet::builder()
        .shards(4)
        .workers(1)
        .sync_interval(64)
        .storage(vec![Box::new(shared.clone())])
        .build();
    let stats = fleet.stats();
    assert_eq!(stats.placed, 300, "recovery must restore the placed count");
    assert_eq!(fleet.submitted(), 300);
    let handle = fleet.handle(0);
    let rest: Vec<u32> = txs[300..].iter().map(|tx| handle.submit_tx(tx).0).collect();
    assert_eq!(rest, router_shards[300..]);
    assert_eq!(fleet.submitted(), 500);
}

/// A durable 2-worker fleet synced and shut down cleanly restarts with
/// every per-worker counter intact and keeps placing.
#[test]
fn two_worker_fleet_restarts_with_counters_intact() {
    let txs = build_stream(400, 30, 11);
    let storages = [
        SharedStorage::new(MemStorage::new()),
        SharedStorage::new(MemStorage::new()),
    ];
    let fleet = RouterFleet::builder()
        .shards(4)
        .workers(2)
        .sync_interval(50)
        .storage(vec![
            Box::new(storages[0].clone()),
            Box::new(storages[1].clone()),
        ])
        .build();
    for (i, tx) in txs.iter().enumerate() {
        fleet.handle(i as u64).submit_tx(tx);
    }
    fleet.sync_now();
    fleet.flush();
    let before = fleet.stats();
    drop(fleet);

    let fleet = RouterFleet::builder()
        .shards(4)
        .workers(2)
        .sync_interval(50)
        .storage(vec![
            Box::new(storages[0].clone()),
            Box::new(storages[1].clone()),
        ])
        .build();
    let after = fleet.stats();
    assert_eq!(after.placed, before.placed);
    assert_eq!(after.adopted, before.adopted);
    assert_eq!(after.telemetry_versions, before.telemetry_versions);
    assert_eq!(fleet.submitted(), before.placed);
    // And the restarted fleet keeps placing across both workers.
    for i in 0..100u64 {
        let inputs = if i == 0 {
            vec![]
        } else {
            vec![TxId(10_000 + i - 1)]
        };
        let shard = fleet.handle(i).submit(TxId(10_000 + i), &inputs);
        assert!(shard.0 < 4);
    }
    assert_eq!(fleet.stats().placed, before.placed + 100);
}
