//! Golden equivalence for the `Router` surface: the owned, session-based
//! API must produce **bit-identical** assignments and scores to the
//! borrow-style `place_into` path and to `replay`, across random
//! workloads, shard counts, damping factors, L2S modes, T2S windows, and
//! every built-in strategy. Sessions and snapshots must never change a
//! decision — only memo accounting.

use proptest::prelude::{any, prop_assert_eq, proptest, ProptestConfig, Strategy as PropStrategy};

use optchain_core::replay::{replay, replay_router, QueueProxy};
use optchain_core::{
    DecisionBuf, GreedyPlacer, L2sEstimator, L2sMode, OptChainPlacer, OraclePlacer,
    PlacementContext, Placer, RandomPlacer, Router, RouterSnapshot, Strategy, T2sEngine, T2sPlacer,
    TemporalFitness,
};
use optchain_tan::TanGraph;
use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};

/// Random-but-valid transaction stream recipe: per tx, offsets of the
/// outputs it spends (all single-output txs for simplicity) — the same
/// generator `golden_place.rs` uses for the placer-level goldens.
fn stream_strategy() -> impl PropStrategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(1u8..30, 0..4), 1..250)
}

fn build_stream(recipe: &[Vec<u8>]) -> Vec<Transaction> {
    let mut spent = vec![false; recipe.len()];
    let mut txs = Vec::with_capacity(recipe.len());
    for (i, offsets) in recipe.iter().enumerate() {
        let mut builder = Transaction::builder(TxId(i as u64));
        let mut used = Vec::new();
        for off in offsets {
            let Some(p) = i.checked_sub(*off as usize) else {
                continue;
            };
            if !spent[p] && !used.contains(&p) {
                used.push(p);
            }
        }
        for &p in &used {
            spent[p] = true;
            builder = builder.input(TxId(p as u64).outpoint(0));
        }
        txs.push(builder.output(TxOutput::new(1, WalletId(0))).build());
    }
    txs
}

/// A deterministic "Metis-like" oracle covering the whole stream (the
/// real partitioner lives in `optchain-partition`, which this crate must
/// not depend on; any fixed assignment exercises the same code path).
fn synthetic_oracle(n: usize, k: u32) -> Vec<u32> {
    (0..n).map(|i| (i as u32).wrapping_mul(7) % k).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `replay_router` is bit-identical to `replay` over the equivalent
    /// concrete placer, for every built-in strategy.
    #[test]
    fn router_replay_matches_placer_replay(
        recipe in stream_strategy(),
        k in 1u32..17,
    ) {
        let txs = build_stream(&recipe);
        let n = txs.len() as u64;
        let oracle = synthetic_oracle(txs.len(), k);
        for strategy in [
            Strategy::OptChain,
            Strategy::T2s,
            Strategy::OmniLedger,
            Strategy::Greedy,
            Strategy::Metis,
        ] {
            let mut builder = Router::builder()
                .shards(k)
                .strategy(strategy)
                .expected_total(n);
            if strategy == Strategy::Metis {
                builder = builder.oracle(oracle.clone());
            }
            let via_router = replay_router(&txs, &mut builder.build());
            let via_placer = match strategy {
                Strategy::OptChain => replay(&txs, &mut OptChainPlacer::new(k)),
                Strategy::T2s => replay(
                    &txs,
                    &mut T2sPlacer::with_engine(T2sEngine::new(k), 0.1, Some(n)),
                ),
                Strategy::OmniLedger => replay(&txs, &mut RandomPlacer::new(k)),
                Strategy::Greedy => {
                    replay(&txs, &mut GreedyPlacer::with_epsilon(k, 0.1, Some(n)))
                }
                Strategy::Metis => replay(&txs, &mut OraclePlacer::new(k, oracle.clone())),
            };
            prop_assert_eq!(via_router.strategy, via_placer.strategy);
            prop_assert_eq!(&via_router.assignments, &via_placer.assignments);
            prop_assert_eq!(via_router.cross, via_placer.cross);
            prop_assert_eq!(via_router.shard_sizes, via_placer.shard_sizes);
        }
    }

    /// `Router::submit` under a live telemetry feed is bit-identical —
    /// per-shard scores included — to `place_into` over an external
    /// graph, across α, L2S modes, and T2S windows.
    #[test]
    fn router_submit_matches_place_into_bitwise(
        recipe in stream_strategy(),
        k in 1u32..9,
        alpha_pct in 5u32..100,
        mode_paper in any::<bool>(),
        windowed in any::<bool>(),
    ) {
        let alpha = alpha_pct as f64 / 100.0;
        let mode = if mode_paper {
            L2sMode::PaperSelfConvolution
        } else {
            L2sMode::VerifyPlusCommit
        };
        let txs = build_stream(&recipe);
        let window = 64usize;
        let mut builder = Router::builder()
            .shards(k)
            .alpha(alpha)
            .l2s_mode(mode);
        if windowed {
            builder = builder.window(window);
        }
        let mut router = builder.build();
        let engine = if windowed {
            T2sEngine::with_window(k, alpha, window)
        } else {
            T2sEngine::with_alpha(k, alpha)
        };
        let mut placer = OptChainPlacer::from_parts(
            engine,
            L2sEstimator::with_mode(mode),
            TemporalFitness::paper(),
        );
        let mut tan = TanGraph::new();
        let mut buf = DecisionBuf::new();
        let mut proxy = QueueProxy::new(k);
        for tx in &txs {
            let node = tan.insert_tx(tx);
            let (telemetry, epoch) = {
                let (t, e) = proxy.telemetry();
                (t.to_vec(), e)
            };
            let ctx = PlacementContext::with_epoch(&tan, &telemetry, epoch);
            let expected = placer.place_into(&ctx, node, &mut buf);

            router.feed_telemetry(&telemetry);
            let got = router.submit_tx_with_detail(tx);
            prop_assert_eq!(got.shard(), expected);
            for j in 0..k as usize {
                prop_assert_eq!(got.t2s()[j].to_bits(), buf.t2s()[j].to_bits());
                prop_assert_eq!(got.l2s()[j].to_bits(), buf.l2s()[j].to_bits());
                prop_assert_eq!(got.fitness()[j].to_bits(), buf.fitness()[j].to_bits());
            }
            prop_assert_eq!(got.input_shards(), buf.input_shards());
            proxy.on_place(expected.0);
        }
        prop_assert_eq!(router.assignments(), placer.assignments());
    }

    /// The batch path is the submit path: one `submit_batch` call equals
    /// the same stream submitted one transaction at a time.
    #[test]
    fn submit_batch_matches_submit(
        recipe in stream_strategy(),
        k in 1u32..9,
    ) {
        let txs = build_stream(&recipe);
        let mut one_by_one = Router::builder().shards(k).build();
        let singles: Vec<u32> = txs.iter().map(|tx| one_by_one.submit_tx(tx).0).collect();
        let mut batched = Router::builder().shards(k).build();
        let mut out = Vec::new();
        batched.submit_batch(&txs, &mut out);
        let batch: Vec<u32> = out.iter().map(|s| s.0).collect();
        prop_assert_eq!(singles, batch);
        prop_assert_eq!(one_by_one.assignments(), batched.assignments());
    }

    /// Sessions only change memo accounting, never decisions: a stream
    /// split across interleaved client sessions (each with its own view
    /// of the same telemetry) places exactly like session-less submits.
    #[test]
    fn sessions_do_not_change_decisions(
        recipe in stream_strategy(),
        k in 1u32..9,
        clients in 1usize..5,
    ) {
        let txs = build_stream(&recipe);
        let mut plain = Router::builder().shards(k).build();
        let mut with_sessions = Router::builder().shards(k).build();
        let mut sessions: Vec<_> = (0..clients).map(|_| with_sessions.session()).collect();
        let view = with_sessions.telemetry().to_vec();
        for (i, tx) in txs.iter().enumerate() {
            let a = plain.submit_tx(tx);
            let session = &mut sessions[i % clients];
            if session.view_version() != Some(0) {
                session.set_view(&view, 0);
            }
            let b = with_sessions.submit_tx_in(session, tx);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(plain.assignments(), with_sessions.assignments());
    }

    /// Checkpoint/restore is invisible to the suffix: placing through a
    /// snapshot + `warm_start` continues exactly like the uninterrupted
    /// router, for every strategy that supports warm starts.
    #[test]
    fn snapshot_warm_start_is_transparent(
        recipe in stream_strategy(),
        k in 1u32..9,
        cut_pct in 0u32..100,
    ) {
        let txs = build_stream(&recipe);
        let n = txs.len() as u64;
        let cut = txs.len() * cut_pct as usize / 100;
        let oracle = synthetic_oracle(txs.len(), k);
        for strategy in [
            Strategy::OptChain,
            Strategy::T2s,
            Strategy::OmniLedger,
            Strategy::Greedy,
            Strategy::Metis,
        ] {
            let build = || {
                let mut b = Router::builder()
                    .shards(k)
                    .strategy(strategy)
                    .expected_total(n);
                if strategy == Strategy::Metis {
                    b = b.oracle(oracle.clone());
                }
                b.build()
            };
            let mut continuous = build();
            for tx in &txs {
                continuous.submit_tx(tx);
            }
            let mut first_half = build();
            for tx in &txs[..cut] {
                first_half.submit_tx(tx);
            }
            let mut resumed = build();
            resumed.warm_start(&first_half.snapshot());
            for tx in &txs[cut..] {
                resumed.submit_tx(tx);
            }
            prop_assert_eq!(
                continuous.assignments(),
                resumed.assignments(),
                "strategy {:?} cut {}",
                strategy,
                cut
            );
        }
    }
}

/// Hand-built non-proptest case pinning `RouterSnapshot::new` for
/// externally produced prefixes (the Table II path).
#[test]
fn external_snapshot_warm_start_matches_placer_warm_start() {
    let recipe: Vec<Vec<u8>> = (0..120)
        .map(|i| {
            if i % 3 == 0 {
                vec![]
            } else {
                vec![1, (i % 7 + 1) as u8]
            }
        })
        .collect();
    let txs = build_stream(&recipe);
    let (prefix, delta) = txs.split_at(80);
    let k = 4u32;
    let prefix_tan = TanGraph::from_transactions(prefix.iter());
    let warm = synthetic_oracle(prefix.len(), k);

    // Old path: concrete placer warm_start + replay_into.
    let mut tan = TanGraph::from_transactions(prefix.iter());
    let mut placer = OptChainPlacer::new(k);
    placer.warm_start(&tan, &warm);
    let old = optchain_core::replay::replay_into(delta, &mut placer, &mut tan);

    // New path: router warm_start from an external snapshot.
    let mut router = Router::builder().shards(k).build();
    router.warm_start(&RouterSnapshot::new(prefix_tan, warm));
    let new = replay_router(delta, &mut router);

    assert_eq!(old.assignments, new.assignments);
    assert_eq!(old.cross, new.cross);
    assert_eq!(old.shard_sizes, new.shard_sizes);
}
