//! Snapshot round-trip property: `snapshot` → `warm_start` → continued
//! stream is **bit-identical** to the uninterrupted stream — for a
//! single [`Router`] driven through per-client [`PlacementSession`]s
//! under a changing telemetry feed (session L2S memo state included:
//! the restored board version keeps the memo epochs aligned), and for a
//! [`RouterFleet`] driving the detached bulk path.

use proptest::prelude::{prop_assert_eq, proptest, ProptestConfig, Strategy as PropStrategy};

use optchain_core::{PlacementSession, Router, RouterFleet, ShardTelemetry};
use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};

/// Random-but-valid transaction stream recipe (the `router_golden.rs`
/// generator): per tx, offsets of the single-output transactions it
/// spends.
fn stream_strategy() -> impl PropStrategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(1u8..30, 0..4), 1..200)
}

fn build_stream(recipe: &[Vec<u8>]) -> Vec<Transaction> {
    let mut spent = vec![false; recipe.len()];
    let mut txs = Vec::with_capacity(recipe.len());
    for (i, offsets) in recipe.iter().enumerate() {
        let mut builder = Transaction::builder(TxId(i as u64));
        let mut used = Vec::new();
        for off in offsets {
            let Some(p) = i.checked_sub(*off as usize) else {
                continue;
            };
            if !spent[p] && !used.contains(&p) {
                used.push(p);
            }
        }
        for &p in &used {
            spent[p] = true;
            builder = builder.input(TxId(p as u64).outpoint(0));
        }
        txs.push(builder.output(TxOutput::new(1, WalletId(0))).build());
    }
    txs
}

/// Telemetry for epoch `e`: a rolling hotspot, always distinct from the
/// previous epoch's values.
fn telemetry_at(e: u64, k: u32) -> Vec<ShardTelemetry> {
    (0..k)
        .map(|j| {
            if u64::from(j) == e % u64::from(k) {
                ShardTelemetry::new(0.1, 1.0 + e as f64)
            } else {
                ShardTelemetry::new(0.1, 0.5)
            }
        })
        .collect()
}

/// Drives `txs[offset..][..]` into `router` through round-robin client
/// sessions, feeding fresh telemetry every 13 transactions and
/// refreshing each session's view lazily (the simulator's discipline).
/// Returns the chosen shards.
fn drive_sessions(
    router: &mut Router,
    sessions: &mut [PlacementSession],
    txs: &[Transaction],
    offset: usize,
    k: u32,
) -> Vec<u32> {
    txs.iter()
        .enumerate()
        .map(|(i, tx)| {
            let at = offset + i;
            if at.is_multiple_of(13) {
                router.feed_telemetry(&telemetry_at(at as u64 / 13, k));
            }
            let session = &mut sessions[at % sessions.len()];
            if session.view_version() != Some(router.telemetry_version()) {
                let view = router.telemetry().to_vec();
                session.set_view(&view, router.telemetry_version());
            }
            router.submit_tx_in(session, tx).0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Router: the continued stream and the session memo accounting are
    /// bit-identical across a checkpoint. Sessions are owned by the
    /// clients, so the *same* session objects (memo state and all) keep
    /// serving the restored router — the restored telemetry board and
    /// version are what keep their memo epochs truthful.
    #[test]
    fn router_roundtrip_preserves_stream_and_session_memos(
        recipe in stream_strategy(),
        k in 1u32..9,
        clients in 1usize..4,
        cut_pct in 0u32..100,
    ) {
        let txs = build_stream(&recipe);
        let cut = txs.len() * cut_pct as usize / 100;

        let mut continuous = Router::builder().shards(k).build();
        let mut continuous_sessions: Vec<_> =
            (0..clients).map(|_| continuous.session()).collect();
        let expected = drive_sessions(&mut continuous, &mut continuous_sessions, &txs, 0, k);

        let mut prefix_router = Router::builder().shards(k).build();
        let mut sessions: Vec<_> = (0..clients).map(|_| prefix_router.session()).collect();
        let mut got = drive_sessions(&mut prefix_router, &mut sessions, &txs[..cut], 0, k);
        let snapshot = prefix_router.snapshot();
        drop(prefix_router);

        let mut resumed = Router::builder().shards(k).build();
        resumed.warm_start(&snapshot);
        got.extend(drive_sessions(&mut resumed, &mut sessions, &txs[cut..], cut, k));

        prop_assert_eq!(expected, got, "cut {}", cut);
        prop_assert_eq!(resumed.assignments(), continuous.assignments());
        for (a, b) in continuous_sessions.iter().zip(&sessions) {
            prop_assert_eq!(a.l2s_memo_stats(), b.l2s_memo_stats());
        }
    }

    /// Fleet: the detached bulk path round-trips through
    /// `snapshot`/`warm_start` bit-identically, resuming the global
    /// sequence numbering and the sync schedule mid-interval.
    #[test]
    fn fleet_roundtrip_preserves_detached_stream(
        recipe in stream_strategy(),
        k in 1u32..9,
        cut_pct in 0u32..100,
    ) {
        let txs: std::sync::Arc<[Transaction]> = build_stream(&recipe).into();
        let cut = txs.len() * cut_pct as usize / 100;
        let workers = 2usize;
        let build = || {
            RouterFleet::builder()
                .shards(k)
                .workers(workers)
                .partitioner(|client| client as usize)
                .sync_interval(8)
                .build()
        };
        // Chunks of 5 round-robin across two client handles; chunk
        // boundaries are *global* stream positions so the prefix and
        // suffix runs partition transactions exactly like the
        // uninterrupted run.
        let drive = |fleet: &RouterFleet, range: std::ops::Range<usize>| {
            let handles: Vec<_> = (0..workers as u64).map(|c| fleet.handle(c)).collect();
            if !range.is_empty() {
                for chunk in (range.start / 5)..=((range.end - 1) / 5) {
                    let lo = (chunk * 5).max(range.start);
                    let hi = (chunk * 5 + 5).min(range.end);
                    let _ = handles[chunk % workers].submit_batch_detached(&txs, lo..hi);
                }
            }
            let mut results: Vec<(u64, u32)> = handles
                .iter()
                .flat_map(|h| h.drain())
                .map(|(seq, s)| (seq, s.0))
                .collect();
            results.sort_by_key(|(seq, _)| *seq);
            results
        };

        let continuous = build();
        let expected = drive(&continuous, 0..txs.len());

        let prefix_fleet = build();
        let mut got = drive(&prefix_fleet, 0..cut);
        let snapshot = prefix_fleet.snapshot();
        drop(prefix_fleet);

        let mut resumed = build();
        resumed.warm_start(&snapshot);
        prop_assert_eq!(resumed.submitted(), cut as u64);
        got.extend(drive(&resumed, cut..txs.len()));

        prop_assert_eq!(expected, got, "cut {}", cut);
    }
}
