//! Golden properties of the `RetentionPolicy` lifecycle:
//!
//! 1. `WindowTxs(n)` with `n >=` the stream length never evicts, so it
//!    is **bit-identical** to `Unbounded` — assignments *and* the full
//!    score breakdown (proptest).
//! 2. For a stream whose every parent sits within the window (the
//!    `build_stream` recipe bounds parent offsets), a windowed router
//!    is bit-identical to unbounded over the *whole* stream even while
//!    it evicts almost everything — edge resolution and score rows are
//!    the only coupling, and both are window-exact by construction.
//! 3. Compaction round trip: evict → `compact` → `snapshot` →
//!    `warm_start` continues bit-identically to the uninterrupted
//!    windowed run (the v2 engine-state snapshot).
//! 4. A 1-worker `RouterFleet` under a retention policy (including the
//!    pruned-delta `KeepUnspentAndHubs` path) stays bit-identical to a
//!    `Router` under the same policy.
//! 5. `KeepUnspentAndHubs` keeps aged hubs and unspent outputs
//!    resolvable across the `HUB_WINDOW`, while spent non-hubs degrade
//!    to missing references.
//! 6. The `AssignmentStore` windows in lockstep with the graph
//!    (windowed reads ≡ unbounded on live ids, `None` past the
//!    horizon), the v3 snapshot round-trips the windowed store
//!    bit-exactly, and a legacy **v2** full-history snapshot restores
//!    through the read-compat path to the same continuation.
//! 7. A retention-aware `SpvWallet` holds O(window) state over
//!    arbitrarily long streams (proptest).

use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

use optchain_core::{RetentionPolicy, Router, RouterFleet, SpvWallet, Strategy};
use optchain_tan::NodeId;
use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};

/// Deterministic random-but-valid stream: per tx, offsets of the
/// single-output transactions it spends (never farther than
/// `max_offset` back, never double-spending).
fn build_stream(len: usize, max_offset: u8, seed: u64) -> Vec<Transaction> {
    use optchain_tan::hash::splitmix64;
    let mut spent = vec![false; len];
    let mut txs = Vec::with_capacity(len);
    for i in 0..len {
        let mut builder = Transaction::builder(TxId(i as u64));
        let mut used = Vec::new();
        let n_inputs = (splitmix64(seed ^ (i as u64)) % 4) as usize;
        for j in 0..n_inputs {
            let off = 1 + (splitmix64(seed ^ (i as u64) << 3 ^ j as u64) % max_offset as u64);
            let Some(p) = i.checked_sub(off as usize) else {
                continue;
            };
            if !spent[p] && !used.contains(&p) {
                used.push(p);
            }
        }
        for &p in &used {
            spent[p] = true;
            builder = builder.input(TxId(p as u64).outpoint(0));
        }
        txs.push(builder.output(TxOutput::new(1, WalletId(0))).build());
    }
    txs
}

/// Submits `txs` one by one, returning `(shard, t2s, l2s, fitness)` per
/// transaction — the full decision evidence.
fn drive_with_scores(router: &mut Router, txs: &[Transaction]) -> Vec<(u32, Vec<f64>, Vec<f64>)> {
    txs.iter()
        .map(|tx| {
            let buf = router.submit_tx_with_detail(tx);
            (buf.shard().0, buf.t2s().to_vec(), buf.fitness().to_vec())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite golden: `WindowTxs(n)` with `n >= stream length` is
    /// bit-identical to `Unbounded` — assignments and scores.
    #[test]
    fn oversized_window_is_bit_identical_to_unbounded(
        len in 1usize..300,
        extra in 0usize..100,
        seed in 0u64..1_000,
    ) {
        let txs = build_stream(len, 30, seed);
        let mut unbounded = Router::builder().shards(6).build();
        let mut windowed = Router::builder()
            .shards(6)
            .retention(RetentionPolicy::WindowTxs(len + extra))
            .build();
        let a = drive_with_scores(&mut unbounded, &txs);
        let b = drive_with_scores(&mut windowed, &txs);
        prop_assert_eq!(a, b);
        prop_assert_eq!(windowed.tan().evicted_nodes(), 0);
    }

    /// In-window ancestry: when every parent offset is below the
    /// window, the windowed run matches unbounded bit for bit over the
    /// whole stream — even though it evicts almost everything.
    #[test]
    fn in_window_ancestry_is_bit_identical_while_evicting(
        seed in 0u64..1_000,
    ) {
        let window = 64usize;
        let txs = build_stream(1_500, 30, seed); // offsets < 31 <= window
        let mut unbounded = Router::builder().shards(4).build();
        let mut windowed = Router::builder()
            .shards(4)
            .retention(RetentionPolicy::WindowTxs(window))
            .build();
        let a = drive_with_scores(&mut unbounded, &txs);
        let b = drive_with_scores(&mut windowed, &txs);
        prop_assert_eq!(a, b);
        prop_assert!(
            windowed.tan().evicted_nodes() > 1_000,
            "eviction must actually run: {} evicted",
            windowed.tan().evicted_nodes()
        );
        prop_assert!(windowed.tan().live_len() <= 2 * window);
    }

    /// Compaction round trip: evict → compact → snapshot → warm_start
    /// continues bit-identically to the live windowed run.
    #[test]
    fn compaction_snapshot_roundtrip_is_bit_exact(
        split in 200usize..700,
        seed in 0u64..1_000,
    ) {
        let window = 64usize;
        let txs = build_stream(1_000, 40, seed);
        let policy = RetentionPolicy::WindowTxs(window);
        let mut live = Router::builder().shards(4).retention(policy).build();
        drive_with_scores(&mut live, &txs[..split]);
        live.compact();
        let snapshot = live.snapshot();
        prop_assert_eq!(snapshot.format_version(), 3);
        prop_assert_eq!(snapshot.retention(), policy);

        let mut restored = Router::builder().shards(4).retention(policy).build();
        restored.warm_start(&snapshot);
        let a = drive_with_scores(&mut live, &txs[split..]);
        let b = drive_with_scores(&mut restored, &txs[split..]);
        prop_assert_eq!(a, b);
        prop_assert_eq!(live.assignments(), restored.assignments());
        prop_assert_eq!(
            live.tan().missing_parent_refs(),
            restored.tan().missing_parent_refs()
        );
    }

    /// T2S-only strategy under the lifecycle: the windowed T2s router
    /// round-trips through a v2 snapshot too.
    #[test]
    fn t2s_strategy_compaction_roundtrip(seed in 0u64..500) {
        let policy = RetentionPolicy::WindowTxs(48);
        let txs = build_stream(600, 20, seed);
        let mut live = Router::builder()
            .shards(3)
            .strategy(Strategy::T2s)
            .retention(policy)
            .build();
        for tx in &txs[..400] {
            live.submit_tx(tx);
        }
        live.compact();
        let snapshot = live.snapshot();
        let mut restored = Router::builder()
            .shards(3)
            .strategy(Strategy::T2s)
            .retention(policy)
            .build();
        restored.warm_start(&snapshot);
        for tx in &txs[400..] {
            let a = live.submit_tx(tx);
            let b = restored.submit_tx(tx);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(live.assignments(), restored.assignments());
    }

    /// AssignmentStore golden: the windowed store reads identically to
    /// the unbounded history on every live id and `None` past the
    /// horizon, in lockstep with the graph's own eviction.
    #[test]
    fn assignment_store_windows_in_lockstep_with_the_graph(
        seed in 0u64..1_000,
    ) {
        let window = 64usize;
        let txs = build_stream(1_000, 30, seed);
        let mut unbounded = Router::builder().shards(4).build();
        let mut windowed = Router::builder()
            .shards(4)
            .retention(RetentionPolicy::WindowTxs(window))
            .build();
        for tx in &txs {
            unbounded.submit_tx(tx);
            windowed.submit_tx(tx);
        }
        let full = unbounded.assignments();
        let view = windowed.assignments();
        prop_assert_eq!(view.len(), txs.len());
        prop_assert!(view.live_len() <= window);
        prop_assert_eq!(view.horizon(), txs.len() - window);
        for id in 0..txs.len() {
            let node = NodeId(id as u32);
            if windowed.tan().is_live(node) {
                prop_assert_eq!(view.get(node), full.get(node), "live id {}", id);
            } else {
                prop_assert_eq!(view.get(node), None, "evicted id {}", id);
            }
        }
    }

    /// v2 read-compat: a legacy full-history snapshot of a windowed
    /// router (reconstructed via `with_full_assignments`) restores
    /// through `warm_start`'s read-compat path and continues
    /// bit-identically to the uninterrupted windowed run.
    #[test]
    fn v2_full_history_snapshot_restores_bit_exactly(
        split in 300usize..700,
        seed in 0u64..1_000,
    ) {
        let window = 64usize;
        let policy = RetentionPolicy::WindowTxs(window);
        let txs = build_stream(1_000, 40, seed);
        let mut live = Router::builder().shards(4).retention(policy).build();
        // Record the full history externally, as a v2-era caller did.
        let full: Vec<u32> = txs[..split]
            .iter()
            .map(|tx| live.submit_tx(tx).0)
            .collect();
        prop_assert!(live.tan().evicted_nodes() > 0, "eviction must run");
        let v3 = live.snapshot();
        prop_assert_eq!(v3.format_version(), 3);
        let v2 = v3.clone().with_full_assignments(full);
        prop_assert_eq!(v2.format_version(), 2);

        let mut restored = Router::builder().shards(4).retention(policy).build();
        restored.warm_start(&v2);
        prop_assert_eq!(live.assignments(), restored.assignments());
        let a = drive_with_scores(&mut live, &txs[split..]);
        let b = drive_with_scores(&mut restored, &txs[split..]);
        prop_assert_eq!(a, b);
        prop_assert_eq!(live.assignments(), restored.assignments());
    }

    /// A retention-aware SPV wallet holds O(window) entries over
    /// arbitrarily long streams.
    #[test]
    fn spv_wallet_footprint_is_bounded(seed in 0u64..1_000) {
        let window = 64usize;
        let txs = build_stream(1_500, 20, seed);
        let telemetry = vec![optchain_core::ShardTelemetry::new(0.1, 0.5); 4];
        let mut wallet =
            SpvWallet::with_retention(4, RetentionPolicy::WindowTxs(window));
        let mut inputs: Vec<TxId> = Vec::new();
        let mut peak = 0usize;
        for tx in &txs {
            inputs.clear();
            inputs.extend(tx.inputs().iter().map(|op| op.txid));
            wallet.place(tx.id(), &inputs, &telemetry);
            peak = peak.max(wallet.len());
        }
        prop_assert!(peak <= window, "wallet peaked at {} entries", peak);
        prop_assert!(wallet.state_bytes() > 0);
    }

    /// A 1-worker fleet under a retention policy — including the
    /// pruned-delta KeepUnspentAndHubs sync path — stays bit-identical
    /// to a Router under the same policy.
    #[test]
    fn one_worker_fleet_matches_router_under_retention(
        seed in 0u64..500,
        hub_policy in 0u8..2,
    ) {
        let policy = if hub_policy == 1 {
            RetentionPolicy::KeepUnspentAndHubs { min_degree: 3 }
        } else {
            RetentionPolicy::WindowTxs(128)
        };
        let txs = build_stream(400, 30, seed);
        let mut router = Router::builder().shards(4).retention(policy).build();
        let router_shards: Vec<u32> =
            txs.iter().map(|tx| router.submit_tx(tx).0).collect();

        let fleet = RouterFleet::builder()
            .shards(4)
            .workers(1)
            .sync_interval(64)
            .retention(policy)
            .build();
        let handle = fleet.handle(0);
        let fleet_shards: Vec<u32> = txs.iter().map(|tx| handle.submit_tx(tx).0).collect();
        prop_assert_eq!(router_shards, fleet_shards);
    }
}

/// v2 read-compat for `KeepUnspentAndHubs`: the retained-survivor side
/// table rebuilt by `AssignmentStore::from_full` from the graph's
/// recorded retention decisions must match the live store exactly —
/// the restored router continues bit-identically and resolves the same
/// retained survivors.
#[test]
fn v2_keep_hubs_snapshot_rebuilds_the_survivor_table() {
    let policy = RetentionPolicy::KeepUnspentAndHubs { min_degree: 3 };
    // Long enough that the HUB_WINDOW ring wraps and real survivors
    // land in the side table.
    let len = RetentionPolicy::HUB_WINDOW + 2_000;
    let txs = build_stream(len, 40, 7);
    let mut live = Router::builder().shards(4).retention(policy).build();
    let full: Vec<u32> = txs.iter().map(|tx| live.submit_tx(tx).0).collect();
    assert!(live.tan().evicted_nodes() > 0, "aging must evict");
    assert!(
        live.tan().retained_nodes() > 0,
        "the stream must retain survivors"
    );

    let v3 = live.snapshot();
    assert_eq!(v3.format_version(), 3);
    let v2 = v3.clone().with_full_assignments(full);
    assert_eq!(v2.format_version(), 2);

    let mut restored = Router::builder().shards(4).retention(policy).build();
    restored.warm_start(&v2);
    // The rebuilt store is logically identical to the live one —
    // including every side-table survivor.
    assert_eq!(live.assignments(), restored.assignments());
    for (node, shard) in live.assignments().iter_live() {
        assert_eq!(restored.assignments().get(node), Some(shard), "{node}");
    }
    // And the continuation stays bit-exact — chained spends keep
    // exercising in-window parents as the horizon advances.
    for i in len as u64..len as u64 + 500 {
        let a = live.submit(TxId(i), &[TxId(i - 1)]);
        let b = restored.submit(TxId(i), &[TxId(i - 1)]);
        assert_eq!(a, b, "tx {i}");
    }
    assert_eq!(live.assignments(), restored.assignments());
}

#[test]
fn keep_unspent_and_hubs_survives_the_hub_window() {
    let min_degree = 3u32;
    let mut router = Router::builder()
        .shards(4)
        .retention(RetentionPolicy::KeepUnspentAndHubs { min_degree })
        .build();
    // TxId(0): a hub (spent `min_degree` times). TxId(1): spent once.
    // TxId(2): never spent.
    let hub_shard = router.submit(TxId(0), &[]);
    router.submit(TxId(1), &[]);
    router.submit(TxId(2), &[]);
    for i in 0..u64::from(min_degree) {
        router.submit(TxId(10 + i), &[TxId(0)]);
    }
    router.submit(TxId(20), &[TxId(1)]);
    // Age everything far past the hub window.
    let filler = RetentionPolicy::HUB_WINDOW as u64 + 500;
    for i in 0..filler {
        router.submit(TxId(1_000_000 + i), &[]);
    }
    let tan = router.tan();
    assert!(tan.evicted_nodes() > 0, "aging must evict");
    assert!(tan.is_live(NodeId(0)), "the hub survives");
    assert!(tan.is_live(NodeId(2)), "the unspent output survives");
    assert!(!tan.is_live(NodeId(1)), "a spent non-hub is evicted");
    // Spending the retained hub resolves (edge + T2S pull toward its
    // shard); spending the evicted node degrades to a missing ref.
    let missing_before = router.tan().missing_parent_refs();
    let s = router.submit(TxId(2_000_000), &[TxId(0)]);
    assert_eq!(s, hub_shard, "the retained hub's T2S row pulls its spender");
    assert_eq!(router.tan().missing_parent_refs(), missing_before);
    router.submit(TxId(2_000_001), &[TxId(1)]);
    assert_eq!(router.tan().missing_parent_refs(), missing_before + 1);
}

#[test]
fn windowed_router_holds_bounded_live_state_over_long_streams() {
    let window = 256usize;
    let mut router = Router::builder()
        .shards(4)
        .retention(RetentionPolicy::WindowTxs(window))
        .build();
    let txs = build_stream(20_000, 50, 7);
    let mut peak_live = 0usize;
    let mut peak_bytes = 0usize;
    for tx in &txs {
        router.submit_tx(tx);
        peak_live = peak_live.max(router.tan().live_len());
        peak_bytes = peak_bytes.max(router.tan().arena_bytes());
    }
    assert!(
        peak_live <= window + window / 2 + 1_100,
        "live rows must stay O(window): {peak_live}"
    );
    // A reference graph of just the window-sized prefix: the long
    // stream's peak arena must stay within a constant factor of it.
    let mut small = Router::builder().shards(4).build();
    for tx in &txs[..window] {
        small.submit_tx(tx);
    }
    assert!(
        peak_bytes < 20 * small.tan().arena_bytes(),
        "peak {} vs window-sized run {}",
        peak_bytes,
        small.tan().arena_bytes()
    );
    // The placement state is complete despite the eviction.
    assert_eq!(router.assignments().len(), txs.len());
}
