//! Property-based tests for the placement core.

use proptest::prelude::*;

use optchain_core::replay::{replay, QueueProxy};
use optchain_core::{
    GreedyPlacer, L2sEstimator, L2sMode, OptChainPlacer, Placer, RandomPlacer, ShardTelemetry,
    T2sEngine, T2sPlacer,
};
use optchain_tan::TanGraph;
use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};

/// Random-but-valid transaction stream recipe: per tx, offsets of the
/// outputs it spends (all single-output txs for simplicity).
fn stream_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(1u8..30, 0..4), 1..200)
}

fn build_stream(recipe: &[Vec<u8>]) -> Vec<Transaction> {
    // Track which outputs are unspent; spend only unspent ones.
    let mut spent = vec![false; recipe.len()];
    let mut txs = Vec::with_capacity(recipe.len());
    for (i, offsets) in recipe.iter().enumerate() {
        let mut builder = Transaction::builder(TxId(i as u64));
        let mut used = Vec::new();
        for off in offsets {
            let Some(p) = i.checked_sub(*off as usize) else {
                continue;
            };
            if !spent[p] && !used.contains(&p) {
                used.push(p);
            }
        }
        for &p in &used {
            spent[p] = true;
            builder = builder.input(TxId(p as u64).outpoint(0));
        }
        txs.push(builder.output(TxOutput::new(1, WalletId(0))).build());
    }
    txs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// T2S scores stay finite and non-negative across arbitrary DAGs and
    /// placements; shard sizes count every placement.
    #[test]
    fn t2s_invariants(recipe in stream_strategy(), k in 1u32..9) {
        let txs = build_stream(&recipe);
        let mut tan = TanGraph::new();
        let mut engine = T2sEngine::new(k);
        for (i, tx) in txs.iter().enumerate() {
            let node = tan.insert_tx(tx);
            engine.register(&tan, node);
            let pp = engine.pprime(node);
            prop_assert!(pp.iter().all(|p| p.is_finite() && *p >= 0.0));
            engine.place(node, (i as u32 * 7) % k);
        }
        prop_assert_eq!(
            engine.shard_sizes().iter().sum::<u64>(),
            txs.len() as u64
        );
    }

    /// Every strategy assigns every node exactly once, in range, and
    /// replay accounting is exact.
    #[test]
    fn replay_accounting(recipe in stream_strategy(), k in 2u32..9) {
        let txs = build_stream(&recipe);
        for outcome in [
            replay(&txs, &mut OptChainPlacer::new(k)),
            replay(&txs, &mut T2sPlacer::new(k)),
            replay(&txs, &mut GreedyPlacer::new(k)),
            replay(&txs, &mut RandomPlacer::new(k)),
        ] {
            prop_assert_eq!(outcome.total, txs.len() as u64);
            prop_assert_eq!(outcome.shard_sizes.iter().sum::<u64>(), outcome.total);
            prop_assert!(outcome.cross + outcome.coinbase <= outcome.total);
            prop_assert!(outcome.assignments.iter().all(|s| *s < k));
        }
    }

    /// L2S scores are positive, finite, and monotone: slowing any
    /// involved shard never lowers the score.
    #[test]
    fn l2s_monotone(
        comm in 0.01f64..1.0,
        verify in 0.05f64..10.0,
        extra in 0.1f64..50.0,
        mode_paper in any::<bool>(),
    ) {
        let mode = if mode_paper {
            L2sMode::PaperSelfConvolution
        } else {
            L2sMode::VerifyPlusCommit
        };
        let est = L2sEstimator::with_mode(mode);
        let base = [ShardTelemetry::new(comm, verify), ShardTelemetry::new(comm, verify)];
        let slowed = [
            ShardTelemetry::new(comm, verify + extra),
            ShardTelemetry::new(comm, verify),
        ];
        let b = est.score(&base, &[0], 1);
        let s = est.score(&slowed, &[0], 1);
        prop_assert!(b.is_finite() && b > 0.0);
        prop_assert!(s >= b - 1e-9, "slowing shard 0 lowered E: {b} -> {s}");
    }

    /// The queue proxy never goes negative and total queue mass is
    /// bounded by arrivals.
    #[test]
    fn queue_proxy_bounds(places in proptest::collection::vec(0u32..6, 1..400)) {
        let mut proxy = QueueProxy::new(6);
        for &p in &places {
            proxy.on_place(p);
        }
        let total: f64 = proxy.queues().iter().sum();
        prop_assert!(proxy.queues().iter().all(|q| *q >= 0.0));
        prop_assert!(total <= places.len() as f64 + 1e-9);
        for t in proxy.snapshot() {
            prop_assert!(t.expected_verify >= 0.5 - 1e-9);
        }
    }

    /// Random (hash) placement is stable: the same txid always maps to
    /// the same shard, independent of history.
    #[test]
    fn random_placement_is_pure(ids in proptest::collection::vec(0u64..10_000, 1..50)) {
        let k = 8;
        let mut shards = std::collections::HashMap::new();
        // Two independent runs over different orderings.
        for run in 0..2 {
            let mut tan = TanGraph::new();
            let mut placer = RandomPlacer::new(k);
            let telemetry = vec![ShardTelemetry::new(0.1, 0.5); k as usize];
            let mut order = ids.clone();
            order.dedup();
            if run == 1 {
                order.reverse();
            }
            // Make ids unique per insertion by offsetting duplicates.
            let mut seen = std::collections::HashSet::new();
            for id in order {
                if !seen.insert(id) {
                    continue;
                }
                let node = tan.insert(TxId(id), &[]);
                let shard =
                    placer.place(&optchain_core::PlacementContext::new(&tan, &telemetry), node);
                if let Some(prev) = shards.insert(id, shard.0) {
                    prop_assert_eq!(prev, shard.0, "hash placement must be pure in txid");
                }
            }
        }
    }
}
