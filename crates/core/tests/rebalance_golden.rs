//! Golden and property coverage for the dynamic re-sharding subsystem:
//! a router with the `Rebalancer` disabled (or configured so it can
//! never trigger) must place **bit-identically** to one without it, a
//! rebalancing run must be deterministic end to end, and an epoch
//! commit must never orphan an assignment — every live node resolves
//! to exactly one in-range shard before, during, and after move
//! batches, under every retention policy.

use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

use optchain_core::{Move, RebalancePolicy, RetentionPolicy, Router, ShardId};
use optchain_utxo::{Transaction, TxId, TxOutput, WalletId};

/// Random-but-valid transaction stream recipe: per tx, offsets of the
/// outputs it spends (all single-output txs for simplicity) — the same
/// generator the router goldens use.
fn stream_strategy() -> impl proptest::prelude::Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(1u8..30, 0..4), 1..250)
}

fn build_stream(recipe: &[Vec<u8>]) -> Vec<Transaction> {
    let mut spent = vec![false; recipe.len()];
    let mut txs = Vec::with_capacity(recipe.len());
    for (i, offsets) in recipe.iter().enumerate() {
        let mut builder = Transaction::builder(TxId(i as u64));
        let mut used = Vec::new();
        for off in offsets {
            let Some(p) = i.checked_sub(*off as usize) else {
                continue;
            };
            if !spent[p] && !used.contains(&p) {
                used.push(p);
            }
        }
        for &p in &used {
            spent[p] = true;
            builder = builder.input(TxId(p as u64).outpoint(0));
        }
        txs.push(builder.output(TxOutput::new(1, WalletId(0))).build());
    }
    txs
}

fn assignments_of(router: &mut Router, txs: &[Transaction]) -> Vec<u32> {
    let mut out: Vec<ShardId> = Vec::new();
    router.submit_batch(txs, &mut out);
    out.into_iter().map(|s| s.0).collect()
}

/// An aggressive policy that stages and commits as often as the stream
/// allows, so short proptest streams still cross several epochs.
fn aggressive(interval: u64) -> RebalancePolicy {
    RebalancePolicy::default()
        .with_epoch_interval(interval)
        .with_min_in_degree(1)
        .with_utilization_trigger(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A rebalancer whose trigger can never fire changes nothing: the
    /// assignments are bit-identical to a router built without one,
    /// and no epoch is ever opened.
    #[test]
    fn never_triggering_rebalancer_is_bit_identical(
        recipe in stream_strategy(),
        k in 1u32..9,
    ) {
        let txs = build_stream(&recipe);
        let mut plain = Router::builder().shards(k).build();
        let mut gated = Router::builder()
            .shards(k)
            .rebalancer(
                RebalancePolicy::default()
                    .with_epoch_interval(16)
                    .with_utilization_trigger(f64::INFINITY),
            )
            .build();
        prop_assert_eq!(
            assignments_of(&mut plain, &txs),
            assignments_of(&mut gated, &txs)
        );
        let stats = gated.rebalance_stats();
        prop_assert_eq!(stats.epochs_opened, 0);
        prop_assert_eq!(stats.nodes_moved, 0);
        prop_assert_eq!(gated.cross_placed(), plain.cross_placed());
    }

    /// Until the first epoch boundary the rebalancer is pure
    /// observation: a stream shorter than one epoch interval places
    /// exactly like a router without a rebalancer.
    #[test]
    fn sub_epoch_stream_is_bit_identical(
        recipe in stream_strategy(),
        k in 1u32..9,
    ) {
        let txs = build_stream(&recipe);
        let mut plain = Router::builder().shards(k).build();
        let mut rebalanced = Router::builder()
            .shards(k)
            .rebalancer(aggressive(txs.len() as u64 + 1))
            .build();
        prop_assert_eq!(
            assignments_of(&mut plain, &txs),
            assignments_of(&mut rebalanced, &txs)
        );
        prop_assert_eq!(rebalanced.rebalance_stats().epochs_committed, 0);
    }

    /// The ISSUE's safety property: across staged epochs, commits, and
    /// retention-driven eviction, every live node always resolves to
    /// exactly one in-range shard — a move either re-homes a node or is
    /// dropped, it never leaves a dangling assignment. Checked under
    /// all three retention policies.
    #[test]
    fn epoch_commit_never_orphans_an_assignment(
        recipe in stream_strategy(),
        k in 2u32..7,
        interval in 4u64..40,
        retention_pick in 0usize..3,
    ) {
        let txs = build_stream(&recipe);
        let retention = match retention_pick {
            0 => RetentionPolicy::Unbounded,
            1 => RetentionPolicy::WindowTxs(64),
            _ => RetentionPolicy::KeepUnspentAndHubs { min_degree: 3 },
        };
        let mut router = Router::builder()
            .shards(k)
            .retention(retention)
            .rebalancer(aggressive(interval))
            .build();

        let mut out: Vec<ShardId> = Vec::new();
        let mut moves: Vec<Move> = Vec::new();
        let mut total_moves = 0u64;
        for chunk in txs.chunks(interval as usize) {
            router.submit_batch(chunk, &mut out);
            // Mid-protocol check: every live node resolves, whether an
            // epoch is currently staged or just committed.
            for node in router.tan().live_nodes() {
                let txid = router.tan().txid(node);
                let shard = router.shard_of(txid);
                prop_assert!(
                    matches!(shard, Some(s) if s.0 < k),
                    "live node {txid:?} resolves to {shard:?} (k = {k})"
                );
            }
            moves.clear();
            router.drain_rebalance_moves(&mut moves);
            total_moves += moves.len() as u64;
            for mv in &moves {
                prop_assert!(mv.from != mv.to, "degenerate move {mv:?}");
                prop_assert!(mv.from.0 < k && mv.to.0 < k, "out of range {mv:?}");
                prop_assert!(mv.bytes > 0, "zero-byte migration {mv:?}");
            }
        }
        let stats = router.rebalance_stats();
        prop_assert_eq!(stats.nodes_moved, total_moves);
        prop_assert!(stats.epochs_committed <= stats.epochs_opened);
        prop_assert!(
            stats.nodes_moved == 0 || stats.bytes_migrated > 0,
            "moves without migrated bytes"
        );
    }

    /// Same stream + same policy = same placements, same moves, same
    /// counters — the epoch protocol is deterministic even while it is
    /// actively migrating hubs.
    #[test]
    fn rebalancing_run_is_deterministic(
        recipe in stream_strategy(),
        k in 2u32..7,
        interval in 4u64..40,
    ) {
        let txs = build_stream(&recipe);
        let run = |txs: &[Transaction]| {
            let mut router = Router::builder()
                .shards(k)
                .rebalancer(aggressive(interval))
                .build();
            let mut out: Vec<ShardId> = Vec::new();
            router.submit_batch(txs, &mut out);
            let mut moves = Vec::new();
            router.drain_rebalance_moves(&mut moves);
            (
                out.into_iter().map(|s| s.0).collect::<Vec<u32>>(),
                moves,
                router.rebalance_stats(),
                router.cross_placed(),
            )
        };
        prop_assert_eq!(run(&txs), run(&txs));
    }
}
