//! Golden equivalence for the [`RouterFleet`] surface:
//!
//! * a **1-worker fleet is bit-identical to a single [`Router`]** —
//!   assignments *and* per-shard scores — because no adoption ever
//!   happens and the worker sees the global stream in order;
//! * an **N-worker fleet is deterministic** for a fixed partitioner and
//!   sync schedule: two identical runs produce identical assignments;
//! * fleet checkpoints are transparent: `snapshot` → `warm_start` →
//!   continued stream equals the uninterrupted stream, sync schedule
//!   included.

use proptest::prelude::{prop_assert_eq, proptest, ProptestConfig, Strategy as PropStrategy};

use optchain_core::{Router, RouterFleet, ShardTelemetry, Strategy};
use optchain_utxo::TxId;

/// Random-but-valid raw stream recipe: per tx, the id offsets of the
/// transactions it spends (the same shape `router_golden.rs` builds
/// full `Transaction`s from — the fleet goldens drive the raw
/// `submit(txid, inputs)` path, which the router goldens prove
/// equivalent to `submit_tx`).
fn stream_strategy() -> impl PropStrategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(1u8..30, 0..4), 1..200)
}

/// Materializes a recipe into `(txid, parents)` rows.
fn build_raw_stream(recipe: &[Vec<u8>]) -> Vec<(TxId, Vec<TxId>)> {
    recipe
        .iter()
        .enumerate()
        .map(|(i, offsets)| {
            let mut parents = Vec::new();
            for off in offsets {
                if let Some(p) = i.checked_sub(*off as usize) {
                    let p = TxId(p as u64);
                    if !parents.contains(&p) {
                        parents.push(p);
                    }
                }
            }
            (TxId(i as u64), parents)
        })
        .collect()
}

/// Telemetry values for epoch `e` over `k` shards: shard `e % k` runs
/// hot, everything else idle — a deterministic rolling hotspot.
fn telemetry_at(e: u64, k: u32) -> Vec<ShardTelemetry> {
    (0..k)
        .map(|j| {
            if u64::from(j) == e % u64::from(k) {
                ShardTelemetry::new(0.1, 0.5 + e as f64)
            } else {
                ShardTelemetry::new(0.1, 0.5)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A 1-worker fleet under a live telemetry feed is bit-identical to
    /// a single router — shard, T2S, L2S and fitness vectors included.
    #[test]
    fn one_worker_fleet_matches_router_bitwise(
        recipe in stream_strategy(),
        k in 1u32..9,
    ) {
        let txs = build_raw_stream(&recipe);
        let mut router = Router::builder().shards(k).build();
        let fleet = RouterFleet::builder()
            .shards(k)
            .workers(1)
            .sync_interval(16)
            .build();
        let handle = fleet.handle(42);
        for (i, (txid, parents)) in txs.iter().enumerate() {
            if i.is_multiple_of(7) {
                let values = telemetry_at(i as u64 / 7, k);
                router.feed_telemetry(&values);
                fleet.feed_telemetry(&values);
            }
            let expected = router.submit_with_detail(*txid, parents);
            let (shard, decision) = handle.submit_with_detail(*txid, parents);
            prop_assert_eq!(shard, expected.shard(), "tx {}", i);
            for j in 0..k as usize {
                prop_assert_eq!(decision.t2s[j].to_bits(), expected.t2s()[j].to_bits());
                prop_assert_eq!(decision.l2s[j].to_bits(), expected.l2s()[j].to_bits());
                prop_assert_eq!(decision.fitness[j].to_bits(), expected.fitness()[j].to_bits());
            }
        }
        // The worker's checkpointed state equals the router's.
        let snapshot = fleet.snapshot();
        prop_assert_eq!(
            snapshot.worker_snapshots()[0].assignments(),
            router.assignments()
        );
    }

    /// Every strategy a fleet can run agrees with the single router on
    /// a 1-worker fleet (assignments; scores are OptChain-only).
    #[test]
    fn one_worker_fleet_matches_router_across_strategies(
        recipe in stream_strategy(),
        k in 1u32..9,
    ) {
        let txs = build_raw_stream(&recipe);
        for strategy in [Strategy::OptChain, Strategy::T2s, Strategy::OmniLedger, Strategy::Greedy] {
            let mut router = Router::builder().shards(k).strategy(strategy).build();
            let fleet = RouterFleet::builder()
                .shards(k)
                .strategy(strategy)
                .workers(1)
                .build();
            let handle = fleet.handle(0);
            for (txid, parents) in &txs {
                let a = router.submit(*txid, parents);
                let b = handle.submit(*txid, parents);
                prop_assert_eq!(a, b, "strategy {:?}", strategy);
            }
        }
    }

    /// N-worker placement is reproducible: identical partitioner, sync
    /// interval, and submission order produce identical assignments and
    /// identical sync accounting.
    #[test]
    fn n_worker_fleet_is_deterministic(
        recipe in stream_strategy(),
        k in 1u32..9,
        workers in 2usize..5,
    ) {
        let txs = build_raw_stream(&recipe);
        let run = || {
            let fleet = RouterFleet::builder()
                .shards(k)
                .workers(workers)
                .partitioner(|client| client as usize)
                .sync_interval(32)
                .build();
            let handles: Vec<_> = (0..workers as u64).map(|c| fleet.handle(c)).collect();
            let shards: Vec<u32> = txs
                .iter()
                .enumerate()
                .map(|(i, (txid, parents))| {
                    handles[i % workers].submit(*txid, parents).0
                })
                .collect();
            let stats = fleet.stats();
            (shards, stats.adopted, stats.missing_parent_refs, stats.sync_rounds)
        };
        prop_assert_eq!(run(), run());
    }

    /// Fleet checkpoints are transparent: snapshot mid-stream, restore
    /// into a fresh fleet, and the continued suffix places exactly like
    /// the uninterrupted fleet — pending sync deltas, sync schedule and
    /// telemetry boards included.
    #[test]
    fn fleet_snapshot_warm_start_is_transparent(
        recipe in stream_strategy(),
        k in 1u32..9,
        cut_pct in 0u32..100,
    ) {
        let txs = build_raw_stream(&recipe);
        let cut = txs.len() * cut_pct as usize / 100;
        let workers = 2usize;
        let build = || {
            RouterFleet::builder()
                .shards(k)
                .workers(workers)
                .partitioner(|client| client as usize)
                .sync_interval(8)
                .build()
        };
        let drive = |fleet: &RouterFleet, rows: &[(TxId, Vec<TxId>)], offset: usize| -> Vec<u32> {
            let handles: Vec<_> = (0..workers as u64).map(|c| fleet.handle(c)).collect();
            rows.iter()
                .enumerate()
                .map(|(i, (txid, parents))| {
                    let at = offset + i;
                    if at.is_multiple_of(11) {
                        fleet.feed_telemetry(&telemetry_at(at as u64 / 11, k));
                    }
                    handles[at % workers].submit(*txid, parents).0
                })
                .collect()
        };

        let continuous = build();
        let expected = drive(&continuous, &txs, 0);

        let prefix_fleet = build();
        let prefix_shards = drive(&prefix_fleet, &txs[..cut], 0);
        let snapshot = prefix_fleet.snapshot();
        drop(prefix_fleet);

        let mut resumed = build();
        resumed.warm_start(&snapshot);
        // (The restored workers' boards carry the last fed values, and
        // feed_telemetry dedups at the worker too, so the telemetry
        // epochs stay aligned without re-feeding.)
        let suffix = drive(&resumed, &txs[cut..], cut);

        let mut got = prefix_shards;
        got.extend(&suffix);
        prop_assert_eq!(expected, got, "cut {}", cut);
    }
}

/// Cross-sync changes placement *quality*, never determinism: with a
/// tight sync interval a two-worker fleet resolves cross-client chains
/// that a sync-less fleet must treat as parentless.
#[test]
fn cross_sync_improves_parent_resolution() {
    // Two clients alternate spends of each other's outputs: client 0
    // creates heads, client 1 spends them.
    let n = 400u64;
    let run = |interval: u64| {
        let fleet = RouterFleet::builder()
            .shards(4)
            .workers(2)
            .partitioner(|client| client as usize)
            .sync_interval(interval)
            .build();
        let h0 = fleet.handle(0);
        let h1 = fleet.handle(1);
        for i in 0..n {
            if i.is_multiple_of(2) {
                let parents: &[TxId] = if i < 2 { &[] } else { &[TxId(i - 1)] };
                h0.submit(TxId(i), parents);
            } else {
                h1.submit(TxId(i), &[TxId(i - 1)]);
            }
        }
        fleet.flush();
        fleet.stats()
    };
    let synced = run(4);
    let blind = run(0);
    assert_eq!(synced.placed, n);
    assert_eq!(blind.placed, n);
    assert!(synced.adopted > 0, "sync rounds must adopt foreign nodes");
    assert_eq!(blind.adopted, 0);
    assert!(
        synced.missing_parent_refs < blind.missing_parent_refs,
        "sync must resolve foreign parents: {} vs {}",
        synced.missing_parent_refs,
        blind.missing_parent_refs
    );
}

/// The documented staleness bound: a placement is visible to every
/// other worker after at most `sync_interval` further global
/// submissions (here made exact by quiescent submission).
#[test]
fn staleness_is_bounded_by_the_sync_interval() {
    let interval = 10u64;
    let fleet = RouterFleet::builder()
        .shards(2)
        .workers(2)
        .partitioner(|client| client as usize)
        .sync_interval(interval)
        .build();
    let h0 = fleet.handle(0);
    let h1 = fleet.handle(1);
    // Worker 0 places the parent at seq 0; the boundary lands at seq 9.
    h0.submit(TxId(1000), &[]);
    for i in 0..interval - 2 {
        h0.submit(TxId(i), &[]);
    }
    // Spending before the boundary: parent unknown to worker 1.
    h1.submit(TxId(2000), &[TxId(1000)]);
    fleet.flush();
    assert_eq!(fleet.stats().missing_parent_refs, 1);
    // One more submission crosses the boundary; after the sync round
    // the same parent resolves on worker 1.
    h0.submit(TxId(3000), &[]);
    h1.submit(TxId(2001), &[TxId(1000)]);
    fleet.flush();
    assert_eq!(fleet.stats().missing_parent_refs, 1, "no new missing ref");
}
