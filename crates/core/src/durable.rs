//! The durable-router wire vocabulary: WAL record codecs and the meta
//! blob describing a journaled router's configuration.
//!
//! A durable [`crate::Router`] appends one record per state mutation —
//! submissions, adoptions, telemetry changes, fleet sync marks — to an
//! [`optchain_storage::Storage`] backend, and periodically installs a
//! checkpoint (an encoded [`crate::RouterSnapshot`]) covering a prefix
//! of the journal. Recovery reads the meta blob to rebuild the exact
//! builder configuration, warm-starts from the checkpoint, and replays
//! the journal tail; because placement is deterministic, replaying the
//! surviving records reproduces the crashed router bit-identically.
//!
//! Every encoding here is deterministic (fixed-width little-endian via
//! [`ByteWriter`]) and self-validating on decode — corrupt bytes that
//! survive the storage layer's CRC fail structurally instead of
//! producing a silently wrong router.

use optchain_storage::{ByteReader, ByteWriter, CodecError};
use optchain_utxo::TxId;

use crate::l2s::{L2sMode, ShardTelemetry};
use crate::router::RouterSpec;
use crate::strategy::Strategy;
use optchain_tan::RetentionPolicy;

/// Legacy meta blob format version: ends after `flush_every` (no
/// `full_every` knob). Still decoded — recovery fills in the default
/// full-snapshot cadence.
pub(crate) const META_VERSION_V1: u8 = 1;

/// Meta blob format version (the first byte of the blob): v1 plus a
/// trailing `full_every` (full snapshots between delta checkpoints).
pub(crate) const META_VERSION: u8 = 2;

/// Checkpoint blob format version (the first byte of the blob).
pub(crate) const CHECKPOINT_VERSION: u8 = 1;

/// Checkpoint blob envelope version for zero-RLE-compressed bodies:
/// the byte is followed by `zrle(v1 blob)`. Compression cuts the
/// stored blob to roughly a third (score rows are mostly exact-zero
/// bytes), which shrinks the dominant per-checkpoint I/O cost by the
/// same factor. Readers accept both versions; writers always compress.
pub(crate) const CHECKPOINT_ZRLE_VERSION: u8 = 2;

/// Checkpoint blob envelope version for **delta** checkpoints: the
/// byte is followed by `zrle(body)` where the body is the journaled
/// records since the chain's previous element — `prev_upto: u64`,
/// `count: u64`, then `count` length-prefixed WAL record payloads.
/// Recovery applies them through the same deterministic replay
/// machinery as the WAL tail, so a delta costs O(records since last
/// checkpoint) instead of O(retained state), and `prev_upto` is a
/// chain-continuity tripwire. Only ever installed via
/// [`optchain_storage::Storage::put_checkpoint_delta`]; full
/// checkpoints keep versions 1/2.
pub(crate) const CHECKPOINT_DELTA_VERSION: u8 = 3;

/// Default records between checkpoints (flush + snapshot + segment GC).
pub(crate) const DEFAULT_CHECKPOINT_EVERY: u64 = 32_768;

/// Default delta checkpoints between full snapshots: every
/// `full_every`-th checkpoint writes a full snapshot, bounding the
/// recovery chain length and keeping segment GC effective.
pub(crate) const DEFAULT_FULL_EVERY: u64 = 8;

/// Default records between fsync batches (the ack granularity).
pub(crate) const DEFAULT_FLUSH_EVERY: u64 = 512;

/// A locally placed transaction: `(txid, inputs, shard)`.
pub(crate) const TAG_SUBMIT: u8 = 1;
/// A placement adopted from a sibling fleet worker.
pub(crate) const TAG_ADOPT: u8 = 2;
/// A telemetry board change (recorded only when the version bumps).
pub(crate) const TAG_TELEMETRY: u8 = 3;
/// A fleet sync boundary: every prior submission has been published to
/// sibling workers, so the pending delta restarts empty here.
pub(crate) const TAG_SYNC_MARK: u8 = 4;

/// One decoded WAL record (see the tag constants for the vocabulary).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// A local placement: replayed by re-running the deterministic
    /// decision and cross-checking the recorded shard.
    Submit {
        /// The transaction id.
        txid: TxId,
        /// Its distinct input transaction ids, in link order.
        inputs: Vec<TxId>,
        /// The shard the crashed router chose.
        shard: u32,
    },
    /// A placement imposed by a sibling worker: replayed through
    /// [`crate::Router::adopt_remote`] with the recorded shard.
    Adopt {
        /// The transaction id.
        txid: TxId,
        /// Its distinct input transaction ids, in link order.
        inputs: Vec<TxId>,
        /// The shard the sibling chose.
        shard: u32,
    },
    /// A telemetry board change.
    Telemetry(Vec<ShardTelemetry>),
    /// A fleet sync boundary.
    SyncMark,
}

/// Encodes a Submit/Adopt record (`tag` picks which).
pub(crate) fn encode_placement(
    w: &mut ByteWriter,
    tag: u8,
    txid: TxId,
    inputs: &[TxId],
    shard: u32,
) {
    debug_assert!(tag == TAG_SUBMIT || tag == TAG_ADOPT);
    w.put_u8(tag);
    w.put_u64(txid.0);
    w.put_u32(shard);
    w.put_u64(inputs.len() as u64);
    for input in inputs {
        w.put_u64(input.0);
    }
}

/// Encodes a Telemetry record.
pub(crate) fn encode_telemetry_record(w: &mut ByteWriter, telemetry: &[ShardTelemetry]) {
    w.put_u8(TAG_TELEMETRY);
    put_telemetry(w, telemetry);
}

/// Encodes a SyncMark record.
pub(crate) fn encode_sync_mark(w: &mut ByteWriter) {
    w.put_u8(TAG_SYNC_MARK);
}

/// Decodes one WAL record payload.
pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = ByteReader::new(payload);
    let record = match r.get_u8()? {
        tag @ (TAG_SUBMIT | TAG_ADOPT) => {
            let txid = TxId(r.get_u64()?);
            let shard = r.get_u32()?;
            let count = r.get_count(8)?;
            let mut inputs = Vec::with_capacity(count);
            for _ in 0..count {
                inputs.push(TxId(r.get_u64()?));
            }
            if tag == TAG_SUBMIT {
                WalRecord::Submit {
                    txid,
                    inputs,
                    shard,
                }
            } else {
                WalRecord::Adopt {
                    txid,
                    inputs,
                    shard,
                }
            }
        }
        TAG_TELEMETRY => WalRecord::Telemetry(get_telemetry(&mut r)?),
        TAG_SYNC_MARK => WalRecord::SyncMark,
        _ => return Err(CodecError("unknown WAL record tag")),
    };
    r.finish()?;
    Ok(record)
}

pub(crate) fn put_telemetry(w: &mut ByteWriter, telemetry: &[ShardTelemetry]) {
    w.put_u64(telemetry.len() as u64);
    for t in telemetry {
        w.put_f64(t.expected_comm);
        w.put_f64(t.expected_verify);
    }
}

pub(crate) fn get_telemetry(r: &mut ByteReader<'_>) -> Result<Vec<ShardTelemetry>, CodecError> {
    let count = r.get_count(16)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let expected_comm = r.get_f64()?;
        let expected_verify = r.get_f64()?;
        out.push(ShardTelemetry {
            expected_comm,
            expected_verify,
        });
    }
    Ok(out)
}

pub(crate) fn put_telemetry_opt(w: &mut ByteWriter, telemetry: &Option<Vec<ShardTelemetry>>) {
    match telemetry {
        None => w.put_u8(0),
        Some(t) => {
            w.put_u8(1);
            put_telemetry(w, t);
        }
    }
}

pub(crate) fn get_telemetry_opt(
    r: &mut ByteReader<'_>,
) -> Result<Option<Vec<ShardTelemetry>>, CodecError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_telemetry(r)?)),
        _ => Err(CodecError("bad telemetry option tag")),
    }
}

fn strategy_tag(strategy: Strategy) -> u8 {
    match strategy {
        Strategy::OptChain => 0,
        Strategy::T2s => 1,
        Strategy::OmniLedger => 2,
        Strategy::Greedy => 3,
        Strategy::Metis => 4,
    }
}

fn strategy_from_tag(tag: u8) -> Result<Strategy, CodecError> {
    Ok(match tag {
        0 => Strategy::OptChain,
        1 => Strategy::T2s,
        2 => Strategy::OmniLedger,
        3 => Strategy::Greedy,
        4 => Strategy::Metis,
        _ => return Err(CodecError("unknown strategy tag")),
    })
}

/// Encodes the self-describing meta blob: the full [`RouterSpec`]
/// (including the durability knobs), written once before the first
/// append so [`crate::Router::recover`] needs no builder.
pub(crate) fn encode_spec(spec: &RouterSpec) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(META_VERSION);
    w.put_u32(spec.k());
    w.put_u8(strategy_tag(spec.strategy));
    w.put_f64(spec.alpha);
    match spec.window {
        None => w.put_u8(0),
        Some(window) => {
            w.put_u8(1);
            w.put_u64(window as u64);
        }
    }
    spec.retention.encode_into(&mut w);
    w.put_u8(match spec.l2s_mode {
        L2sMode::PaperSelfConvolution => 0,
        L2sMode::VerifyPlusCommit => 1,
    });
    w.put_f64(spec.l2s_weight);
    w.put_f64(spec.epsilon);
    match spec.expected_total {
        None => w.put_u8(0),
        Some(total) => {
            w.put_u8(1);
            w.put_u64(total);
        }
    }
    match &spec.oracle {
        None => w.put_u8(0),
        Some(oracle) => {
            w.put_u8(1);
            w.put_u64(oracle.len() as u64);
            for &s in oracle {
                w.put_u32(s);
            }
        }
    }
    put_telemetry_opt(&mut w, &spec.telemetry);
    w.put_u64(spec.checkpoint_every);
    w.put_u64(spec.flush_every);
    w.put_u64(spec.full_every);
    w.into_vec()
}

/// Decodes a meta blob back into the spec that wrote it.
pub(crate) fn decode_spec(bytes: &[u8]) -> Result<RouterSpec, CodecError> {
    let mut r = ByteReader::new(bytes);
    let version = r.get_u8()?;
    if version != META_VERSION_V1 && version != META_VERSION {
        return Err(CodecError("unknown meta blob version"));
    }
    let shards = r.get_u32()?;
    if shards == 0 {
        return Err(CodecError("meta blob k must be positive"));
    }
    let strategy = strategy_from_tag(r.get_u8()?)?;
    let alpha = r.get_f64()?;
    let window = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_u64()? as usize),
        _ => return Err(CodecError("bad window option tag")),
    };
    let retention = RetentionPolicy::decode_from(&mut r)?;
    let l2s_mode = match r.get_u8()? {
        0 => L2sMode::PaperSelfConvolution,
        1 => L2sMode::VerifyPlusCommit,
        _ => return Err(CodecError("unknown L2S mode tag")),
    };
    let l2s_weight = r.get_f64()?;
    let epsilon = r.get_f64()?;
    let expected_total = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_u64()?),
        _ => return Err(CodecError("bad expected_total option tag")),
    };
    let oracle = match r.get_u8()? {
        0 => None,
        1 => {
            let count = r.get_count(4)?;
            let mut oracle = Vec::with_capacity(count);
            for _ in 0..count {
                oracle.push(r.get_u32()?);
            }
            Some(oracle)
        }
        _ => return Err(CodecError("bad oracle option tag")),
    };
    let telemetry = get_telemetry_opt(&mut r)?;
    let checkpoint_every = r.get_u64()?;
    let flush_every = r.get_u64()?;
    // v1 blobs predate delta checkpoints: recover with the default
    // full-snapshot cadence.
    let full_every = if version >= META_VERSION {
        r.get_u64()?
    } else {
        DEFAULT_FULL_EVERY
    };
    if checkpoint_every == 0 || flush_every == 0 || full_every == 0 {
        return Err(CodecError("durability intervals must be positive"));
    }
    r.finish()?;
    let mut spec = RouterSpec::new();
    spec.shards = Some(shards);
    spec.strategy = strategy;
    spec.alpha = alpha;
    spec.window = window;
    spec.retention = retention;
    spec.l2s_mode = l2s_mode;
    spec.l2s_weight = l2s_weight;
    spec.epsilon = epsilon;
    spec.expected_total = expected_total;
    spec.oracle = oracle;
    spec.telemetry = telemetry;
    spec.checkpoint_every = checkpoint_every;
    spec.flush_every = flush_every;
    spec.full_every = full_every;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_records_roundtrip() {
        let records = [
            WalRecord::Submit {
                txid: TxId(42),
                inputs: vec![TxId(7), TxId(9)],
                shard: 3,
            },
            WalRecord::Adopt {
                txid: TxId(1000),
                inputs: vec![],
                shard: 0,
            },
            WalRecord::Telemetry(vec![ShardTelemetry::new(0.1, 0.5); 2]),
            WalRecord::SyncMark,
        ];
        for record in &records {
            let mut w = ByteWriter::new();
            match record {
                WalRecord::Submit {
                    txid,
                    inputs,
                    shard,
                } => encode_placement(&mut w, TAG_SUBMIT, *txid, inputs, *shard),
                WalRecord::Adopt {
                    txid,
                    inputs,
                    shard,
                } => encode_placement(&mut w, TAG_ADOPT, *txid, inputs, *shard),
                WalRecord::Telemetry(t) => encode_telemetry_record(&mut w, t),
                WalRecord::SyncMark => encode_sync_mark(&mut w),
            }
            assert_eq!(&decode_record(w.as_slice()).unwrap(), record);
        }
    }

    #[test]
    fn decode_rejects_unknown_tags_and_trailing_bytes() {
        assert!(decode_record(&[99]).is_err());
        let mut w = ByteWriter::new();
        encode_sync_mark(&mut w);
        w.put_u8(0);
        assert!(decode_record(w.as_slice()).is_err());
    }

    #[test]
    fn spec_meta_roundtrips_every_knob() {
        let mut spec = RouterSpec::new();
        spec.shards = Some(8);
        spec.strategy = Strategy::Metis;
        spec.alpha = 0.75;
        spec.retention = RetentionPolicy::KeepUnspentAndHubs { min_degree: 5 };
        spec.l2s_mode = L2sMode::PaperSelfConvolution;
        spec.l2s_weight = 0.02;
        spec.epsilon = 0.2;
        spec.expected_total = Some(1_000_000);
        spec.oracle = Some(vec![1, 2, 3]);
        spec.telemetry = Some(vec![ShardTelemetry::new(0.3, 0.9); 8]);
        spec.checkpoint_every = 1024;
        spec.flush_every = 64;
        spec.full_every = 4;
        let bytes = encode_spec(&spec);
        let back = decode_spec(&bytes).unwrap();
        assert_eq!(back.shards, spec.shards);
        assert_eq!(back.strategy, spec.strategy);
        assert_eq!(back.alpha, spec.alpha);
        assert_eq!(back.window, spec.window);
        assert_eq!(back.retention, spec.retention);
        assert_eq!(back.l2s_mode, spec.l2s_mode);
        assert_eq!(back.l2s_weight, spec.l2s_weight);
        assert_eq!(back.epsilon, spec.epsilon);
        assert_eq!(back.expected_total, spec.expected_total);
        assert_eq!(back.oracle, spec.oracle);
        assert_eq!(back.telemetry, spec.telemetry);
        assert_eq!(back.checkpoint_every, spec.checkpoint_every);
        assert_eq!(back.flush_every, spec.flush_every);
        assert_eq!(back.full_every, spec.full_every);
    }

    #[test]
    fn spec_meta_v1_decodes_with_default_full_every() {
        let mut spec = RouterSpec::new();
        spec.shards = Some(4);
        spec.full_every = 99; // must NOT survive a v1 roundtrip
        let mut bytes = encode_spec(&spec);
        // A v1 blob is the v2 encoding minus the trailing full_every.
        bytes[0] = META_VERSION_V1;
        bytes.truncate(bytes.len() - 8);
        let back = decode_spec(&bytes).unwrap();
        assert_eq!(back.shards, Some(4));
        assert_eq!(back.full_every, DEFAULT_FULL_EVERY);
    }

    #[test]
    fn spec_meta_rejects_foreign_versions() {
        let mut spec = RouterSpec::new();
        spec.shards = Some(2);
        let mut bytes = encode_spec(&spec);
        bytes[0] = 0xEE;
        assert!(decode_spec(&bytes).is_err());
    }
}
